"""Setup shim for legacy editable installs (offline environments without
the ``wheel`` package cannot use PEP 517 editable installs).

All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
