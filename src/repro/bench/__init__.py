"""Benchmark support: measurement harness and the paper's workloads."""

from repro.bench.harness import (
    StepResult,
    TextTable,
    comparison_table,
    cumulative,
    measure,
    series_table,
    shape_check,
)
from repro.bench.workloads import (
    run_clickstream_exploration,
    run_queryset_a,
    run_queryset_b,
    run_queryset_c,
)

__all__ = [
    "StepResult",
    "TextTable",
    "comparison_table",
    "cumulative",
    "measure",
    "run_clickstream_exploration",
    "run_queryset_a",
    "run_queryset_b",
    "run_queryset_c",
    "series_table",
    "shape_check",
]
