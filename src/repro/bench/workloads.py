"""Experiment drivers: the paper's query sets over fresh engines.

Each ``run_*`` function executes one of Section 5's iterative workloads
against a fresh engine with a chosen strategy and returns per-query
:class:`~repro.bench.harness.StepResult` records:

* **QuerySet A** — a slice + APPEND chain growing the template from
  (X, Y) to size six (Figure 16);
* **QuerySet B** — subcube + P-DRILL-DOWN / P-ROLL-UP over a 3-level
  hierarchy;
* **QuerySet C** — the restricted template chain ending at (X, Y, Y, X);
* **Clickstream exploration** — the real-data session Qa → Qb → Qc of
  Table 1.

Engines are fresh per run so CB and II are measured from identical cold
states; II runs optionally precompute the paper's base L2 index first
("three size-two inverted indices at the finest level of abstraction were
precomputed", Section 5.2).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

from repro.bench.harness import StepResult
from repro.core import operations as ops
from repro.core.cuboid import SCuboid
from repro.core.engine import SOLAPEngine
from repro.core.spec import (
    CuboidSpec,
    PatternKind,
    PatternSymbol,
    PatternTemplate,
)
from repro.core.stats import QueryStats
from repro.datagen.clickstream import two_step_spec
from repro.datagen.synthetic import base_spec
from repro.events.database import EventDatabase
from repro.index.registry import base_template

#: fresh symbol names used by the APPEND chains (after X, Y)
_CHAIN_SYMBOLS = ("Z", "A", "B", "C", "D", "E")


def _step(
    engine: SOLAPEngine, spec: CuboidSpec, label: str, strategy: str
) -> Tuple[SCuboid, StepResult]:
    cuboid, stats = engine.execute(spec, strategy)
    return cuboid, StepResult(
        label=label,
        strategy=stats.strategy,
        runtime_ms=stats.runtime_seconds * 1000.0,
        sequences_scanned=stats.sequences_scanned,
        index_bytes_built=stats.index_bytes_built,
        cells=len(cuboid),
    )


def _precompute_l2(engine: SOLAPEngine, spec: CuboidSpec) -> QueryStats:
    """Precompute the base size-2 index for the spec's leading pair domain."""
    pair = PatternTemplate.build(
        spec.template.kind,
        ("X", "Y"),
        {
            "X": (
                spec.template.symbols[0].attribute,
                spec.template.symbols[0].level,
            ),
            "Y": (
                spec.template.symbols[0].attribute,
                spec.template.symbols[0].level,
            ),
        },
    )
    return engine.precompute(spec, [base_template(pair)])


# --------------------------------------------------------------------------
# QuerySet A (Figure 16): slice + APPEND chain
# --------------------------------------------------------------------------


def run_queryset_a(
    db: EventDatabase,
    strategy: str,
    n_queries: int = 5,
    level: str = "symbol",
    precompute: bool = True,
    kind: PatternKind = PatternKind.SUBSTRING,
) -> Tuple[List[StepResult], QueryStats]:
    """QA1..QAn: start at (X, Y); each next query slices the heaviest cell
    and APPENDs a fresh symbol.  Returns per-step results and the
    precomputation stats (zero when *precompute* is false or strategy=cb).
    """
    engine = SOLAPEngine(db, use_repository=False)
    spec = base_spec(("X", "Y"), level=level, kind=kind)
    pre_stats = QueryStats(strategy="precompute")
    if precompute and strategy == "ii":
        pre_stats = _precompute_l2(engine, spec)
    steps: List[StepResult] = []
    for query_index in range(n_queries):
        label = f"QA{query_index + 1}"
        cuboid, result = _step(engine, spec, label, strategy)
        steps.append(result)
        if query_index == n_queries - 1:
            break
        top = cuboid.argmax()
        if top is None:
            break
        __, cell_key, __unused = top
        for symbol, value in zip(spec.template.symbols, cell_key):
            spec = ops.slice_pattern(spec, symbol.name, value)
        attribute = spec.template.symbols[0].attribute
        spec = ops.append(spec, _CHAIN_SYMBOLS[query_index], attribute, level)
    return steps, pre_stats


# --------------------------------------------------------------------------
# QuerySet B: subcube + P-DRILL-DOWN / P-ROLL-UP
# --------------------------------------------------------------------------


def run_queryset_b(
    db: EventDatabase,
    strategy: str,
    mid_level: str = "group",
    fine_level: str = "symbol",
    top_level: str = "supergroup",
    precompute: bool = True,
) -> Tuple[List[StepResult], QueryStats]:
    """QB1 = (X, Y, Z) at the middle level; QB2 = subcube on the heaviest X
    then P-DRILL-DOWN X; QB3 = the same subcube on QB1 then P-ROLL-UP Y."""
    engine = SOLAPEngine(db, use_repository=False)
    qb1 = base_spec(("X", "Y", "Z"), level=mid_level)
    pre_stats = QueryStats(strategy="precompute")
    if precompute and strategy == "ii":
        pre_stats = engine.precompute(qb1, [base_template(qb1.template)])
    steps: List[StepResult] = []

    cuboid1, result1 = _step(engine, qb1, "QB1", strategy)
    steps.append(result1)

    # Subcube: the X value with the highest total count.
    totals: Dict[object, int] = {}
    for __, cell_key, values in cuboid1:
        totals[cell_key[0]] = totals.get(cell_key[0], 0) + int(
            values.get("COUNT(*)", 0) or 0
        )
    if not totals:
        return steps, pre_stats
    top_x = max(sorted(totals, key=repr), key=lambda v: totals[v])

    schema = db.schema
    qb2 = ops.slice_pattern(qb1, "X", top_x)
    qb2 = ops.p_drill_down(qb2, "X", schema)
    __, result2 = _step(engine, qb2, "QB2 (drill-down X)", strategy)
    steps.append(result2)

    qb3 = ops.slice_pattern(qb1, "X", top_x)
    qb3 = ops.p_roll_up(qb3, "Y", schema)
    __, result3 = _step(engine, qb3, "QB3 (roll-up Y)", strategy)
    steps.append(result3)
    return steps, pre_stats


# --------------------------------------------------------------------------
# QuerySet C: restricted template (X, Y, Y, X)
# --------------------------------------------------------------------------


def run_queryset_c(
    db: EventDatabase,
    strategy: str,
    level: str = "symbol",
    precompute: bool = True,
    kind: PatternKind = PatternKind.SUBSTRING,
) -> Tuple[List[StepResult], QueryStats]:
    """QC1 = (X, Y), QC2 = APPEND Y -> (X, Y, Y), QC3 = APPEND X ->
    (X, Y, Y, X): the repeated-symbol join chain of Section 4.2.2."""
    engine = SOLAPEngine(db, use_repository=False)
    spec = base_spec(("X", "Y"), level=level, kind=kind)
    pre_stats = QueryStats(strategy="precompute")
    if precompute and strategy == "ii":
        pre_stats = _precompute_l2(engine, spec)
    steps: List[StepResult] = []
    __, result = _step(engine, spec, "QC1 (X,Y)", strategy)
    steps.append(result)
    spec = ops.append(spec, "Y")
    __, result = _step(engine, spec, "QC2 (X,Y,Y)", strategy)
    steps.append(result)
    spec = ops.append(spec, "X")
    __, result = _step(engine, spec, "QC3 (X,Y,Y,X)", strategy)
    steps.append(result)
    return steps, pre_stats


# --------------------------------------------------------------------------
# Clickstream exploration (Table 1): Qa -> Qb -> Qc
# --------------------------------------------------------------------------


def run_clickstream_exploration(
    db: EventDatabase,
    strategy: str,
) -> List[StepResult]:
    """The published Gazelle exploration.

    Qa: two-step page accesses at page-category level.
    Qb: slice the (Assortment, Legwear) cell, P-DRILL-DOWN Y to raw pages.
    Qc: APPEND Z (another Legwear page) — comparison shopping.

    No indices are precomputed, matching Table 1's setup ("in this
    experiment we did not precompute any inverted index in advance").
    """
    engine = SOLAPEngine(db, use_repository=False)
    schema = db.schema
    steps: List[StepResult] = []

    qa = two_step_spec()
    __, result = _step(engine, qa, "Qa", strategy)
    steps.append(result)

    qb = ops.slice_pattern(qa, "X", "Assortment")
    qb = ops.slice_pattern(qb, "Y", "Legwear")
    qb = ops.p_drill_down(qb, "Y", schema)
    __, result = _step(engine, qb, "Qb", strategy)
    steps.append(result)

    qc = ops.append(qb, "Z", "page", "raw-page")
    # The appended page must also be Legwear-related (comparison shopping).
    restricted_z = PatternSymbol(
        "Z", "page", "raw-page", within=("page-category", "Legwear")
    )
    qc = replace(qc, template=qc.template.replace_symbol("Z", restricted_z))
    __, result = _step(engine, qc, "Qc", strategy)
    steps.append(result)
    return steps
