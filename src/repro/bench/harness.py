"""Benchmark harness: step records and paper-style text tables.

The experiment drivers in :mod:`repro.bench.workloads` produce lists of
:class:`StepResult`; the helpers here render them in the layouts the paper
uses — Table 1's per-query CB-vs-II comparison and Figure 16's cumulative
series with bracketed sequences-scanned annotations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


@dataclass
class StepResult:
    """Measurements for one query of an iterative experiment."""

    label: str
    strategy: str
    runtime_ms: float
    sequences_scanned: int
    index_bytes_built: int
    cells: int
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def index_mb(self) -> float:
        return self.index_bytes_built / 1e6


def measure(fn: Callable[[], T]) -> Tuple[T, float]:
    """Run *fn* once, returning (result, elapsed milliseconds)."""
    start = time.perf_counter()
    result = fn()
    return result, (time.perf_counter() - start) * 1000.0


def cumulative(values: Sequence[float]) -> List[float]:
    out: List[float] = []
    total = 0.0
    for value in values:
        total += value
        out.append(total)
    return out


class TextTable:
    """A fixed-width text table (right-aligned numeric cells)."""

    def __init__(self, columns: Sequence[str]):
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([_fmt(cell) for cell in cells])

    def render(self, title: str = "") -> str:
        widths = [
            max([len(col)] + [len(row[i]) for row in self.rows])
            for i, col in enumerate(self.columns)
        ]
        lines = []
        if title:
            lines.append(title)
            lines.append("=" * max(len(title), 8))
        lines.append(
            "  ".join(col.ljust(w) for col, w in zip(self.columns, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def comparison_table(
    labels: Sequence[str],
    cb_steps: Sequence[StepResult],
    ii_steps: Sequence[StepResult],
    title: str,
) -> str:
    """The paper's Table-1 layout: per query, CB and II side by side."""
    table = TextTable(
        [
            "Query",
            "CB ms",
            "CB seqs scanned",
            "II ms",
            "II seqs scanned",
            "II MB built",
        ]
    )
    for label, cb, ii in zip(labels, cb_steps, ii_steps):
        table.add(
            label,
            cb.runtime_ms,
            cb.sequences_scanned,
            ii.runtime_ms,
            ii.sequences_scanned,
            ii.index_mb,
        )
    table.add(
        "TOTAL",
        sum(s.runtime_ms for s in cb_steps),
        sum(s.sequences_scanned for s in cb_steps),
        sum(s.runtime_ms for s in ii_steps),
        sum(s.sequences_scanned for s in ii_steps),
        sum(s.index_mb for s in ii_steps),
    )
    return table.render(title)


def series_table(
    runs: Dict[str, Sequence[StepResult]],
    title: str,
) -> str:
    """Figure-16 layout: cumulative runtime per query with bracketed
    cumulative sequences-scanned annotations, one row per strategy/run."""
    if not runs:
        return title
    any_steps = next(iter(runs.values()))
    table = TextTable(["Run"] + [step.label for step in any_steps])
    for name, steps in runs.items():
        cum_ms = cumulative([s.runtime_ms for s in steps])
        cum_scanned = cumulative([s.sequences_scanned for s in steps])
        cells = [
            f"{ms:.1f}ms ({int(scanned)})"
            for ms, scanned in zip(cum_ms, cum_scanned)
        ]
        table.add(name, *cells)
    return table.render(title)


def shape_check(description: str, condition: bool) -> str:
    """A PASS/FAIL line for the qualitative claims EXPERIMENTS.md records."""
    flag = "PASS" if condition else "FAIL"
    return f"[{flag}] {description}"
