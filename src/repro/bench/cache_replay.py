"""Iterative-exploration replay: semantic cuboid cache vs plain-LRU.

The paper's headline workload is iterative: a user issues a query, then
navigates via P-ROLL-UP / global roll-ups / slices / APPEND / DE-TAIL,
revisiting earlier views along the way.  This driver replays one such
pinned-seed session twice — once against a plain exact-key LRU
repository and once with the semantic cache enabled — and reports hit
rate, per-query latency and total scan work for each.

Every query in the session is a *pure function of the dataset seed*
(slice values come from the first event, not from timing or randomness),
so the replay is deterministic and its counters are drift-gateable in
CI.  ``verify_bit_identity`` recomputes every answer on a cold,
repository-free engine and compares cells exactly — the acceptance bar
for any semantic derivation.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import replace
from typing import Dict, List, Tuple

from repro.core import operations as ops
from repro.core.engine import SOLAPEngine
from repro.core.spec import CellRestriction, CuboidSpec
from repro.datagen.synthetic import (
    SyntheticConfig,
    base_spec,
    generate_event_database,
)
from repro.events.database import EventDatabase

#: pinned generator seed — the whole session derives from it
REPLAY_SEED = 42


def build_replay_db(n_sequences: int = 300) -> EventDatabase:
    config = SyntheticConfig(I=100, L=20, theta=0.9, D=n_sequences, seed=REPLAY_SEED)
    return generate_event_database(config)


def build_replay_session(db: EventDatabase) -> List[Tuple[str, CuboidSpec]]:
    """The exploration session: 12 queries, deterministic given the db.

    Mix: 2 cold misses (the base view and an APPEND extension), 3 exact
    repeats (revisits), and 7 steps that are semantically derivable from
    earlier answers (pattern/global roll-ups, slices, a dice).
    """
    schema = db.schema
    hierarchy = schema.hierarchy("symbol")
    symbols = db.column("symbol")
    first_symbol = symbols[0]
    first_group = hierarchy.map_value(first_symbol, "group")
    second_group = hierarchy.map_value(symbols[1], "group")

    base = replace(
        base_spec(("X", "Y")),
        group_by=(("symbol", "group"),),
        restriction=CellRestriction.ALL_MATCHED,
    )
    rolled_x = ops.p_roll_up(base, "X", schema)
    rolled_xy = ops.p_roll_up(rolled_x, "Y", schema)
    global_up = ops.roll_up_global(base, "symbol", schema)
    sliced = ops.slice_global(base, "symbol", first_group)
    extended = ops.append(base, "Z", "symbol", "symbol")
    sliced_rolled = ops.p_roll_up(sliced, "X", schema)
    diced = ops.dice_global(base, "symbol", (first_group, second_group))
    pattern_sliced = ops.slice_pattern(base, "X", first_symbol)

    return [
        ("base L2 view", base),  # cold
        ("P-ROLL-UP X", rolled_x),  # derivable
        ("P-ROLL-UP X,Y", rolled_xy),  # derivable (from the previous step)
        ("revisit base", base),  # exact repeat
        ("ROLL-UP group dim", global_up),  # derivable
        ("SLICE group dim", sliced),  # derivable
        ("APPEND Z", extended),  # cold — never derivable
        ("DE-TAIL back", ops.de_tail(extended)),  # == base: exact repeat
        ("SLICE + P-ROLL-UP X", sliced_rolled),  # derivable (2 hops from base)
        ("revisit P-ROLL-UP X", rolled_x),  # exact repeat
        ("DICE group dim", diced),  # derivable
        ("pattern SLICE X", pattern_sliced),  # derivable
    ]


def run_replay(db: EventDatabase, semantic: bool) -> Dict:
    """Run the session once on a fresh engine; returns the step log + summary."""
    engine = SOLAPEngine(
        db,
        semantic_cache=semantic,
        repository_policy="benefit" if semantic else "lru",
    )
    steps: List[Dict] = []
    for label, spec in build_replay_session(db):
        t0 = time.perf_counter()
        cuboid, stats = engine.execute(spec)
        wall_ms = (time.perf_counter() - t0) * 1000.0
        answer = stats.extra.get("cache_answer", "miss")
        steps.append(
            {
                "label": label,
                "spec": spec,
                "cuboid": cuboid,
                "answer": answer,
                "strategy": stats.strategy,
                "wall_ms": wall_ms,
                "sequences_scanned": stats.sequences_scanned,
                "index_bytes_built": stats.index_bytes_built,
                "cells": len(cuboid),
            }
        )
    kinds = [step["answer"].split(":", 1)[0] for step in steps]
    hits = sum(1 for kind in kinds if kind in ("exact", "derived"))
    # Work-counter drift: exact/derived answers must report zero scan and
    # zero index-build work — they never touch base data.
    drift = sum(
        1
        for step, kind in zip(steps, kinds)
        if kind in ("exact", "derived")
        and (step["sequences_scanned"] or step["index_bytes_built"])
    )
    return {
        "mode": "semantic" if semantic else "lru",
        "steps": steps,
        "queries": len(steps),
        "exact_hits": sum(1 for kind in kinds if kind == "exact"),
        "derived_hits": sum(1 for kind in kinds if kind == "derived"),
        "misses": sum(1 for kind in kinds if kind == "miss"),
        "hit_rate": hits / len(steps),
        "p50_ms": statistics.median(step["wall_ms"] for step in steps),
        "total_ms": sum(step["wall_ms"] for step in steps),
        "sequences_scanned": sum(step["sequences_scanned"] for step in steps),
        "cells": sum(step["cells"] for step in steps),
        "work_drift": drift,
        "semantic_hits": dict(engine.semantic_hits),
        "semantic_rejects": dict(engine.semantic_rejects),
    }


def verify_bit_identity(db: EventDatabase, report: Dict) -> List[str]:
    """Recompute every answered step cold; return labels that mismatch."""
    mismatches = []
    for step in report["steps"]:
        cold_engine = SOLAPEngine(db, use_repository=False)
        cold, __ = cold_engine.execute(step["spec"])
        if cold.to_dict() != step["cuboid"].to_dict():
            mismatches.append(step["label"])
    return mismatches


def replay_counters(db: EventDatabase, semantic: bool) -> Dict[str, int]:
    """Drift-gateable integer counters for the bench harness."""
    report = run_replay(db, semantic)
    return {
        "queries": report["queries"],
        "exact_hits": report["exact_hits"],
        "derived_hits": report["derived_hits"],
        "sequences_scanned": report["sequences_scanned"],
        "cells": report["cells"],
        "work_drift": report["work_drift"],
    }
