"""Sharded scatter-gather execution of S-cuboid queries.

N logical shards, each running the unchanged CompiledMatcher + CB/II
kernels over a consistent-hashed slice of the sequence pipeline, with a
coordinator that merges partial S-cuboids under the Gray-et-al. aggregate
algebra (SUM/COUNT/MIN/MAX fold directly, AVG ships (sum, count) pairs,
holistic aggregates fall back to single-shard execution).  See
``docs/sharding.md``.
"""

from repro.shard.coordinator import (
    ScatterGatherCoordinator,
    ShardMetrics,
    run_partials_inline,
)
from repro.shard.executor import ShardPartial, filter_groups, scan_shard_partial
from repro.shard.merge import (
    MERGEABLE_FUNCS,
    check_mergeable,
    finalize_transport,
    merge_partial_cells,
    transport_spec,
)
from repro.shard.planner import DEFAULT_REPLICAS, ShardPlanner, stable_hash

__all__ = [
    "DEFAULT_REPLICAS",
    "MERGEABLE_FUNCS",
    "ScatterGatherCoordinator",
    "ShardMetrics",
    "ShardPartial",
    "ShardPlanner",
    "check_mergeable",
    "filter_groups",
    "finalize_transport",
    "merge_partial_cells",
    "run_partials_inline",
    "scan_shard_partial",
    "stable_hash",
    "transport_spec",
]
