"""Scatter-gather execution of one query across N logical shards.

The :class:`ScatterGatherCoordinator` is installed on the engine as
``engine.scatter_gather`` (mirroring the ``cb_scanner`` hook) and called
with the already-formed sequence pipeline and the already-resolved
strategy.  It:

1. rewrites the spec into transport form (AVG -> AVGPAIR pairs) — a
   holistic aggregate raises :class:`~repro.errors.NotMergeableError`
   here and the coordinator *declines*, so the engine falls back to
   single-shard execution;
2. consistent-hashes every selected sequence's cluster key onto the
   shards (:class:`~repro.shard.planner.ShardPlanner`), preserving the
   canonical scan order within each shard;
3. scatters shard tasks onto the execution backend (thread or process
   pool — or runs them inline for the serial backend), each shard
   running the unchanged CB/II kernels over its slice
   (:func:`~repro.shard.executor.scan_shard_partial`);
4. gathers the partial cell tables and merges them with the per-aggregate
   merge algebra (:mod:`repro.shard.merge`), finalising AVGPAIR pairs
   back into AVG quotients.

COUNT/MIN/MAX merges are exact; SUM and the AVG numerator re-associate
float additions across shards, so they are exact for integer-valued
measures and equal up to float associativity otherwise.

Observability: ``shard.scan`` / ``shard.merge`` spans, ``solap_shard_*``
metrics (per-shard sequences/rows/cells, skew gauge, merge-time
histogram, fallback counter) and ``stats.extra`` keys surfaced by
EXPLAIN ANALYZE (``shard_fanout``, ``shard_skew``, ``scan_backend``).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.core.counter_based import selected_sequences
from repro.core.cuboid import SCuboid
from repro.core.matcher import can_compile
from repro.core.spec import CuboidSpec
from repro.core.stats import QueryStats
from repro.errors import NotMergeableError
from repro.events.database import EventDatabase
from repro.events.sequence import SequenceGroupSet
from repro.obs.profile import ResourceProfile, WorkerProfile
from repro.obs.spans import SpanContext, current_context, graft_payload, span
from repro.shard.executor import (
    ShardPartial,
    filter_groups,
    run_traced_shard_partial,
)
from repro.shard.merge import (
    finalize_transport,
    merge_partial_cells,
    transport_spec,
)
from repro.shard.planner import ShardPlanner


class ShardMetrics:
    """The ``solap_shard_*`` family bundle (no-op without a registry)."""

    def __init__(self, registry=None):
        self.registry = registry
        if registry is None:
            return
        self.scans = registry.counter(
            "solap_shard_scans_total",
            "Queries answered by scatter-gather shard execution",
        )
        self.fallbacks = registry.counter(
            "solap_shard_fallback_total",
            "Scatter-gather declines by reason (engine fell back to "
            "single-shard execution)",
            labels=("reason",),
        )
        self.sequences = registry.counter(
            "solap_shard_sequences_total",
            "Sequences scanned per logical shard",
            labels=("shard",),
        )
        self.rows = registry.counter(
            "solap_shard_rows_total",
            "Event rows covered by each logical shard's sequences",
            labels=("shard",),
        )
        self.cells = registry.counter(
            "solap_shard_cells_total",
            "Partial cuboid cells produced per logical shard",
            labels=("shard",),
        )
        self.skew = registry.gauge(
            "solap_shard_skew",
            "Max/mean shard population ratio of the last scatter (1.0 = even)",
        )
        self.merge_seconds = registry.histogram(
            "solap_shard_merge_seconds",
            "Wall time of the partial-cuboid merge phase",
        )

    def observe_fallback(self, reason: str) -> None:
        if self.registry is not None:
            self.fallbacks.labels(reason).inc()

    def observe_scan(self, partials: List[ShardPartial], skew: float) -> None:
        if self.registry is None:
            return
        self.scans.inc()
        self.skew.set(skew)
        for partial in partials:
            shard = str(partial.shard)
            self.sequences.labels(shard).inc(partial.sequences_scanned)
            self.rows.labels(shard).inc(partial.rows_matched)
            self.cells.labels(shard).inc(partial.cells_out)

    def observe_merge(self, seconds: float) -> None:
        if self.registry is not None:
            self.merge_seconds.observe(seconds)


class ScatterGatherCoordinator:
    """Engine hook (``engine.scatter_gather``) for sharded execution.

    *backend* is an :class:`~repro.service.parallel.ExecutorBackend` (or
    anything with its ``run_partial_shards`` method); None or the serial
    backend runs shard tasks inline on the calling thread — same merge
    path, no pool.  The coordinator may decline (return None) on empty
    selections, sub-``min_sequences`` inputs and non-mergeable
    aggregates; the engine then falls through to single-shard execution.
    """

    def __init__(
        self,
        shards: int,
        backend=None,
        min_sequences: int = 2,
        registry=None,
        planner: Optional[ShardPlanner] = None,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self.backend = backend
        self.min_sequences = max(min_sequences, 1)
        self.planner = planner or ShardPlanner(shards)
        self.metrics = ShardMetrics(registry)
        self.scans_run = 0

    @property
    def backend_name(self) -> str:
        return getattr(self.backend, "name", None) or "serial"

    def __call__(
        self,
        db: EventDatabase,
        groups: SequenceGroupSet,
        spec: CuboidSpec,
        stats: QueryStats,
        strategy: str,
    ) -> Optional[SCuboid]:
        try:
            transport, restore = transport_spec(spec)
        except NotMergeableError:
            self.metrics.observe_fallback("not_mergeable")
            return None
        slices = spec.sliced_groups()
        work = [
            sequence for __, sequence in selected_sequences(groups, slices)
        ]
        if len(work) < self.min_sequences:
            self.metrics.observe_fallback("below_threshold")
            return None

        assignment = self.planner.assign(
            (sequence.cluster_key, sequence.sid) for sequence in work
        )
        skew = self.planner.skew(assignment)
        tasks: List[Tuple[int, Tuple[int, ...]]] = [
            (shard, tuple(sids)) for shard, sids in sorted(assignment.items())
        ]
        deadline = stats.deadline
        with span(
            "shard.scan",
            backend=self.backend_name,
            shards=len(tasks),
            ring_shards=self.shards,
        ) as scan_span:
            trace_ctx = current_context()
            partials = self._scatter(
                db, groups, transport, tasks, strategy, deadline, trace_ctx
            )
            for partial in partials:
                if partial.spans is not None:
                    graft_payload(scan_span, partial.spans)
            scan_span.set("sequences_scanned", len(work))
            scan_span.set("skew", round(skew, 3))

        merge_started = time.perf_counter()
        with span("shard.merge", shards=len(partials)) as merge_span:
            merged = merge_partial_cells(
                transport, [partial.cells for partial in partials]
            )
            cells = finalize_transport(merged, restore)
            merge_span.set("cells_out", len(cells))
        merge_seconds = time.perf_counter() - merge_started

        for partial in partials:
            stats.add_scan(partial.sequences_scanned)
            stats.index_bytes_built += partial.index_bytes_built
        stats.checkpoint()
        self.scans_run += 1
        self.metrics.observe_scan(partials, skew)
        self.metrics.observe_merge(merge_seconds)
        stats.extra["shard_fanout"] = len(tasks)
        stats.extra["shard_skew"] = round(skew, 3)
        stats.extra["scan_backend"] = self.backend_name
        if any(partial.profile is not None for partial in partials):
            profile = build_resource_profile(
                db, partials, self.backend_name, skew, merge_seconds
            )
            stats.extra["resource_profile"] = profile.to_dict()
        if strategy == "cb":
            stats.extra["matcher"] = (
                "compiled" if can_compile(spec.template, db) else "legacy"
            )
        return SCuboid(spec, cells)

    def _scatter(
        self,
        db: EventDatabase,
        groups: SequenceGroupSet,
        transport: CuboidSpec,
        tasks: List[Tuple[int, Tuple[int, ...]]],
        strategy: str,
        deadline,
        trace_ctx: Optional[SpanContext] = None,
    ) -> List[ShardPartial]:
        backend = self.backend
        if backend is not None and hasattr(backend, "run_partial_shards"):
            return backend.run_partial_shards(
                db, groups, transport, tasks, strategy, deadline,
                trace_ctx=trace_ctx,
            )
        return run_partials_inline(
            db, groups, transport, tasks, strategy, deadline, trace_ctx
        )


def build_resource_profile(
    db: EventDatabase,
    partials: List[ShardPartial],
    backend: str,
    skew: float,
    merge_seconds: float,
) -> ResourceProfile:
    """Fold the shards' worker profiles into one query-wide profile.

    ``bytes_scanned`` approximates encoded reads as rows x dims x 4
    (uint32 codes) — a capacity-planning estimate, not a measured count.
    """
    workers = [
        WorkerProfile(**partial.profile)
        for partial in partials
        if partial.profile is not None
    ]
    rows_scanned = sum(partial.rows_matched for partial in partials)
    n_dims = len(getattr(db.schema, "dimensions", ()) or ())
    return ResourceProfile(
        backend=backend,
        fanout=len(partials),
        skew=skew,
        sequences_scanned=sum(p.sequences_scanned for p in partials),
        rows_scanned=rows_scanned,
        bytes_scanned=rows_scanned * max(n_dims, 1) * 4,
        cells_merged=sum(partial.cells_out for partial in partials),
        merge_seconds=merge_seconds,
        workers=workers,
    )


def run_partials_inline(
    db: EventDatabase,
    groups: SequenceGroupSet,
    transport: CuboidSpec,
    tasks: List[Tuple[int, Tuple[int, ...]]],
    strategy: str,
    deadline,
    trace_ctx: Optional[SpanContext] = None,
) -> List[ShardPartial]:
    """Serial scatter: run every shard task on the calling thread.

    Inline shards still run under a :class:`RemoteSpanCollector` when
    traced, so every backend produces the same origin-marked worker
    subtrees — one rendering path downstream.
    """
    partials: List[ShardPartial] = []
    for shard, sids in tasks:
        partials.append(
            run_traced_shard_partial(
                db, transport, strategy, shard, deadline, trace_ctx, "serial",
                lambda sids=sids: filter_groups(groups, frozenset(sids)),
            )
        )
    return partials
