"""The partial S-cuboid merge algebra (Gray et al.'s classification).

S-cuboids are non-summarizable across *pattern* dimensions, but across
*data* partitions the paper's five aggregate functions are algebraic or
distributive: a cell's value over the whole dataset is a fold of the same
cell's values over disjoint sequence subsets.

================  =========================  ==========================
aggregate         partial state shipped      merge
================  =========================  ==========================
COUNT(*)          count                      sum
SUM(m)            sum                        sum
MIN(m)            min (None when no value)   min ignoring None
MAX(m)            max (None when no value)   max ignoring None
AVG(m)            (sum, count) pair          pairwise sum, then divide
holistic          —                          :class:`NotMergeableError`
================  =========================  ==========================

AVG is the algebraic case: a finalised average cannot be merged, so the
coordinator rewrites ``AVG(m)`` to the internal ``AVGPAIR(m)`` transport
aggregate before scattering (shards then finalise to the pair) and
restores the quotient — and the ``AVG(m)`` result name — after gathering.
Any aggregate outside the table raises the typed
:class:`~repro.errors.NotMergeableError`, which callers treat as "fall
back to single-shard execution".
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

from repro.core.spec import AggregateSpec, CuboidSpec
from repro.errors import NotMergeableError

#: cells dict of a (partial or final) S-cuboid: (group_key, cell_key) ->
#: {aggregate name: value}
Cells = Dict[Tuple[Tuple[object, ...], Tuple[object, ...]], Dict[str, object]]

#: aggregate functions whose partials merge across data shards
MERGEABLE_FUNCS = ("COUNT", "SUM", "AVG", "MIN", "MAX", "AVGPAIR")


def check_mergeable(spec: CuboidSpec) -> None:
    """Raise :class:`NotMergeableError` on the first holistic aggregate."""
    for aggregate in spec.aggregates:
        if aggregate.func not in MERGEABLE_FUNCS:
            raise NotMergeableError(aggregate.name)


def transport_spec(spec: CuboidSpec) -> Tuple[CuboidSpec, Dict[str, str]]:
    """The spec shards actually execute, plus the AVG name restoration map.

    ``AVG(m)`` aggregates become ``AVGPAIR(m)`` (same measure, same
    scope) so shard partials carry the mergeable (sum, count) pair;
    everything else passes through unchanged.  Returns ``(transport,
    {transport name: original name})`` where the map has one entry per
    rewritten AVG.  Raises :class:`NotMergeableError` for holistic
    aggregates — callers fall back to single-shard execution.
    """
    check_mergeable(spec)
    rewritten = []
    restore: Dict[str, str] = {}
    changed = False
    for aggregate in spec.aggregates:
        if aggregate.func == "AVG":
            pair = AggregateSpec(
                "AVGPAIR", aggregate.argument, scope=aggregate.scope
            )
            rewritten.append(pair)
            restore[pair.name] = aggregate.name
            changed = True
        else:
            rewritten.append(aggregate)
    if not changed:
        return spec, {}
    return replace(spec, aggregates=tuple(rewritten)), restore


def _merge_value(func: str, current: object, incoming: object) -> object:
    if incoming is None:
        return current
    if current is None:
        return incoming
    if func in ("COUNT", "SUM"):
        return current + incoming  # type: ignore[operator]
    if func == "MIN":
        return current if current <= incoming else incoming  # type: ignore[operator]
    if func == "MAX":
        return current if current >= incoming else incoming  # type: ignore[operator]
    if func == "AVGPAIR":
        return (
            current[0] + incoming[0],  # type: ignore[index]
            current[1] + incoming[1],  # type: ignore[index]
        )
    raise NotMergeableError(func)


def merge_partial_cells(
    transport: CuboidSpec, partials: List[Cells]
) -> Cells:
    """Fold per-shard partial cell tables into one (still-transport) table.

    Cells present in several partials merge per aggregate; cells seen by
    one shard only pass through.  Values stay in transport form —
    ``AVGPAIR`` pairs are not divided here — so the merge is associative
    and could itself run in a tree.
    """
    merged: Cells = {}
    funcs = [(aggregate.name, aggregate.func) for aggregate in transport.aggregates]
    for partial in partials:
        for cell_key, values in partial.items():
            current = merged.get(cell_key)
            if current is None:
                merged[cell_key] = dict(values)
                continue
            for name, func in funcs:
                current[name] = _merge_value(
                    func, current.get(name), values.get(name)
                )
    return merged


def finalize_transport(merged: Cells, restore: Dict[str, str]) -> Cells:
    """Turn merged transport cells into the user-visible result cells.

    Each ``AVGPAIR(m)`` entry becomes ``AVG(m) = sum / count`` (None when
    no value contributed, matching the serial accumulator).  With an
    empty *restore* map the cells pass through untouched.
    """
    if not restore:
        return merged
    out: Cells = {}
    for cell_key, values in merged.items():
        finished: Dict[str, object] = {}
        for name, value in values.items():
            original = restore.get(name)
            if original is None:
                finished[name] = value
            else:
                total, count = value  # type: ignore[misc]
                finished[original] = total / count if count else None
        out[cell_key] = finished
    return out
