"""Consistent-hash placement of sequences onto logical shards.

The planner maps a sequence's stable identity (its cluster key) onto one
of N logical shards through a consistent-hash ring with virtual nodes.
Two properties matter for scale-out:

* **determinism across processes** — ring points and key positions come
  from :func:`hashlib.blake2b` digests, never from Python's per-process
  randomised ``hash()``, so every coordinator, worker and future node
  agrees on the placement of every key without coordination;
* **stability under resharding** — growing the ring from N to N+1 shards
  moves only the keys whose ring arc the new shard's virtual nodes
  capture (≈ 1/(N+1) of all keys), and every moved key moves *to* the
  new shard.  A modulo placement would reshuffle almost everything.

Virtual nodes (``replicas`` points per shard) smooth the arc lengths so
shard populations stay balanced even at small N.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, Iterable, List, Tuple

#: ring points per shard; 64 keeps the max/mean population skew within a
#: few percent at the shard counts we run (1-16) while the ring stays
#: tiny (N*64 sorted ints)
DEFAULT_REPLICAS = 64


def stable_hash(key: object) -> int:
    """A 64-bit position for *key*, identical in every process.

    Keys are hashed through their ``repr`` — cluster keys are tuples of
    primitives with stable reprs — via blake2b, so the placement never
    depends on ``PYTHONHASHSEED``.
    """
    digest = hashlib.blake2b(repr(key).encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


class ShardPlanner:
    """Assigns sequence identities to one of *shards* logical shards."""

    def __init__(self, shards: int, replicas: int = DEFAULT_REPLICAS):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.shards = shards
        self.replicas = replicas
        ring: List[Tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(replicas):
                point = stable_hash(f"shard-{shard}:vnode-{replica}")
                ring.append((point, shard))
        ring.sort()
        self._points = [point for point, __ in ring]
        self._owners = [shard for __, shard in ring]

    def shard_of(self, key: object) -> int:
        """The shard owning *key*: the first ring point at or after it."""
        position = stable_hash(key)
        index = bisect_right(self._points, position) % len(self._points)
        return self._owners[index]

    def assign(self, keyed_items: Iterable[Tuple[object, object]]) -> Dict[int, List[object]]:
        """Partition ``(key, item)`` pairs into ``{shard: [items...]}``.

        Input order is preserved within each shard (the coordinator feeds
        the canonical scan order, so shard-local scans replay it).  Empty
        shards are simply absent — no task is ever scheduled for them,
        mirroring :func:`repro.service.parallel.split_chunks`.
        """
        assignment: Dict[int, List[object]] = {}
        for key, item in keyed_items:
            assignment.setdefault(self.shard_of(key), []).append(item)
        return assignment

    def skew(self, assignment: Dict[int, List[object]]) -> float:
        """Max/mean population ratio of a non-empty assignment (1.0 = even).

        Means are taken over the configured shard count, not just the
        occupied shards, so a pathological all-on-one-shard placement at
        N=4 reports 4.0 rather than 1.0.
        """
        if not assignment:
            return 1.0
        sizes = [len(items) for items in assignment.values()]
        mean = sum(sizes) / float(self.shards)
        return max(sizes) / mean if mean else 1.0

    def __repr__(self) -> str:
        return f"ShardPlanner({self.shards} shards, {self.replicas} vnodes each)"
