"""Shard-local execution: run the CB/II kernels over a sequence subset.

A shard executes the *transport* spec (AVG already rewritten to AVGPAIR)
over the slice of the sequence pipeline that the planner assigned to it,
with the unchanged kernels — :func:`counter_based_cuboid` or
:func:`inverted_index_cuboid` over a shard-private throwaway index
registry — and ships back plain cell dictionaries plus its work counters.
Everything here is importable from worker processes: no service-layer
dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, Dict, Optional, Tuple

from repro.core.counter_based import counter_based_cuboid
from repro.core.inverted_index import inverted_index_cuboid
from repro.core.spec import CuboidSpec
from repro.core.stats import QueryStats
from repro.events.database import EventDatabase
from repro.events.sequence import SequenceGroup, SequenceGroupSet
from repro.shard.merge import Cells


@dataclass(frozen=True)
class ShardPartial:
    """One shard's contribution: transport cells plus work accounting."""

    shard: int
    cells: Cells
    sequences_scanned: int = 0
    index_bytes_built: int = 0
    rows_matched: int = 0
    #: cells the shard produced before merging (skew/telemetry only)
    cells_out: int = field(default=0)


def filter_groups(
    groups: SequenceGroupSet, sids: AbstractSet[int]
) -> SequenceGroupSet:
    """The shard-local slice of a pipeline: only sequences in *sids*.

    Group keys (and their canonical iteration order) are preserved;
    groups left with no member sequence are dropped entirely, so empty
    shards cost nothing downstream.
    """
    picked: Dict[Tuple[object, ...], SequenceGroup] = {}
    for group in groups:
        members = [sequence for sequence in group if sequence.sid in sids]
        if members:
            picked[group.key] = SequenceGroup(group.key, members)
    return SequenceGroupSet(global_dims=groups.global_dims, groups=picked)


def scan_shard_partial(
    db: EventDatabase,
    local_groups: SequenceGroupSet,
    transport: CuboidSpec,
    strategy: str,
    shard: int,
    deadline: Optional[object] = None,
) -> ShardPartial:
    """Execute one shard's slice with the requested kernel strategy.

    ``strategy`` is the engine's already-resolved choice ("cb" or "ii");
    II shards build their indices into a private registry that dies with
    the call — partial cuboids are merged, indices are not.
    """
    stats = QueryStats(deadline=deadline)
    if strategy == "ii":
        from repro.index.registry import IndexRegistry

        cuboid = inverted_index_cuboid(
            db, local_groups, transport, IndexRegistry(), stats
        )
    else:
        cuboid = counter_based_cuboid(db, local_groups, transport, stats)
    return ShardPartial(
        shard=shard,
        cells=cuboid.cells,
        sequences_scanned=stats.sequences_scanned,
        index_bytes_built=stats.index_bytes_built,
        rows_matched=sum(
            len(sequence.rows) for sequence in local_groups.all_sequences()
        ),
        cells_out=len(cuboid.cells),
    )
