"""Shard-local execution: run the CB/II kernels over a sequence subset.

A shard executes the *transport* spec (AVG already rewritten to AVGPAIR)
over the slice of the sequence pipeline that the planner assigned to it,
with the unchanged kernels — :func:`counter_based_cuboid` or
:func:`inverted_index_cuboid` over a shard-private throwaway index
registry — and ships back plain cell dictionaries plus its work counters.
Everything here is importable from worker processes: no service-layer
dependencies.

Tracing: when the task carries a :class:`~repro.obs.spans.SpanContext`
the shard records its work under a worker-local
:class:`~repro.obs.spans.RemoteSpanCollector` — stage spans
``worker.attach`` (reported: the mmap attach happened at worker init,
its cost rides in the ``seconds`` attribute), ``worker.rebuild``
(pipeline slice/rebuild), ``worker.match`` (the kernel, with its own
``cb.scan`` / ``ii.*`` child spans) and ``worker.fold`` (partial cell
assembly) — and returns the serialised subtree plus a
:class:`~repro.obs.profile.WorkerProfile` dict on the
:class:`ShardPartial`.  Without a context every ``span(...)`` call stays
on the NULL_SPAN fast path, so untraced shards do byte-for-byte the work
they always did.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import AbstractSet, Callable, Dict, Optional, Tuple

from repro.core.counter_based import counter_based_cuboid
from repro.core.inverted_index import inverted_index_cuboid
from repro.core.spec import CuboidSpec
from repro.core.stats import QueryStats
from repro.events.database import EventDatabase
from repro.events.sequence import SequenceGroup, SequenceGroupSet
from repro.obs.profile import worker_profile_from_spans
from repro.obs.spans import RemoteSpanCollector, SpanContext, span
from repro.shard.merge import Cells


@dataclass(frozen=True)
class ShardPartial:
    """One shard's contribution: transport cells plus work accounting."""

    shard: int
    cells: Cells
    sequences_scanned: int = 0
    index_bytes_built: int = 0
    rows_matched: int = 0
    #: cells the shard produced before merging (skew/telemetry only)
    cells_out: int = field(default=0)
    #: serialised worker span payload (None when the task was untraced)
    spans: Optional[dict] = field(default=None)
    #: the worker's resource profile dict (None when untraced)
    profile: Optional[dict] = field(default=None)


def filter_groups(
    groups: SequenceGroupSet, sids: AbstractSet[int]
) -> SequenceGroupSet:
    """The shard-local slice of a pipeline: only sequences in *sids*.

    Group keys (and their canonical iteration order) are preserved;
    groups left with no member sequence are dropped entirely, so empty
    shards cost nothing downstream.
    """
    picked: Dict[Tuple[object, ...], SequenceGroup] = {}
    for group in groups:
        members = [sequence for sequence in group if sequence.sid in sids]
        if members:
            picked[group.key] = SequenceGroup(group.key, members)
    return SequenceGroupSet(global_dims=groups.global_dims, groups=picked)


def report_attach_span(db: EventDatabase) -> float:
    """Emit the ``worker.attach`` marker span for this worker's store.

    Segment-backed workers pay their mmap attach at pool-init/unpickle
    time, *before* any task tracer exists, so the span cannot time it
    live: it is a zero-length marker whose ``seconds`` attribute reports
    the attach latency the store recorded.  In-memory databases report
    0.0 — the marker still appears so every traced shard shows the full
    attach/rebuild/match/fold stage set.
    """
    manager = getattr(db, "storage", None)
    seconds = float(getattr(manager, "last_attach_seconds", 0.0) or 0.0)
    with span("worker.attach", seconds=round(seconds, 6), reported=True):
        pass
    return seconds


def scan_shard_partial(
    db: EventDatabase,
    local_groups: SequenceGroupSet,
    transport: CuboidSpec,
    strategy: str,
    shard: int,
    deadline: Optional[object] = None,
) -> ShardPartial:
    """Execute one shard's slice with the requested kernel strategy.

    ``strategy`` is the engine's already-resolved choice ("cb" or "ii");
    II shards build their indices into a private registry that dies with
    the call — partial cuboids are merged, indices are not.
    """
    stats = QueryStats(deadline=deadline)
    with span("worker.match", strategy=strategy) as match_span:
        if strategy == "ii":
            from repro.index.registry import IndexRegistry

            cuboid = inverted_index_cuboid(
                db, local_groups, transport, IndexRegistry(), stats
            )
        else:
            cuboid = counter_based_cuboid(db, local_groups, transport, stats)
        match_span.set("sequences_scanned", stats.sequences_scanned)
    with span("worker.fold") as fold_span:
        rows_matched = sum(
            len(sequence.rows) for sequence in local_groups.all_sequences()
        )
        partial = ShardPartial(
            shard=shard,
            cells=cuboid.cells,
            sequences_scanned=stats.sequences_scanned,
            index_bytes_built=stats.index_bytes_built,
            rows_matched=rows_matched,
            cells_out=len(cuboid.cells),
        )
        fold_span.set("cells_out", partial.cells_out)
    return partial


def run_traced_shard_partial(
    db: EventDatabase,
    transport: CuboidSpec,
    strategy: str,
    shard: int,
    deadline: Optional[object],
    trace_ctx: Optional[SpanContext],
    backend: str,
    rebuild: Callable[[], SequenceGroupSet],
) -> ShardPartial:
    """One complete shard task: rebuild/slice, scan, collect telemetry.

    *rebuild* produces the shard-local groups (a closure over
    ``filter_groups`` for backends that share the coordinator's pipeline,
    or the per-process pipeline memo for process workers); running it
    inside the collector is what makes ``worker.rebuild`` honest on
    every backend.  With ``trace_ctx=None`` the collector is a no-op and
    the result carries no spans or profile.
    """
    collector = RemoteSpanCollector(trace_ctx, shard=shard, backend=backend)
    with collector:
        report_attach_span(db)
        with span("worker.rebuild") as rebuild_span:
            local = rebuild()
            rebuild_span.set("sequences_out", local.total_sequences())
        partial = scan_shard_partial(
            db, local, transport, strategy, shard, deadline
        )
    payload = collector.payload()
    if payload is None:
        return partial
    profile = worker_profile_from_spans(
        collector.root,
        shard=shard,
        backend=backend,
        pid=os.getpid(),
        sequences_scanned=partial.sequences_scanned,
        rows_scanned=partial.rows_matched,
        cells_out=partial.cells_out,
        index_bytes_built=partial.index_bytes_built,
    )
    return replace(partial, spans=payload, profile=profile.to_dict())
