"""``solap`` — command-line front end for the S-OLAP library.

Subcommands:

* ``generate`` — produce a self-describing dataset directory from one of
  the built-in generators (synthetic / transit / clickstream);
* ``info`` — summarise a dataset (schema, hierarchies, event count), with
  optional probe queries to exercise and report the engine caches;
* ``query`` — run an S-OLAP query file against a dataset through the
  query service (deadline-aware) and print the tabulated cuboid plus
  execution statistics;
* ``advise`` — recommend which inverted indices to materialise offline
  for a workload of query files;
* ``service-stats`` — run a workload through the concurrent query
  service and print its metrics report (latency histogram, cache hit
  ratios, session/eviction counters) as text, JSON, or Prometheus text
  format (``--format prom``);
* ``serve-metrics`` — run a workload through the service while serving
  ``/metrics`` (Prometheus), ``/healthz`` and ``/varz`` over HTTP, with
  optional structured JSON query logging and slow-query capture;
* ``segment`` — manage mmap-attachable columnar segment stores
  (``write`` a dataset into segments, ``info`` a store, ``verify``
  checksums and structure).

Every command that takes a dataset accepts either a ``schema.json`` +
``events.jsonl`` directory or a segment-store directory (detected by its
``MANIFEST.json``); segment stores attach zero-copy via ``mmap``.

Example::

    solap generate transit --out data/transit --cards 300 --days 5
    solap query data/transit examples/q1.solap --strategy ii --limit 10
    solap segment write data/transit data/transit-seg
    solap query data/transit-seg examples/q1.solap --backend process --workers 4
    solap service-stats data/transit examples/q1.solap --repeat 3
    solap serve-metrics data/transit examples/q1.solap --port 9464
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.engine import SOLAPEngine
from repro.datagen import (
    ClickstreamConfig,
    SyntheticConfig,
    TransitConfig,
    generate_clickstream,
    generate_event_database,
    generate_transit,
    remove_crawler_sessions,
)
from repro.errors import ServiceError, SOLAPError, StorageError
from repro.io import load_dataset, save_cuboid, save_dataset
from repro.optimizer import advise_for_workload
from repro.ql import parse_query
from repro.service import QueryService, ServiceConfig
from repro.storage import StorageManager, attach_store, is_segment_store


def _positive_seconds(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError("timeout must be > 0 seconds")
    return value


def _load_db(path: str):
    """A dataset directory *or* a segment store, by sniffing the manifest.

    Segment stores attach by ``mmap`` (lazy, zero-copy); plain dataset
    directories load eagerly via :func:`load_dataset`.
    """
    if is_segment_store(path):
        return attach_store(path)
    return load_dataset(path)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="solap",
        description="Pattern-based OLAP on sequence data (SIGMOD 2008 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a dataset directory")
    gen.add_argument(
        "kind", choices=("synthetic", "transit", "clickstream"),
        help="which built-in generator to use",
    )
    gen.add_argument("--out", required=True, help="output directory")
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--sequences", type=int, default=1000,
                     help="synthetic: D (number of sequences)")
    gen.add_argument("--length", type=int, default=20,
                     help="synthetic: L (mean sequence length)")
    gen.add_argument("--symbols", type=int, default=100,
                     help="synthetic: I (domain size)")
    gen.add_argument("--theta", type=float, default=0.9,
                     help="synthetic: Zipf skew")
    gen.add_argument("--cards", type=int, default=200, help="transit: cards")
    gen.add_argument("--days", type=int, default=7, help="transit: days")
    gen.add_argument("--sessions", type=int, default=5000,
                     help="clickstream: sessions")

    info = sub.add_parser("info", help="summarise a dataset directory")
    info.add_argument("dataset", help="dataset directory")
    info.add_argument(
        "--queries",
        nargs="*",
        default=(),
        metavar="FILE",
        help="probe query files to execute; their cache behaviour "
        "(sequence-cache hits/misses, index-registry bytes) is reported",
    )

    query = sub.add_parser("query", help="run a query file against a dataset")
    query.add_argument("dataset", help="dataset directory")
    query.add_argument("queryfile", help="file containing one S-OLAP query")
    query.add_argument(
        "--strategy", choices=("auto", "cb", "ii", "cost"), default="auto"
    )
    query.add_argument("--limit", type=int, default=20,
                       help="rows of the tabulation to print")
    query.add_argument("--save", help="also write the cuboid as JSON")
    query.add_argument(
        "--explain",
        action="store_true",
        help="print the execution plan instead of running the query",
    )
    query.add_argument(
        "--analyze",
        action="store_true",
        help="run the query under tracing and print the EXPLAIN ANALYZE "
        "plan (per-stage wall times, row flow, cache outcomes) after "
        "the result",
    )
    query.add_argument(
        "--od-matrix",
        action="store_true",
        help="render the result as an origin-destination matrix "
        "(requires exactly two pattern dimensions)",
    )
    query.add_argument(
        "--timeout",
        type=_positive_seconds,
        default=None,
        metavar="SECONDS",
        help="per-query deadline; the scan is cancelled cooperatively "
        "once the budget is spent",
    )
    query.add_argument(
        "--workers",
        type=int,
        default=1,
        help="scan workers (>1 enables sharded CB scans)",
    )
    query.add_argument(
        "--backend",
        choices=("serial", "thread", "process"),
        default="thread",
        help="execution backend for sharded CB scans: threads share the "
        "GIL (fairness only), processes give true multi-core matching",
    )
    query.add_argument(
        "--shards",
        type=int,
        default=0,
        help="logical shards for scatter-gather execution (partial "
        "S-cuboids merged under the aggregate algebra; 0 disables)",
    )

    advise = sub.add_parser(
        "advise",
        help="recommend indices and cuboid materializations for a workload",
    )
    advise.add_argument("dataset", help="dataset directory")
    advise.add_argument("queryfiles", nargs="*", help="workload query files")
    advise.add_argument(
        "--budget-mb", type=float, default=64.0, help="index byte budget"
    )
    advise.add_argument(
        "--log",
        default=None,
        metavar="FILE",
        help="mine a JSON-lines query log (obs.logging stream) into "
        "per-spec stats and advise cuboid materializations by "
        "benefit-per-byte under the budget",
    )

    stats = sub.add_parser(
        "service-stats",
        help="run a workload through the query service and print metrics",
    )
    stats.add_argument("dataset", help="dataset directory")
    stats.add_argument("queryfiles", nargs="+", help="workload query files")
    stats.add_argument(
        "--strategy", choices=("auto", "cb", "ii", "cost"), default="auto"
    )
    stats.add_argument(
        "--repeat", type=int, default=2,
        help="passes over the workload (>1 shows cache hit ratios)",
    )
    stats.add_argument(
        "--timeout", type=_positive_seconds, default=None, metavar="SECONDS",
        help="per-query deadline for every workload query",
    )
    stats.add_argument(
        "--workers", type=int, default=4, help="scan workers"
    )
    stats.add_argument(
        "--backend",
        choices=("serial", "thread", "process"),
        default="thread",
        help="execution backend for sharded CB scans",
    )
    stats.add_argument(
        "--shards",
        type=int,
        default=0,
        help="logical shards for scatter-gather execution (0 disables)",
    )
    stats.add_argument(
        "--format",
        choices=("text", "json", "prom"),
        default="text",
        help="report format: human text, JSON snapshot, or Prometheus "
        "text exposition (scrapeable without the HTTP endpoint)",
    )

    serve = sub.add_parser(
        "serve-metrics",
        help="serve /metrics, /healthz and /varz while running a workload",
    )
    serve.add_argument("dataset", help="dataset directory")
    serve.add_argument(
        "queryfiles",
        nargs="*",
        help="workload query files run through the service (optional)",
    )
    serve.add_argument(
        "--port", type=int, default=9464,
        help="exporter port (0 binds an ephemeral port)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--strategy", choices=("auto", "cb", "ii", "cost"), default="auto"
    )
    serve.add_argument(
        "--repeat", type=int, default=1,
        help="passes over the workload before settling into serving",
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="keep serving this long after the workload, then exit "
        "(default: serve until interrupted)",
    )
    serve.add_argument(
        "--slow-query",
        type=_positive_seconds,
        default=None,
        metavar="SECONDS",
        help="emit a slow_query log record (with the EXPLAIN ANALYZE "
        "plan) for queries slower than this",
    )
    serve.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON query-lifecycle logs on stderr",
    )

    serve_api = sub.add_parser(
        "serve",
        help="serve S-OLAP queries over HTTP+JSON (sessions, async "
        "submit/poll/cancel, streamed progressive results)",
    )
    serve_api.add_argument("dataset", help="dataset directory")
    serve_api.add_argument(
        "--port", type=int, default=8080,
        help="listen port (0 binds an ephemeral port, printed at start)",
    )
    serve_api.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_api.add_argument(
        "--timeout", type=_positive_seconds, default=None, metavar="SECONDS",
        help="default per-query deadline (requests may override)",
    )
    serve_api.add_argument(
        "--max-concurrent", type=int, default=4,
        help="execution slots; the admission queue sheds beyond "
        "max-concurrent + queue-depth with HTTP 429",
    )
    serve_api.add_argument(
        "--job-history", type=int, default=256,
        help="finished async jobs kept pollable before pruning",
    )
    serve_api.add_argument(
        "--slow-query",
        type=_positive_seconds,
        default=None,
        metavar="SECONDS",
        help="emit a slow_query log record (with the EXPLAIN ANALYZE "
        "plan) for queries slower than this",
    )
    serve_api.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON request/query-lifecycle logs on stderr",
    )
    serve_api.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serve this long, then exit (default: until interrupted)",
    )

    segment = sub.add_parser(
        "segment",
        help="manage mmap-attachable columnar segment stores",
    )
    seg_sub = segment.add_subparsers(dest="segment_command", required=True)
    seg_write = seg_sub.add_parser(
        "write", help="write a dataset into a new segment store"
    )
    seg_write.add_argument("dataset", help="source dataset directory")
    seg_write.add_argument("out", help="segment-store directory to create")
    seg_write.add_argument(
        "--cluster-by",
        action="append",
        default=[],
        metavar="ATTR[:LEVEL]",
        help="freeze the sequence pipeline into the store: CLUSTER BY "
        "attribute (repeatable; LEVEL defaults to the base level)",
    )
    seg_write.add_argument(
        "--sequence-by",
        action="append",
        default=[],
        metavar="ATTR[:asc|desc]",
        help="SEQUENCE BY ordering key for the frozen pipeline "
        "(repeatable; default ascending)",
    )
    seg_write.add_argument(
        "--group-by",
        action="append",
        default=[],
        metavar="ATTR[:LEVEL]",
        help="SEQUENCE GROUP BY attribute for the frozen pipeline "
        "(repeatable)",
    )
    seg_info = seg_sub.add_parser(
        "info", help="summarise a segment store (segments, bytes, layout)"
    )
    seg_info.add_argument("store", help="segment-store directory")
    seg_verify = seg_sub.add_parser(
        "verify",
        help="full integrity check: checksums, dictionaries, layout",
    )
    seg_verify.add_argument(
        "store", help="segment-store directory or a single .seg file"
    )

    trace = sub.add_parser(
        "trace",
        help="run a query under tracing and export the span tree as JSON, "
        "or browse a running service's flight recorder",
    )
    trace.add_argument("dataset", nargs="?", help="dataset directory")
    trace.add_argument(
        "queryfile", nargs="?", help="file containing one S-OLAP query"
    )
    trace.add_argument(
        "--strategy", choices=("auto", "cb", "ii", "cost"), default="auto"
    )
    trace.add_argument(
        "--out",
        help="write the JSON trace to this file (default: stdout)",
    )
    trace.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="run the query N times (>1 exercises the warm/cached paths); "
        "every run is a child of the exported trace",
    )
    trace.add_argument(
        "--workers",
        type=int,
        default=1,
        help="scan workers (>1 enables sharded CB scans)",
    )
    trace.add_argument(
        "--backend",
        choices=("serial", "thread", "process"),
        default="thread",
        help="execution backend for sharded scans; worker-side spans are "
        "grafted into the exported trace",
    )
    trace.add_argument(
        "--shards",
        type=int,
        default=0,
        help="logical shards for scatter-gather execution (0 disables)",
    )
    trace.add_argument(
        "--recent",
        action="store_true",
        help="list recent traces from a running service's flight "
        "recorder instead of executing a query",
    )
    trace.add_argument(
        "--id",
        dest="trace_id",
        default=None,
        metavar="TRACE_ID",
        help="fetch one recorded trace by id from a running service",
    )
    trace.add_argument(
        "--server",
        default="http://127.0.0.1:9464",
        help="base URL of the service's metrics exporter "
        "(for --recent / --id)",
    )
    trace.add_argument(
        "--limit",
        type=int,
        default=20,
        help="entries to list with --recent",
    )
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "synthetic":
        db = generate_event_database(
            SyntheticConfig(
                I=args.symbols,
                L=args.length,
                theta=args.theta,
                D=args.sequences,
                seed=args.seed,
            )
        )
    elif args.kind == "transit":
        db = generate_transit(
            TransitConfig(n_cards=args.cards, n_days=args.days, seed=args.seed)
        )
    else:
        db = remove_crawler_sessions(
            generate_clickstream(
                ClickstreamConfig(n_sessions=args.sessions, seed=args.seed)
            )
        )
    directory = save_dataset(db, args.out)
    print(f"wrote {len(db)} events to {directory}")
    return 0


def _print_cache_stats(engine: SOLAPEngine) -> None:
    """The engine's cache counters (shared by ``info`` and ``query``)."""
    stats = engine.cache_stats()
    seq = stats["sequence_cache"]
    repo = stats["repository"]
    sem = stats["semantic_cache"]
    registry = stats["index_registry"]
    print("caches:")
    print(
        f"  sequence cache: {seq['entries']}/{seq['capacity']} entries, "
        f"hits={seq['hits']}, misses={seq['misses']}, "
        f"hit-ratio={seq['hit_ratio']:.2f}"
    )
    print(
        f"  cuboid repository: {repo['entries']}/{repo['capacity']} cuboids, "
        f"{repo['bytes'] / 1e6:.3f} MB, hits={repo['hits']}, "
        f"misses={repo['misses']}, policy={repo['policy']}"
    )
    if sem["enabled"]:
        derived = ", ".join(
            f"{op}={n}" for op, n in sorted(sem["derivations"].items())
        )
        print(
            f"  semantic cache: hits={sem['hits_total']}, "
            f"derivations={sem['derivations_total']}"
            + (f" ({derived})" if derived else "")
            + f", rejects={sem['rejects_total']}"
        )
    print(
        f"  index registries: {registry['indices']} indices over "
        f"{registry['pipelines']} pipeline(s), "
        f"{registry['bytes'] / 1e6:.3f} MB"
    )


def _cmd_info(args: argparse.Namespace) -> int:
    db = _load_db(args.dataset)
    print(f"dataset: {args.dataset}")
    print(f"events:  {len(db)}")
    print("dimensions:")
    for dimension in db.schema.dimensions.values():
        levels = " -> ".join(dimension.hierarchy.levels)
        print(f"  {dimension.name}: {levels}")
    if db.schema.measures:
        print(f"measures: {', '.join(db.schema.measures)}")
    engine = SOLAPEngine(db)
    for path in args.queries:
        spec = parse_query(Path(path).read_text(), db.schema)
        engine.execute(spec)
    _print_cache_stats(engine)
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    db = _load_db(args.dataset)
    text = Path(args.queryfile).read_text()
    spec = parse_query(text, db.schema)
    engine = SOLAPEngine(db)
    if args.explain:
        from repro.core.explain import explain

        print(explain(engine, spec).render())
        return 0
    with QueryService(
        engine,
        ServiceConfig(
            max_workers=max(args.workers, 1),
            default_timeout_seconds=args.timeout,
            executor_backend=args.backend,
            shards=max(args.shards, 0),
        ),
    ) as service:
        cuboid, stats = service.execute(
            spec, args.strategy, analyze=args.analyze
        )
    if args.od_matrix:
        from repro.reports import od_matrix_from_cuboid

        group_keys = cuboid.group_keys() or ((),)
        for group_key in group_keys:
            if group_key:
                print(f"group {group_key}:")
            print(od_matrix_from_cuboid(cuboid, group_key).render())
            print()
    else:
        print(cuboid.tabulate(limit=args.limit))
        print()
    print(stats.summary())
    if args.analyze and stats.plan is not None:
        print()
        print(stats.plan.render())
    if args.save:
        save_cuboid(cuboid, args.save)
        print(f"cuboid written to {args.save}")
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    db = _load_db(args.dataset)
    budget = int(args.budget_mb * 1024 * 1024)
    if not args.queryfiles and not args.log:
        print("advise: provide workload query files and/or --log FILE")
        return 2
    workload = [
        parse_query(Path(path).read_text(), db.schema)
        for path in args.queryfiles
    ]
    if args.log:
        from repro.optimizer.advisor import advise_cuboid_materializations
        from repro.optimizer.workload import mine_workload, replay_specs

        mined = mine_workload(args.log)
        print(
            f"query log: {mined.queries} queries over "
            f"{len(mined.by_spec)} distinct spec(s) "
            f"({mined.skipped_events} non-query events, "
            f"{mined.skipped_lines} unparseable lines skipped)"
        )
        cuboid_recs = advise_cuboid_materializations(
            mined, byte_budget=budget, schema=db.schema
        )
        if cuboid_recs:
            print(f"{len(cuboid_recs)} advised cuboid materialization(s):")
            for rec in cuboid_recs:
                print(f"  {rec}")
        else:
            print("no cuboid materializations advised within the budget")
        # Replayable specs join the index workload below so the index
        # advisor sees logged traffic too.
        workload.extend(spec for __, spec in replay_specs(args.log, db.schema))
    if not workload:
        return 0
    engine = SOLAPEngine(db)
    recommendations = advise_for_workload(
        engine, workload, byte_budget=budget
    )
    if not recommendations:
        print("no indices recommended within the budget")
        return 0
    print(f"{len(recommendations)} recommended index(es):")
    for rec in recommendations:
        print(f"  {rec}")
    return 0


def _cmd_service_stats(args: argparse.Namespace) -> int:
    db = _load_db(args.dataset)
    specs = [
        parse_query(Path(path).read_text(), db.schema)
        for path in args.queryfiles
    ]
    config = ServiceConfig(
        max_workers=max(args.workers, 1),
        default_timeout_seconds=args.timeout,
        executor_backend=args.backend,
        shards=max(args.shards, 0),
    )
    with QueryService(db, config) as service:
        sessions = [service.open_session(spec, args.strategy) for spec in specs]
        for __ in range(max(args.repeat, 1)):
            for session_id in sessions:
                service.session_run(session_id)
        if args.format == "json":
            import json

            print(json.dumps(service.snapshot(), indent=2, default=repr))
        elif args.format == "prom":
            print(service.registry.render_prometheus(), end="")
        else:
            print(service.render_report())
    return 0


def _cmd_serve_metrics(args: argparse.Namespace) -> int:
    import time

    db = _load_db(args.dataset)
    specs = [
        parse_query(Path(path).read_text(), db.schema)
        for path in args.queryfiles
    ]
    if args.log_json:
        from repro.obs.logging import configure_logging

        configure_logging(stream=sys.stderr)
    config = ServiceConfig(
        expose_metrics_port=args.port,
        metrics_host=args.host,
        slow_query_seconds=args.slow_query,
    )
    with QueryService(db, config) as service:
        server = service.metrics_server
        assert server is not None  # expose_metrics_port was set above
        print(
            f"serving telemetry on {server.url} "
            "(/metrics /healthz /varz)"
        )
        for __ in range(max(args.repeat, 1)):
            for spec in specs:
                service.execute(spec, args.strategy)
        if specs:
            print(
                f"workload done: {service.metrics['queries_ok']} ok, "
                f"{service.metrics['queries_failed']} failed"
            )
        try:
            if args.duration is not None:
                time.sleep(args.duration)
            else:
                print("serving until interrupted (Ctrl-C to exit)")
                while True:
                    time.sleep(3600)
        except KeyboardInterrupt:
            pass
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    db = _load_db(args.dataset)
    if args.log_json:
        from repro.obs.logging import configure_logging

        configure_logging(stream=sys.stderr)
    config = ServiceConfig(
        default_timeout_seconds=args.timeout,
        slow_query_seconds=args.slow_query,
        max_concurrent=max(args.max_concurrent, 1),
    )
    with QueryService(db, config) as service:
        from repro.serve import SolapServer

        server = SolapServer(
            service,
            host=args.host,
            port=args.port,
            job_history_limit=max(args.job_history, 1),
        ).start()
        # The URL line is machine-readable on purpose: with --port 0 it
        # is how scripts (and the CI smoke job) discover the real port.
        print(
            f"serving S-OLAP queries on {server.url} "
            "(/v1/sessions /v1/queries /v1/stream /metrics)",
            flush=True,
        )
        try:
            if args.duration is not None:
                time.sleep(args.duration)
            else:
                print("serving until interrupted (Ctrl-C to exit)", flush=True)
                while True:
                    time.sleep(3600)
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
    return 0


def _parse_attr_level(text: str, schema) -> tuple:
    """``attr`` or ``attr:level`` → an (attribute, level) pair."""
    attr, sep, level = text.partition(":")
    if not sep:
        level = schema.hierarchy(attr).base_level
    return (attr, level)


def _parse_order_key(text: str) -> tuple:
    """``attr``, ``attr:asc`` or ``attr:desc`` → an (attribute, asc) pair."""
    attr, sep, direction = text.partition(":")
    if not sep or direction == "asc":
        return (attr, True)
    if direction == "desc":
        return (attr, False)
    raise StorageError(
        f"bad --sequence-by {text!r}: direction must be 'asc' or 'desc'"
    )


def _cmd_segment(args: argparse.Namespace) -> int:
    if args.segment_command == "write":
        db = _load_db(args.dataset)
        if bool(args.cluster_by) != bool(args.sequence_by):
            raise StorageError(
                "--cluster-by and --sequence-by must be given together "
                "(both define the frozen pipeline layout)"
            )
        cluster_by = tuple(
            _parse_attr_level(text, db.schema) for text in args.cluster_by
        )
        sequence_by = tuple(_parse_order_key(text) for text in args.sequence_by)
        group_by = tuple(
            _parse_attr_level(text, db.schema) for text in args.group_by
        )
        manager = StorageManager.write(
            db, args.out,
            cluster_by=cluster_by,
            sequence_by=sequence_by,
            group_by=group_by,
        )
        layout = " + pipeline layout" if cluster_by else ""
        print(
            f"wrote {manager.n_events} events into "
            f"{manager.segments_open} segment(s) at {args.out}{layout}"
        )
        return 0
    if args.segment_command == "info":
        manager = StorageManager.open(args.store)
        from repro.storage import FORMAT_VERSION

        print(f"segment store: {args.store}")
        print(f"format version: {FORMAT_VERSION}")
        print(
            f"events: {manager.n_events} across "
            f"{manager.segments_open} segment(s), "
            f"{manager.bytes_mapped} bytes mapped"
        )
        for name, reader in zip(manager.segment_names, manager._segments):
            layout = reader.layout()
            extra = (
                f", layout: {layout.n_sequences} sequences"
                if layout is not None
                else ""
            )
            print(
                f"  {name}: {reader.n_events} events, "
                f"{reader.bytes_mapped} bytes, "
                f"{len(reader.sections)} sections{extra}"
            )
        print("dictionaries:")
        for attr in manager.schema.dimensions:
            print(f"  {attr}: {len(manager.dictionary_values(attr))} values")
        return 0
    # verify: a store directory, or one bare segment file
    target = Path(args.store)
    if target.is_file():
        from repro.storage import SegmentReader

        with SegmentReader(target) as reader:
            reader.verify()
        print(f"segment ok: {target} ({reader.n_events} events)")
        return 0
    manager = StorageManager.open(target)
    manager.verify()
    print(
        f"store ok: {manager.n_events} events, "
        f"{manager.segments_open} segment(s), checksums verified"
    )
    return 0


def _fetch_json(url: str):
    """GET *url* and parse the JSON body (also on HTTP error responses)."""
    import json
    from urllib.error import HTTPError, URLError
    from urllib.request import urlopen

    try:
        with urlopen(url, timeout=10.0) as response:
            return json.loads(response.read().decode("utf-8")), 200
    except HTTPError as error:
        try:
            return json.loads(error.read().decode("utf-8")), error.code
        except ValueError:
            return {"error": str(error)}, error.code
    except (URLError, OSError) as error:
        raise ServiceError(
            f"cannot reach the service at {url}: {error}"
        ) from error


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs.spans import Tracer, trace_to_dict

    if args.recent or args.trace_id:
        base = args.server.rstrip("/")
        if args.trace_id:
            doc, status = _fetch_json(f"{base}/debug/traces/{args.trace_id}")
            if status != 200:
                print(f"error: {doc.get('error', status)}", file=sys.stderr)
                return 2
            print(json.dumps(doc, indent=2))
            return 0
        doc, status = _fetch_json(
            f"{base}/debug/traces?limit={max(args.limit, 1)}"
        )
        if status != 200:
            print(f"error: {doc.get('error', status)}", file=sys.stderr)
            return 2
        traces = doc.get("traces", [])
        if not traces:
            print("no recorded traces")
            return 0
        for entry in traces:
            sampled = " (sampled)" if entry.get("sampled") else ""
            print(
                f"{entry.get('id', '?')}  {entry.get('trace_id', '?'):>12}  "
                f"{entry.get('template', '?'):<24} "
                f"{entry.get('strategy', '?'):<4} "
                f"{entry.get('wall_ms', 0.0):>9.3f} ms  "
                f"{entry.get('backend', 'serial')}"
                f"/{entry.get('shard_fanout', 0)} shard(s){sampled}"
            )
        return 0

    if not args.dataset or not args.queryfile:
        print(
            "error: dataset and queryfile are required unless "
            "--recent or --id is given",
            file=sys.stderr,
        )
        return 2
    db = _load_db(args.dataset)
    spec = parse_query(Path(args.queryfile).read_text(), db.schema)
    stats = None
    config = ServiceConfig(
        max_workers=max(args.workers, 1),
        executor_backend=args.backend,
        shards=max(args.shards, 0),
        parallel_scan_threshold=2,
    )
    with QueryService(db, config) as service:
        with Tracer("request") as tracer:
            for __ in range(max(args.repeat, 1)):
                __cuboid, stats = service.execute(
                    spec, args.strategy, analyze=True
                )
    doc = trace_to_dict(tracer.root, stats)
    payload = json.dumps(doc, indent=2)
    if args.out:
        Path(args.out).write_text(payload + "\n")
        print(f"trace written to {args.out}")
    else:
        print(payload)
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "info": _cmd_info,
    "query": _cmd_query,
    "advise": _cmd_advise,
    "service-stats": _cmd_service_stats,
    "serve": _cmd_serve,
    "serve-metrics": _cmd_serve_metrics,
    "segment": _cmd_segment,
    "trace": _cmd_trace,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except SOLAPError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
