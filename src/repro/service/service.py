"""The concurrent S-OLAP query service (the layer above Figure 6's engine).

A :class:`QueryService` owns one :class:`~repro.core.engine.SOLAPEngine`
and makes it safe and useful under concurrent load:

* **admission control** — at most ``max_concurrent`` queries execute at
  once; up to ``queue_depth`` more may wait; anything beyond is rejected
  immediately with a typed
  :class:`~repro.errors.ServiceOverloadedError` so load sheds at the door
  instead of queueing unboundedly;
* **deadlines** — every request can carry a time budget, enforced
  cooperatively inside the CB/II hot loops (see
  :mod:`repro.service.deadline`), surfacing as
  :class:`~repro.errors.QueryTimeoutError`;
* **parallel scans** — counter-based full scans are sharded across a
  worker pool (:mod:`repro.service.parallel`), bit-identical to the
  serial path;
* **sessions** — iterative explorations keep server-side state
  (:mod:`repro.service.sessions`) so APPEND / P-ROLL-UP / DE-TAIL steps
  reuse the engine's caches; LRU session eviction under a byte budget
  also releases orphaned pipeline state (sequence-cache entries, index
  registries);
* **metrics** — counters, latency histograms and cache hit ratios
  (:mod:`repro.service.metrics`), rendered by ``solap service-stats``.

Engine execution is serialised by one lock: the engine's caches are plain
dicts and CPython gains nothing from concurrent pure-Python cuboid
builds.  Concurrency buys admission fairness, deadline enforcement and
shared caching across sessions; the scan pool parallelises *within* a
query where it can.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Iterator, Optional, Tuple

from repro.core import operations as ops
from repro.core.cuboid import SCuboid
from repro.core.engine import SOLAPEngine
from repro.core.spec import CuboidSpec
from repro.core.stats import QueryStats
from repro.errors import (
    QueryCancelledError,
    QueryTimeoutError,
    ServiceError,
    ServiceOverloadedError,
    SOLAPError,
)
from repro.events.database import EventDatabase
from repro.extensions.online_agg import OnlineEstimate, online_cuboid
from repro.obs.httpd import MetricsServer
from repro.obs.logging import QueryLogger
from repro.obs.metrics import MetricsRegistry, register_engine_metrics
from repro.obs.recorder import FlightRecorder
from repro.obs.spans import span
from repro.service.config import ServiceConfig
from repro.service.deadline import CancelScope, CancelToken, Deadline
from repro.service.metrics import ServiceMetrics
from repro.service.parallel import ParallelCBScanner, create_backend
from repro.service.sessions import SessionEntry, SessionManager

#: sentinel distinguishing "no timeout argument" from "explicitly None"
_UNSET = object()

#: session operations: name -> (spec transform, takes schema argument)
SESSION_OPERATIONS = {
    "append": (ops.append, False),
    "prepend": (ops.prepend, False),
    "de_tail": (ops.de_tail, False),
    "de_head": (ops.de_head, False),
    "p_roll_up": (ops.p_roll_up, True),
    "p_drill_down": (ops.p_drill_down, True),
    "slice_pattern": (ops.slice_pattern, False),
    "unslice_pattern": (ops.unslice_pattern, False),
    "roll_up": (ops.roll_up_global, True),
    "drill_down": (ops.drill_down_global, True),
    "slice_global": (ops.slice_global, False),
    "dice_global": (ops.dice_global, False),
    "unslice_global": (ops.unslice_global, False),
}


class QueryService:
    """Thread-safe, observable façade over one S-OLAP engine."""

    def __init__(
        self,
        db_or_engine,
        config: Optional[ServiceConfig] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
        expose_metrics_port: Optional[int] = None,
        query_logger: Optional[QueryLogger] = None,
    ):
        self.config = config or ServiceConfig()
        if isinstance(db_or_engine, SOLAPEngine):
            self.engine = db_or_engine
        elif isinstance(db_or_engine, EventDatabase):
            self.engine = SOLAPEngine(db_or_engine)
        else:
            raise ServiceError(
                "QueryService needs an EventDatabase or an SOLAPEngine, "
                f"got {type(db_or_engine).__name__}"
            )
        #: the shared metrics registry behind service counters, engine
        #: cache gauges, /metrics and ``service-stats --format prom``
        self.registry = registry if registry is not None else MetricsRegistry()
        self.metrics = ServiceMetrics(self.registry)
        register_engine_metrics(self.registry, self.engine)
        self.log = query_logger or QueryLogger(
            slow_query_seconds=self.config.slow_query_seconds
        )
        self._query_ids = itertools.count(1)
        #: the scan execution backend (None when scans stay serial:
        #: backend "serial", or fewer than two shards configured)
        shards = self.config.effective_scan_shards
        self.backend = (
            create_backend(self.config, self.engine.db) if shards > 1 else None
        )
        if self.backend is not None:
            # Pay worker start-up (process fork/spawn) now, not inside
            # the first admitted query's deadline; record each worker's
            # readiness time so attach cost is separable from scan cost.
            for seconds in self.backend.warm_up():
                self.metrics.observe_worker_init(seconds)
            self.engine.cb_scanner = ParallelCBScanner(
                self.backend, shards, self.config.parallel_scan_threshold
            )
        if self.config.shards > 0:
            # Scatter-gather execution: consistent-hash the pipeline onto
            # N logical shards and merge partial S-cuboids (repro.shard).
            # Shares the scan backend's pool when one exists; runs shard
            # tasks inline otherwise.
            from repro.shard import ScatterGatherCoordinator

            self.engine.scatter_gather = ScatterGatherCoordinator(
                self.config.shards,
                backend=self.backend,
                registry=self.registry,
            )
        storage = getattr(self.engine.db, "storage", None)
        if storage is not None:
            # Segment-backed database: expose its attach/mapping telemetry
            # alongside the service metrics.
            from repro.storage import register_storage_metrics

            register_storage_metrics(self.registry, storage)
        self._engine_lock = threading.RLock()
        self._admission_lock = threading.Lock()
        self._inflight = 0
        self._slots = threading.Semaphore(self.config.max_concurrent)
        self.sessions = SessionManager(
            capacity=self.config.session_capacity,
            byte_budget=self.config.session_byte_budget,
            history_limit=self.config.session_history_limit,
            on_evict=self._session_evicted,
            on_pipeline_orphaned=self._pipeline_orphaned,
        )
        self._closed = False
        #: flight recorder — ring of recent completed query traces,
        #: served over /debug/traces and `solap trace` (None = disabled)
        self.recorder: Optional[FlightRecorder] = None
        if self.config.flight_recorder_capacity > 0:
            self.recorder = FlightRecorder(
                capacity=self.config.flight_recorder_capacity,
                sample_per_second=self.config.flight_recorder_sample_per_second,
                registry=self.registry,
            )
        self.registry.gauge(
            "solap_service_sessions_active", "Live sessions"
        ).set_function(lambda: len(self.sessions))
        self.registry.gauge(
            "solap_service_sessions_bytes",
            "Estimated bytes of session-cached cuboids",
        ).set_function(lambda: self.sessions.bytes_used)
        self.registry.gauge(
            "solap_service_inflight_requests",
            "Requests currently running or queued for admission",
        ).set_function(lambda: self._inflight)
        #: /metrics exporter, when configured (constructor kwarg wins)
        self.metrics_server: Optional[MetricsServer] = None
        port = (
            expose_metrics_port
            if expose_metrics_port is not None
            else self.config.expose_metrics_port
        )
        if port is not None:
            self.metrics_server = MetricsServer(
                self.registry,
                host=self.config.metrics_host,
                port=port,
                health_callback=lambda: not self._closed,
                varz_callback=self.snapshot,
                recorder=self.recorder,
            ).start()

    @property
    def inflight(self) -> int:
        """Requests currently running or queued for admission."""
        with self._admission_lock:
            return self._inflight

    # ------------------------------------------------------------------
    # One-shot queries
    # ------------------------------------------------------------------
    def execute(
        self,
        spec: CuboidSpec,
        strategy: str = "auto",
        timeout: object = _UNSET,
        analyze: bool = False,
        session_id: Optional[str] = None,
        cancel: Optional[CancelToken] = None,
    ) -> Tuple[SCuboid, QueryStats]:
        """Answer one query under admission control and a deadline.

        *timeout* is a budget in seconds; omit it to use the config
        default, pass None for unbounded.  *analyze* runs the query
        under EXPLAIN ANALYZE tracing (``stats.plan`` / ``stats.trace``)
        and folds the measured stage timings into the service metrics.
        Queries are also analyzed when a slow-query threshold is
        configured, so slow-query log records carry a measured plan.
        *session_id* only labels this query's log records.  *cancel* is
        an optional :class:`~repro.service.deadline.CancelToken`; once
        cancelled, the query unwinds with
        :class:`~repro.errors.QueryCancelledError` at its next
        cooperative checkpoint (the same sites that enforce deadlines).
        """
        if self._closed:
            raise ServiceError("service is shut down")
        self.metrics.inc("requests_total")
        query_id = f"q{next(self._query_ids):06d}"
        budget = (
            self.config.default_timeout_seconds
            if timeout is _UNSET
            else timeout
        )
        with self._admission_lock:
            if self._inflight >= self.config.admission_limit:
                self.metrics.inc("overload_rejected_total")
                self.log.query_rejected(
                    query_id, self._inflight, self.config.admission_limit
                )
                raise ServiceOverloadedError(
                    inflight=self._inflight,
                    limit=self.config.admission_limit,
                )
            self._inflight += 1
        try:
            deadline = Deadline.after(budget)  # type: ignore[arg-type]
            queued_at = time.monotonic()
            with span("service.admission") as admission_span:
                acquired = self._slots.acquire(
                    timeout=(
                        deadline.remaining() if deadline is not None else None
                    )
                )
                waited = time.monotonic() - queued_at
                admission_span.set("wait_seconds", round(waited, 6))
            self.metrics.observe_queue_wait(waited)
            if not acquired:
                # The whole budget went to waiting in the admission queue.
                self.metrics.inc("deadline_exceeded_total")
                self.log.query_timed_out(
                    query_id,
                    deadline.budget_seconds,  # type: ignore[union-attr]
                    deadline.elapsed(),  # type: ignore[union-attr]
                    session_id,
                )
                raise QueryTimeoutError(
                    "query deadline exceeded while queued",
                    budget_seconds=deadline.budget_seconds,  # type: ignore[union-attr]
                    elapsed_seconds=deadline.elapsed(),  # type: ignore[union-attr]
                )
            self.log.query_admitted(query_id, waited, session_id)
            guard = CancelScope.wrap(deadline, cancel)
            try:
                return self._run(
                    spec, strategy, guard, analyze, query_id, session_id
                )
            finally:
                self._slots.release()
        finally:
            with self._admission_lock:
                self._inflight -= 1

    def _run(
        self,
        spec: CuboidSpec,
        strategy: str,
        deadline: "Optional[Deadline | CancelScope]",
        analyze: bool = False,
        query_id: str = "",
        session_id: Optional[str] = None,
    ) -> Tuple[SCuboid, QueryStats]:
        start = time.perf_counter()
        self.log.query_started(query_id, strategy, session_id)
        # A configured slow-query threshold forces tracing so the slow
        # entry can embed the measured EXPLAIN ANALYZE plan.
        analyze = analyze or self.config.slow_query_seconds is not None
        # The flight recorder promotes a sampling-capped trickle of
        # untraced queries to tracing so /debug/traces stays populated.
        sampled = False
        if (
            not analyze
            and self.recorder is not None
            and self.recorder.should_sample()
        ):
            analyze = True
            sampled = True
        try:
            with self._engine_lock:
                # Observe a cancel (or an already-spent deadline) from
                # the time spent queued for the engine lock *before*
                # doing any work: the engine's cuboid-repository fast
                # path returns without reaching a cooperative checkpoint.
                if deadline is not None:
                    deadline.check()
                cuboid, stats = self.engine.execute(
                    spec, strategy, deadline=deadline, analyze=analyze
                )
                self._enforce_index_budget()
        except QueryCancelledError:
            self.metrics.inc("cancelled_total")
            self.log.query_cancelled(query_id, session_id)
            raise
        except QueryTimeoutError as error:
            self.metrics.inc("deadline_exceeded_total")
            self.log.query_timed_out(
                query_id,
                getattr(error, "budget_seconds", None),
                time.perf_counter() - start,
                session_id,
            )
            raise
        except SOLAPError as error:
            self.metrics.inc("queries_failed")
            self.log.query_failed(query_id, error, session_id)
            raise
        wall = time.perf_counter() - start
        self.metrics.observe_latency(wall)
        self.metrics.inc("queries_ok")
        self.metrics.count_strategy(stats.strategy)
        if "parallel_shards" in stats.extra:
            self.metrics.inc("parallel_scans_total")
        if stats.strategy == "CB":
            # Label which execution backend answered the scan ("serial"
            # covers declined/below-threshold scans and the serial config).
            self.metrics.count_scan_backend(
                stats.extra.get("scan_backend", "serial")
            )
        if stats.trace is not None:
            self._observe_stages(stats.trace)
            if self.recorder is not None:
                self.recorder.record(
                    stats=stats,
                    query_id=query_id,
                    spec=spec,
                    wall_seconds=wall,
                    sampled=sampled,
                )
        self.log.query_finished(
            query_id, stats, wall, session_id, spec=spec, cells=len(cuboid)
        )
        return cuboid, stats

    def _observe_stages(self, root) -> None:
        """Fold a trace's per-stage wall times into the service metrics."""
        from repro.obs.analyze import stage_timings

        for name, __, duration in stage_timings(root):
            self.metrics.observe_stage(name, duration)

    def _enforce_index_budget(self) -> None:
        budget = self.config.index_byte_budget
        if budget is None:
            return
        dropped, freed = self.engine.registry.evict_to_budget(budget)
        if dropped:
            self.metrics.inc("indices_evicted", dropped)
            self.metrics.inc("index_bytes_evicted", freed)

    # ------------------------------------------------------------------
    # Progressive (streamed) queries
    # ------------------------------------------------------------------
    def stream_query(
        self,
        spec: CuboidSpec,
        chunk_size: int = 256,
        seed: int = 0,
        timeout: object = _UNSET,
        cancel: Optional[CancelToken] = None,
        session_id: Optional[str] = None,
    ) -> Iterator[OnlineEstimate]:
        """Progressively answer one query, yielding an
        :class:`~repro.extensions.online_agg.OnlineEstimate` per chunk.

        Runs under the same admission control and deadline regime as
        :meth:`execute`; the final estimate (``is_final``) is the exact
        cuboid, bit-identical to the CB result.  The whole stream holds
        one execution slot; closing the generator early (e.g. the HTTP
        client disconnected) releases it and is accounted as a cancel.
        Streamed results bypass the cuboid repository: partial cuboids
        are never cached.
        """
        if self._closed:
            raise ServiceError("service is shut down")
        self.metrics.inc("requests_total")
        self.metrics.inc("streams_total")
        query_id = f"q{next(self._query_ids):06d}"
        budget = (
            self.config.default_timeout_seconds
            if timeout is _UNSET
            else timeout
        )
        with self._admission_lock:
            if self._inflight >= self.config.admission_limit:
                self.metrics.inc("overload_rejected_total")
                self.log.query_rejected(
                    query_id, self._inflight, self.config.admission_limit
                )
                raise ServiceOverloadedError(
                    inflight=self._inflight,
                    limit=self.config.admission_limit,
                )
            self._inflight += 1
        try:
            deadline = Deadline.after(budget)  # type: ignore[arg-type]
            queued_at = time.monotonic()
            acquired = self._slots.acquire(
                timeout=(
                    deadline.remaining() if deadline is not None else None
                )
            )
            waited = time.monotonic() - queued_at
            self.metrics.observe_queue_wait(waited)
            if not acquired:
                self.metrics.inc("deadline_exceeded_total")
                self.log.query_timed_out(
                    query_id,
                    deadline.budget_seconds,  # type: ignore[union-attr]
                    deadline.elapsed(),  # type: ignore[union-attr]
                    session_id,
                )
                raise QueryTimeoutError(
                    "query deadline exceeded while queued",
                    budget_seconds=deadline.budget_seconds,  # type: ignore[union-attr]
                    elapsed_seconds=deadline.elapsed(),  # type: ignore[union-attr]
                )
            self.log.query_admitted(query_id, waited, session_id)
            guard = CancelScope.wrap(deadline, cancel)
            try:
                yield from self._stream(
                    spec, chunk_size, seed, guard, query_id, session_id
                )
            finally:
                self._slots.release()
        finally:
            with self._admission_lock:
                self._inflight -= 1

    def _stream(
        self,
        spec: CuboidSpec,
        chunk_size: int,
        seed: int,
        guard: "Optional[Deadline | CancelScope]",
        query_id: str,
        session_id: Optional[str],
    ) -> Iterator[OnlineEstimate]:
        start = time.perf_counter()
        self.log.stream_started(query_id, chunk_size, session_id)
        stats = QueryStats(deadline=guard)
        estimates = 0
        last: Optional[OnlineEstimate] = None
        try:
            spec.validate(self.engine.db.schema)
            # Group construction reuses the engine's sequence cache, so
            # it runs under the engine lock like every cache-touching
            # path; the chunked scan itself owns only its execution slot.
            with self._engine_lock:
                if guard is not None:
                    guard.check()
                groups = self.engine.sequence_groups(spec, stats)
            for estimate in online_cuboid(
                self.engine.db,
                groups,
                spec,
                chunk_size=chunk_size,
                seed=seed,
                stats=stats,
                cancel=guard,
            ):
                estimates += 1
                last = estimate
                self.metrics.inc("stream_chunks_total")
                yield estimate
        except GeneratorExit:
            # The consumer abandoned the stream (client disconnect):
            # account it as a cancel and let the generator unwind.
            self.metrics.inc("cancelled_total")
            self.log.query_cancelled(query_id, session_id)
            raise
        except QueryCancelledError:
            self.metrics.inc("cancelled_total")
            self.log.query_cancelled(query_id, session_id)
            raise
        except QueryTimeoutError as error:
            self.metrics.inc("deadline_exceeded_total")
            self.log.query_timed_out(
                query_id,
                getattr(error, "budget_seconds", None),
                time.perf_counter() - start,
                session_id,
            )
            raise
        except SOLAPError as error:
            self.metrics.inc("queries_failed")
            self.log.query_failed(query_id, error, session_id)
            raise
        wall = time.perf_counter() - start
        self.metrics.observe_latency(wall)
        self.metrics.inc("queries_ok")
        self.log.stream_finished(
            query_id,
            estimates,
            last.processed if last is not None else 0,
            wall,
            session_id,
        )

    def session_stream(
        self,
        session_id: str,
        chunk_size: int = 256,
        seed: int = 0,
        timeout: object = _UNSET,
        cancel: Optional[CancelToken] = None,
    ) -> Iterator[OnlineEstimate]:
        """Stream the session's current spec; cache the final cuboid.

        The exact final cuboid is recorded into the session exactly as a
        blocking :meth:`session_run` would, so later session operations
        (APPEND, P-ROLL-UP, ...) continue from the streamed result.
        """
        entry = self.sessions.get(session_id)
        spec = entry.spec
        final: Optional[OnlineEstimate] = None
        for estimate in self.stream_query(
            spec,
            chunk_size=chunk_size,
            seed=seed,
            timeout=timeout,
            cancel=cancel,
            session_id=session_id,
        ):
            yield estimate
            final = estimate
        if final is not None and final.is_final:
            stats = QueryStats()
            stats.strategy = "online"
            stats.sequences_scanned = final.processed
            self.sessions.record(session_id, spec, final.partial, stats)

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def open_session(self, spec: CuboidSpec, strategy: str = "auto") -> str:
        """Register a new iterative exploration; returns its session id."""
        spec.validate(self.engine.db.schema)
        session_id = self.sessions.open(spec, strategy)
        self.metrics.inc("sessions_opened")
        return session_id

    def session_run(
        self, session_id: str, timeout: object = _UNSET
    ) -> Tuple[SCuboid, QueryStats]:
        """Execute the session's current spec and cache the result."""
        entry = self.sessions.get(session_id)
        spec, strategy = entry.spec, entry.strategy
        cuboid, stats = self.execute(
            spec, strategy, timeout, session_id=session_id
        )
        self.sessions.record(session_id, spec, cuboid, stats)
        return cuboid, stats

    def session_apply(
        self,
        session_id: str,
        operation: str,
        *args,
        timeout: object = _UNSET,
        **kwargs,
    ) -> Tuple[SCuboid, QueryStats]:
        """Apply one S-OLAP operation to the session's spec, then execute.

        *operation* is a name from :data:`SESSION_OPERATIONS` (the six
        pattern operations plus the classical ones).
        """
        try:
            transform, needs_schema = SESSION_OPERATIONS[operation]
        except KeyError:
            raise ServiceError(
                f"unknown session operation {operation!r}; expected one of "
                f"{sorted(SESSION_OPERATIONS)}"
            ) from None
        entry = self.sessions.get(session_id)
        if needs_schema:
            new_spec = transform(
                entry.spec, *args, self.engine.db.schema, **kwargs
            )
        else:
            new_spec = transform(entry.spec, *args, **kwargs)
        cuboid, stats = self.execute(
            new_spec, entry.strategy, timeout, session_id=session_id
        )
        self.sessions.record(session_id, new_spec, cuboid, stats)
        return cuboid, stats

    def session_result(self, session_id: str) -> Optional[SCuboid]:
        """The session's last cuboid (None before its first run)."""
        return self.sessions.get(session_id).cuboid

    def close_session(self, session_id: str) -> bool:
        closed = self.sessions.close(session_id)
        if closed:
            self.metrics.inc("sessions_closed")
        return closed

    def _session_evicted(self, entry: SessionEntry) -> None:
        self.metrics.inc("sessions_evicted")
        self.log.session_evicted(entry.session_id, entry.steps_executed)

    def _pipeline_orphaned(self, pipeline_key: object) -> None:
        """No live session references this pipeline: release its state."""
        with self._engine_lock:
            self.engine.drop_pipeline(pipeline_key)
        self.metrics.inc("session_pipelines_dropped")

    # ------------------------------------------------------------------
    # Observability / lifecycle
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Metrics counters + engine cache state + session occupancy."""
        with self._engine_lock:
            engine_stats = self.engine.cache_stats()
        snap = self.metrics.snapshot(engine_stats)
        snap["sessions"] = {
            "active": len(self.sessions),
            "capacity": self.sessions.capacity,
            "bytes": self.sessions.bytes_used,
            "byte_budget": self.sessions.byte_budget,
        }
        if self.recorder is not None:
            snap["flight_recorder"] = self.recorder.snapshot()
        return snap

    def render_report(self) -> str:
        """The ``solap service-stats`` text report."""
        with self._engine_lock:
            engine_stats = self.engine.cache_stats()
        report = self.metrics.render(engine_stats)
        sessions = self.sessions
        return (
            f"{report}\n"
            f"  sessions: {len(sessions)}/{sessions.capacity} active, "
            f"{sessions.bytes_used / 1e6:.3f} MB cached, "
            f"evicted={sessions.evicted}"
        )

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and release the scan backend (idempotent)."""
        self._closed = True
        if self.metrics_server is not None:
            self.metrics_server.stop()
        self.engine.cb_scanner = None
        self.engine.scatter_gather = None
        if self.backend is not None:
            self.backend.shutdown(wait=wait)

    def close(self) -> None:
        """Alias for :meth:`shutdown` (graceful, waits for workers)."""
        self.shutdown()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        backend = self.backend.name if self.backend is not None else "serial"
        return (
            f"QueryService({self.engine!r}, {len(self.sessions)} sessions, "
            f"workers={self.config.max_workers}, backend={backend})"
        )
