"""Service observability, backed by the shared metrics registry.

Historically this module kept private counter dicts and histograms; it is
now a thin façade over :class:`repro.obs.metrics.MetricsRegistry`, so the
same state that feeds ``solap service-stats`` is scrapeable from
``/metrics`` in Prometheus text format (see :mod:`repro.obs.httpd`) with
no double bookkeeping.  The histogram implementation lives in
:mod:`repro.obs.metrics` as :class:`~repro.obs.metrics.BucketHistogram`;
``LatencyHistogram`` remains this module's public name for it.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    BucketHistogram,
    MetricsRegistry,
)

#: histogram bucket upper bounds in seconds (log-ish spacing, +inf last)
LATENCY_BUCKETS: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS

#: the canonical fixed-bucket histogram (kept under its historical name)
LatencyHistogram = BucketHistogram


#: the counters every service exports (created eagerly so snapshots are
#: stable even before the first request)
COUNTER_NAMES: Tuple[str, ...] = (
    "requests_total",
    "queries_ok",
    "queries_failed",
    "deadline_exceeded_total",
    "overload_rejected_total",
    "cancelled_total",
    "streams_total",
    "stream_chunks_total",
    "parallel_scans_total",
    "sessions_opened",
    "sessions_closed",
    "sessions_evicted",
    "session_pipelines_dropped",
    "indices_evicted",
    "index_bytes_evicted",
    "strategy_cb",
    "strategy_ii",
    "strategy_cache",
    "strategy_derived",
)

_STRATEGY_PREFIX = "strategy_"


def _prometheus_name(counter_name: str) -> str:
    """Map a short service counter name onto a Prometheus metric name."""
    base = counter_name
    if not base.endswith("_total"):
        base += "_total"
    return f"solap_service_{base}"


class ServiceMetrics:
    """Thread-safe counter/histogram façade for one service instance.

    All state lives in instruments registered on ``self.registry`` (a
    private :class:`MetricsRegistry` unless one is passed in), so the
    service, the ``/metrics`` endpoint and ``solap service-stats`` all
    read the same numbers.  The short counter names of
    :data:`COUNTER_NAMES` remain the lookup API (``metrics["queries_ok"]``);
    ``strategy_*`` counters become one labelled family
    (``solap_service_queries_by_strategy_total{strategy="cb"}``).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._counters: Dict[str, object] = {}
        self._strategy_family = self.registry.counter(
            "solap_service_queries_by_strategy_total",
            "Queries answered through the service, by construction strategy",
            labels=("strategy",),
        )
        for name in COUNTER_NAMES:
            self._counter_child(name)
        self._latency = self.registry.histogram(
            "solap_service_query_latency_seconds",
            "End-to-end query wall time inside the service",
        ).labels()
        self._queue_wait = self.registry.histogram(
            "solap_service_admission_wait_seconds",
            "Time requests spent waiting for an execution slot",
        ).labels()
        self._worker_init = self.registry.histogram(
            "solap_service_worker_init_seconds",
            "Per-worker readiness time of the scan backend's warm-up "
            "(for spawn workers this includes the database ship cost: "
            "whole-DB pickle, or O(1) mmap attach for segment stores)",
        ).labels()
        self._scan_backends = self.registry.counter(
            "solap_service_scans_by_backend_total",
            "Counter-based scans answered through the service, by "
            "execution backend (serial covers declined/unsharded scans)",
            labels=("backend",),
        )
        self._stage_runs = self.registry.counter(
            "solap_service_stage_runs_total",
            "Traced pipeline-stage executions",
            labels=("stage",),
        )
        self._stage_seconds = self.registry.counter(
            "solap_service_stage_seconds_total",
            "Traced pipeline-stage wall time in seconds",
            labels=("stage",),
        )

    # ------------------------------------------------------------------
    def _counter_child(self, name: str):
        """The instrument behind one short counter name (created lazily)."""
        with self._lock:
            child = self._counters.get(name)
            if child is None:
                if name.startswith(_STRATEGY_PREFIX):
                    child = self._strategy_family.labels(
                        name[len(_STRATEGY_PREFIX):]
                    )
                else:
                    child = self.registry.counter(
                        _prometheus_name(name),
                        f"Service counter {name}",
                    ).labels()
                self._counters[name] = child
            return child

    @property
    def latency(self) -> BucketHistogram:
        return self._latency.hist

    @property
    def queue_wait(self) -> BucketHistogram:
        return self._queue_wait.hist

    @property
    def worker_init(self) -> BucketHistogram:
        return self._worker_init.hist

    def inc(self, name: str, amount: int = 1) -> None:
        self._counter_child(name).inc(amount)

    def observe_latency(self, seconds: float) -> None:
        self._latency.observe(seconds)

    def observe_queue_wait(self, seconds: float) -> None:
        self._queue_wait.observe(seconds)

    def observe_worker_init(self, seconds: float) -> None:
        """Record one worker's warm-up readiness time."""
        self._worker_init.observe(seconds)

    def observe_stage(self, name: str, seconds: float) -> None:
        """Accumulate one pipeline-stage duration (from a tracing span)."""
        self._stage_runs.labels(name).inc()
        self._stage_seconds.labels(name).inc(seconds)

    def count_scan_backend(self, backend: str) -> None:
        """Bump the per-backend scan counter for one CB-answered query."""
        self._scan_backends.labels(backend or "serial").inc()

    def scan_backend_counts(self) -> Dict[str, int]:
        """Scans by execution backend (empty until the first CB query)."""
        return {
            labels[0]: int(child.value)
            for labels, child in self._scan_backends.children()
        }

    def count_strategy(self, strategy: str) -> None:
        """Bump the per-strategy counter from a QueryStats.strategy label."""
        label = (strategy or "").lower()
        if label in ("cb", "ii", "cache", "derived"):
            self.inc(f"strategy_{label}")

    def __getitem__(self, name: str) -> int:
        with self._lock:
            child = self._counters.get(name)
        return int(child.value) if child is not None else 0

    def _stage_snapshot(self) -> Dict[str, dict]:
        seconds_by_stage = {
            labels[0]: child.value
            for labels, child in self._stage_seconds.children()
        }
        out: Dict[str, dict] = {}
        for labels, child in self._stage_runs.children():
            stage = labels[0]
            count = int(child.value)
            total = seconds_by_stage.get(stage, 0.0)
            out[stage] = {
                "count": count,
                "total_seconds": total,
                "mean_seconds": total / count if count else 0.0,
            }
        return out

    def snapshot(self, engine_stats: Optional[dict] = None) -> dict:
        """All counters plus latency summaries (and engine cache state)."""
        with self._lock:
            names = list(self._counters)
        out: dict = {
            "counters": {name: self[name] for name in sorted(names)},
            "latency": self.latency.snapshot(),
            "queue_wait": self.queue_wait.snapshot(),
            "worker_init": self.worker_init.snapshot(),
            "stages": self._stage_snapshot(),
            "scan_backends": self.scan_backend_counts(),
        }
        if engine_stats is not None:
            out["engine"] = engine_stats
        return out

    def render(self, engine_stats: Optional[dict] = None) -> str:
        """Human-readable report (the ``solap service-stats`` payload)."""
        snap = self.snapshot(engine_stats)
        lines: List[str] = ["service metrics", "==============="]
        counters = snap["counters"]
        for name in sorted(counters):
            lines.append(f"  {name}: {counters[name]}")
        lat = snap["latency"]
        lines.append(
            "  latency: "
            f"n={lat['count']}, mean={lat['mean_seconds'] * 1000:.2f}ms, "
            f"p50={lat['p50_seconds'] * 1000:.2f}ms, "
            f"p95={lat['p95_seconds'] * 1000:.2f}ms, "
            f"p99={lat['p99_seconds'] * 1000:.2f}ms, "
            f"max={lat['max_seconds'] * 1000:.2f}ms"
        )
        init = snap.get("worker_init") or {}
        if init.get("count"):
            lines.append(
                "  worker init: "
                f"n={init['count']}, mean={init['mean_seconds'] * 1000:.2f}ms, "
                f"max={init['max_seconds'] * 1000:.2f}ms"
            )
        backends = snap.get("scan_backends") or {}
        if backends:
            mix = ", ".join(
                f"{name}={count}" for name, count in sorted(backends.items())
            )
            lines.append(f"  scans by backend: {mix}")
        stages = snap.get("stages") or {}
        if stages:
            lines.append("  stage timings (traced queries):")
            for name, entry in stages.items():
                lines.append(
                    f"    {name}: n={entry['count']}, "
                    f"mean={entry['mean_seconds'] * 1000:.2f}ms, "
                    f"total={entry['total_seconds'] * 1000:.2f}ms"
                )
        engine = snap.get("engine")
        if engine:
            seq = engine["sequence_cache"]
            repo = engine["repository"]
            reg = engine["index_registry"]
            lines.append(
                "  sequence cache: "
                f"{seq['entries']}/{seq['capacity']} entries, "
                f"hits={seq['hits']}, misses={seq['misses']}, "
                f"evictions={seq.get('evictions', 0)}, "
                f"hit-ratio={seq['hit_ratio']:.2f}"
            )
            repo_total = repo["hits"] + repo["misses"]
            repo_ratio = repo["hits"] / repo_total if repo_total else 0.0
            lines.append(
                "  cuboid repository: "
                f"{repo['entries']}/{repo['capacity']} cuboids, "
                f"{repo['bytes'] / 1e6:.3f} MB, "
                f"hits={repo['hits']}, misses={repo['misses']}, "
                f"evictions={repo.get('evictions', 0)}, "
                f"hit-ratio={repo_ratio:.2f}"
            )
            sem = engine.get("semantic_cache")
            if sem:
                lines.append(
                    "  semantic cache: "
                    f"hits={sem.get('hits_total', 0)}, "
                    f"derivations={sem.get('derivations_total', 0)}, "
                    f"rejects={sem.get('rejects_total', 0)}"
                )
            lines.append(
                "  index registries: "
                f"{reg['indices']} indices over {reg['pipelines']} "
                f"pipeline(s), {reg['bytes'] / 1e6:.3f} MB, "
                f"evictions={reg.get('evictions', 0)}"
            )
        return "\n".join(lines)
