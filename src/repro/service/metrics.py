"""Lightweight service observability: counters and latency histograms.

No third-party client, no exporters — just thread-safe counters, a
fixed-bucket latency histogram with quantile estimation, and a text
renderer for ``solap service-stats``.  The service also folds the engine's
cache counters (sequence cache, cuboid repository, index registries) into
every snapshot so one call answers "where is the time going and what is
the memory buying".
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

#: histogram bucket upper bounds in seconds (log-ish spacing, +inf last)
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, float("inf"),
)


class LatencyHistogram:
    """Fixed-bucket histogram of durations in seconds."""

    def __init__(self, buckets: Tuple[float, ...] = LATENCY_BUCKETS):
        if not buckets or buckets[-1] != float("inf"):
            raise ValueError("last histogram bucket must be +inf")
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.total = 0.0
        self.count = 0
        self.max_observed = 0.0

    def observe(self, seconds: float) -> None:
        index = bisect_left(self.buckets, seconds)
        self.counts[min(index, len(self.buckets) - 1)] += 1
        self.total += seconds
        self.count += 1
        if seconds > self.max_observed:
            self.max_observed = seconds

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile: the upper bound of the bucket holding it.

        The +inf bucket reports the maximum ever observed instead, so p99
        stays finite and meaningful.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for bound, count in zip(self.buckets, self.counts):
            cumulative += count
            if cumulative >= target:
                return self.max_observed if bound == float("inf") else bound
        return self.max_observed

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_seconds": self.mean(),
            "p50_seconds": self.quantile(0.50),
            "p95_seconds": self.quantile(0.95),
            "p99_seconds": self.quantile(0.99),
            "max_seconds": self.max_observed,
        }


#: the counters every service exports (created eagerly so snapshots are
#: stable even before the first request)
COUNTER_NAMES: Tuple[str, ...] = (
    "requests_total",
    "queries_ok",
    "queries_failed",
    "deadline_exceeded_total",
    "overload_rejected_total",
    "parallel_scans_total",
    "sessions_opened",
    "sessions_closed",
    "sessions_evicted",
    "session_pipelines_dropped",
    "indices_evicted",
    "index_bytes_evicted",
    "strategy_cb",
    "strategy_ii",
    "strategy_cache",
)


class ServiceMetrics:
    """Thread-safe counter/histogram registry for one service instance."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}
        self.latency = LatencyHistogram()
        self.queue_wait = LatencyHistogram()
        #: span-derived per-stage wall time (stage name -> (count, seconds)),
        #: fed by the service from traced (analyze=True) executions
        self._stages: Dict[str, Tuple[int, float]] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def observe_latency(self, seconds: float) -> None:
        with self._lock:
            self.latency.observe(seconds)

    def observe_queue_wait(self, seconds: float) -> None:
        with self._lock:
            self.queue_wait.observe(seconds)

    def observe_stage(self, name: str, seconds: float) -> None:
        """Accumulate one pipeline-stage duration (from a tracing span)."""
        with self._lock:
            count, total = self._stages.get(name, (0, 0.0))
            self._stages[name] = (count + 1, total + seconds)

    def count_strategy(self, strategy: str) -> None:
        """Bump the per-strategy counter from a QueryStats.strategy label."""
        label = (strategy or "").lower()
        if label in ("cb", "ii", "cache"):
            self.inc(f"strategy_{label}")

    def __getitem__(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self, engine_stats: Optional[dict] = None) -> dict:
        """All counters plus latency summaries (and engine cache state)."""
        with self._lock:
            out: dict = {
                "counters": dict(self._counters),
                "latency": self.latency.snapshot(),
                "queue_wait": self.queue_wait.snapshot(),
                "stages": {
                    name: {
                        "count": count,
                        "total_seconds": total,
                        "mean_seconds": total / count if count else 0.0,
                    }
                    for name, (count, total) in sorted(self._stages.items())
                },
            }
        if engine_stats is not None:
            out["engine"] = engine_stats
        return out

    def render(self, engine_stats: Optional[dict] = None) -> str:
        """Human-readable report (the ``solap service-stats`` payload)."""
        snap = self.snapshot(engine_stats)
        lines: List[str] = ["service metrics", "==============="]
        counters = snap["counters"]
        for name in sorted(counters):
            lines.append(f"  {name}: {counters[name]}")
        lat = snap["latency"]
        lines.append(
            "  latency: "
            f"n={lat['count']}, mean={lat['mean_seconds'] * 1000:.2f}ms, "
            f"p50={lat['p50_seconds'] * 1000:.2f}ms, "
            f"p95={lat['p95_seconds'] * 1000:.2f}ms, "
            f"p99={lat['p99_seconds'] * 1000:.2f}ms, "
            f"max={lat['max_seconds'] * 1000:.2f}ms"
        )
        stages = snap.get("stages") or {}
        if stages:
            lines.append("  stage timings (traced queries):")
            for name, entry in stages.items():
                lines.append(
                    f"    {name}: n={entry['count']}, "
                    f"mean={entry['mean_seconds'] * 1000:.2f}ms, "
                    f"total={entry['total_seconds'] * 1000:.2f}ms"
                )
        engine = snap.get("engine")
        if engine:
            seq = engine["sequence_cache"]
            repo = engine["repository"]
            reg = engine["index_registry"]
            lines.append(
                "  sequence cache: "
                f"{seq['entries']}/{seq['capacity']} entries, "
                f"hits={seq['hits']}, misses={seq['misses']}, "
                f"hit-ratio={seq['hit_ratio']:.2f}"
            )
            repo_total = repo["hits"] + repo["misses"]
            repo_ratio = repo["hits"] / repo_total if repo_total else 0.0
            lines.append(
                "  cuboid repository: "
                f"{repo['entries']}/{repo['capacity']} cuboids, "
                f"{repo['bytes'] / 1e6:.3f} MB, "
                f"hits={repo['hits']}, misses={repo['misses']}, "
                f"hit-ratio={repo_ratio:.2f}"
            )
            lines.append(
                "  index registries: "
                f"{reg['indices']} indices over {reg['pipelines']} "
                f"pipeline(s), {reg['bytes'] / 1e6:.3f} MB"
            )
        return "\n".join(lines)
