"""Service-side session state for iterative S-OLAP exploration.

The paper's workloads are *sessions*: a client runs a query, inspects the
cuboid, then APPENDs / P-ROLLs-UP / slices and re-runs.  The engine's
caches (sequence cache, index registries, cuboid repository) already make
each refinement cheap — but only if the state survives between requests.
A :class:`SessionManager` keeps that per-client state alive server-side:
the current spec, the last cuboid, bounded history, and which
sequence-formation pipeline the session depends on.

Memory is bounded two ways: a session-count capacity and an approximate
byte budget over the cached cuboids.  Eviction is LRU; when the last
session over a pipeline goes away, the manager reports the orphaned
pipeline key so the service can release the engine's sequence-cache entry
and index registry for it (the "session eviction drives index-registry
eviction" contract).
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.cuboid import SCuboid
from repro.core.repository import estimate_cuboid_bytes
from repro.core.spec import CuboidSpec
from repro.core.stats import QueryStats
from repro.errors import SessionNotFoundError


class SessionEntry:
    """One client's iterative exploration state."""

    __slots__ = (
        "session_id",
        "spec",
        "strategy",
        "cuboid",
        "history",
        "steps_executed",
        "bytes_estimate",
    )

    def __init__(self, session_id: str, spec: CuboidSpec, strategy: str):
        self.session_id = session_id
        self.spec = spec
        self.strategy = strategy
        self.cuboid: Optional[SCuboid] = None
        #: (spec, stats) per executed step, oldest first, bounded
        self.history: List[Tuple[CuboidSpec, QueryStats]] = []
        self.steps_executed = 0
        self.bytes_estimate = 0

    @property
    def pipeline_key(self):
        return self.spec.pipeline_key()

    def record(
        self, spec: CuboidSpec, cuboid: SCuboid, stats: QueryStats, limit: int
    ) -> None:
        self.spec = spec
        self.cuboid = cuboid
        self.steps_executed += 1
        self.bytes_estimate = estimate_cuboid_bytes(cuboid)
        self.history.append((spec, stats))
        if len(self.history) > limit:
            del self.history[: len(self.history) - limit]

    def __repr__(self) -> str:
        return (
            f"SessionEntry({self.session_id!r}, {self.steps_executed} steps, "
            f"{self.bytes_estimate / 1e6:.3f} MB cached)"
        )


class SessionManager:
    """Bounded LRU map of live sessions with pipeline reference counting."""

    def __init__(
        self,
        capacity: int = 64,
        byte_budget: int = 64 * 1024 * 1024,
        history_limit: int = 32,
        on_evict: Optional[Callable[[SessionEntry], None]] = None,
        on_pipeline_orphaned: Optional[Callable[[object], None]] = None,
    ):
        if capacity < 1:
            raise ValueError("session capacity must be >= 1")
        self.capacity = capacity
        self.byte_budget = byte_budget
        self.history_limit = history_limit
        self.on_evict = on_evict
        self.on_pipeline_orphaned = on_pipeline_orphaned
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, SessionEntry]" = OrderedDict()
        self._pipeline_refs: Dict[object, int] = {}
        self._ids = itertools.count(1)
        self.opened = 0
        self.evicted = 0

    # ------------------------------------------------------------------
    def open(self, spec: CuboidSpec, strategy: str = "auto") -> str:
        with self._lock:
            session_id = f"s{next(self._ids):06d}"
            entry = SessionEntry(session_id, spec, strategy)
            self._entries[session_id] = entry
            self._retain_pipeline(entry.pipeline_key)
            self.opened += 1
            self._evict_over_budget()
            return session_id

    def get(self, session_id: str) -> SessionEntry:
        """Fetch a live session, refreshing its LRU position."""
        with self._lock:
            entry = self._entries.get(session_id)
            if entry is None:
                raise SessionNotFoundError(
                    f"no such session: {session_id!r} (expired or evicted?)"
                )
            self._entries.move_to_end(session_id)
            return entry

    def record(
        self,
        session_id: str,
        spec: CuboidSpec,
        cuboid: SCuboid,
        stats: QueryStats,
    ) -> None:
        """Store one executed step, migrating pipeline refs if spec moved."""
        with self._lock:
            entry = self.get(session_id)
            old_pipeline = entry.pipeline_key
            entry.record(spec, cuboid, stats, self.history_limit)
            new_pipeline = entry.pipeline_key
            if new_pipeline != old_pipeline:
                self._retain_pipeline(new_pipeline)
                self._release_pipeline(old_pipeline)
            self._evict_over_budget()

    def close(self, session_id: str) -> bool:
        with self._lock:
            entry = self._entries.pop(session_id, None)
            if entry is None:
                return False
            self._release_pipeline(entry.pipeline_key)
            return True

    # ------------------------------------------------------------------
    def _retain_pipeline(self, key: object) -> None:
        self._pipeline_refs[key] = self._pipeline_refs.get(key, 0) + 1

    def _release_pipeline(self, key: object) -> None:
        count = self._pipeline_refs.get(key, 0) - 1
        if count > 0:
            self._pipeline_refs[key] = count
        else:
            self._pipeline_refs.pop(key, None)
            if self.on_pipeline_orphaned is not None:
                self.on_pipeline_orphaned(key)

    def _evict_over_budget(self) -> None:
        while self._entries and (
            len(self._entries) > self.capacity
            or self.bytes_used > self.byte_budget
        ):
            if len(self._entries) == 1 and len(self._entries) <= self.capacity:
                break  # never evict the sole (and most recent) session
            __, entry = self._entries.popitem(last=False)
            self.evicted += 1
            self._release_pipeline(entry.pipeline_key)
            if self.on_evict is not None:
                self.on_evict(entry)

    # ------------------------------------------------------------------
    @property
    def bytes_used(self) -> int:
        # Iterating the entry map while another thread opens/closes a
        # session would raise "dict mutated during iteration" (and the
        # lock is an RLock, so calls from _evict_over_budget re-enter).
        with self._lock:
            return sum(
                entry.bytes_estimate for entry in self._entries.values()
            )

    def pipelines(self) -> Tuple[object, ...]:
        """Pipeline keys referenced by at least one live session."""
        with self._lock:
            return tuple(self._pipeline_refs)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, session_id: str) -> bool:
        with self._lock:
            return session_id in self._entries

    def __repr__(self) -> str:
        return (
            f"SessionManager({len(self._entries)}/{self.capacity} sessions, "
            f"{self.bytes_used / 1e6:.3f} MB, evicted={self.evicted})"
        )
