"""Sharded counter-based scans and their execution backends.

The CB strategy is embarrassingly parallel in its expensive half: pattern
matching (``TemplateMatcher.assignments``) is a pure function of one
sequence.  The scanner shards the engine's canonical scan order
(:func:`repro.core.counter_based.selected_sequences`) into contiguous
chunks, matches each chunk on an :class:`ExecutorBackend`, and folds the
per-sequence assignments into the accumulator table **serially, in the
canonical order**.

Folding serially is deliberate: accumulator updates are cheap relative to
matching (for COUNT-only queries they are a dict bump), and replaying the
exact serial fold order makes the parallel result *bit-identical* to the
serial path — including float SUM/AVG, where addition order matters.  A
merge of per-shard partial sums could differ in the last ulp; replaying
the fold cannot.

Three backends implement the shard execution (selected by
``ServiceConfig.executor_backend``):

* ``serial`` — chunks matched inline on the calling thread (baseline and
  debugging aid; the service installs no scanner at all for it);
* ``thread`` — chunks matched on a ``ThreadPoolExecutor``.  Handoff is
  cheap and shards share the query's :class:`Deadline` object directly,
  but the pure-Python matching loop stays GIL-serialised, so threads buy
  fairness, not CPU speedup;
* ``process`` — chunks matched on a ``ProcessPoolExecutor``.  The
  :class:`EventDatabase` is shipped **once per worker** through the pool
  initializer (a no-op copy under ``fork``, one pickle per worker under
  ``spawn``); each task then carries only the picklable spec and a shard
  of sequence ids, and deadline budgets travel as plain floats because
  worker processes cannot share the coordinator's Deadline.

The scanner declines (returns None) on empty or small inputs, where
handoff costs more than it saves; the engine then falls through to the
serial scan.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
    wait,
)
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence as Seq, Tuple

from repro.core.counter_based import (
    CellTable,
    finalize_cells,
    fold_assignments,
    selected_sequences,
)
from repro.core.cuboid import SCuboid
from repro.core.matcher import (
    TemplateMatcher,
    can_compile,
    get_default_occurrence_limit,
    make_matcher,
    occurrence_limit,
)
from repro.core.spec import CuboidSpec
from repro.core.stats import QueryStats
from repro.errors import QueryTimeoutError, ServiceError
from repro.events.database import EventDatabase
from repro.events.sequence import (
    Sequence,
    SequenceGroup,
    SequenceGroupSet,
    build_sequence_groups,
)
from repro.obs.spans import (
    RemoteSpanCollector,
    SpanContext,
    current_context,
    graft_payload,
    span,
)
from repro.service.config import EXECUTOR_BACKENDS, ServiceConfig
from repro.service.deadline import Deadline
from repro.shard.executor import (
    ShardPartial,
    filter_groups,
    report_attach_span,
    run_traced_shard_partial,
)

__all__ = [
    "EXECUTOR_BACKENDS",
    "ExecutorBackend",
    "ParallelCBScanner",
    "ProcessExecutorBackend",
    "SerialExecutorBackend",
    "ThreadExecutorBackend",
    "create_backend",
    "split_chunks",
]

#: how many sequences a worker matches between deadline checks
_WORKER_CHECK_EVERY = 64

#: one shard of scan work: (group, sequence) pairs in canonical order
Chunk = Seq[Tuple[SequenceGroup, Sequence]]

#: per-sequence matcher output: cell key -> assigned contents
Assignments = Dict[Tuple[object, ...], List[Tuple[int, ...]]]


def split_chunks(items: List, n_chunks: int) -> List[List]:
    """Split *items* into at most *n_chunks* contiguous, near-equal chunks.

    An empty input yields **no** chunks (not one empty chunk): scheduling
    a worker task for an empty shard is pure overhead.
    """
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    n = len(items)
    if n == 0:
        return []
    n_chunks = min(n_chunks, n)
    size, remainder = divmod(n, n_chunks)
    chunks: List[List] = []
    start = 0
    for index in range(n_chunks):
        end = start + size + (1 if index < remainder else 0)
        chunks.append(items[start:end])
        start = end
    return chunks


def _match_chunk(
    matcher: TemplateMatcher, chunk: Chunk, deadline
) -> List[Assignments]:
    """Match every sequence of one chunk, checking the deadline as we go."""
    out: List[Assignments] = []
    for position, (__, sequence) in enumerate(chunk):
        if deadline is not None and position % _WORKER_CHECK_EVERY == 0:
            deadline.check()
        out.append(matcher.assignments(sequence))
    return out


def _traced_match_chunk(
    matcher: TemplateMatcher,
    chunk: Chunk,
    deadline,
    trace_ctx: Optional["SpanContext"],
    backend: str,
    index: int,
    db: EventDatabase,
) -> Tuple[List[Assignments], Optional[dict]]:
    """Worker-thread entry: match one chunk, collecting spans when traced.

    With ``trace_ctx=None`` the collector never activates a tracer and
    the only extra work over :func:`_match_chunk` is one tuple — pool
    threads do not inherit the coordinator's ContextVar, so the explicit
    context is the only way their spans join the query trace.
    """
    collector = RemoteSpanCollector(trace_ctx, shard=index, backend=backend)
    with collector:
        report_attach_span(db)
        with span("worker.match", shard=index) as sp:
            out = _match_chunk(matcher, chunk, deadline)
            sp.set("sequences_scanned", len(chunk))
    return out, collector.payload()


def _collect_or_cancel(futures: List[Future]) -> List:
    """Results of *futures* in submission order, cancelling on first failure.

    Without this, one shard raising (e.g. :class:`QueryTimeoutError`)
    would leave its sibling futures running and holding executor slots
    while the error propagates.  On failure every outstanding future is
    cancelled (pending ones never run) and the already-running ones are
    drained before the error is re-raised, so the pool is quiescent by
    the time the caller sees the exception.
    """
    results = []
    try:
        for future in futures:
            results.append(future.result())
    except BaseException:
        for future in futures:
            future.cancel()
        wait(futures)
        raise
    return results


class ExecutorBackend:
    """One way of executing the shards of a parallel CB scan.

    Concrete backends say how chunks of (group, sequence) work are
    matched — inline, on threads, or on worker processes — and own
    whatever pool that requires.  The scanner folds their per-sequence
    assignment lists serially, so every backend is bit-identical to the
    serial scan by construction.
    """

    #: label used on metrics, trace spans and ``stats.extra``
    name: str = "?"
    #: worker parallelism available to one scan
    workers: int = 1

    def run_shards(
        self,
        db: EventDatabase,
        spec: CuboidSpec,
        chunks: List[Chunk],
        deadline,
        trace_ctx: Optional[SpanContext] = None,
    ) -> Tuple[List[List[Assignments]], List[Optional[dict]]]:
        """Per-chunk assignment lists, in chunk (canonical) order.

        Returns ``(assignment_lists, span_payloads)``; the payload list
        is parallel to the chunks and all-None when *trace_ctx* is None
        (the untraced fast path).
        """
        raise NotImplementedError

    def run_partial_shards(
        self,
        db: EventDatabase,
        groups: SequenceGroupSet,
        transport: CuboidSpec,
        tasks: List[Tuple[int, Tuple[int, ...]]],
        strategy: str,
        deadline,
        trace_ctx: Optional[SpanContext] = None,
    ) -> List[ShardPartial]:
        """Scatter-gather shard tasks: per-shard *partial cuboids*.

        Unlike :meth:`run_shards` (which ships raw per-sequence
        assignments back for a serial fold), each task here runs a full
        CB or II kernel over its shard's slice of the pipeline and
        returns transport-form cells for the coordinator to merge
        (:mod:`repro.shard`).  The base implementation executes every
        shard inline on the calling thread — the ``serial`` backend's
        behaviour.  A non-None *trace_ctx* makes each shard record its
        stage spans and resource profile onto the returned partials.
        """
        partials: List[ShardPartial] = []
        for shard, sids in tasks:
            partials.append(
                run_traced_shard_partial(
                    db, transport, strategy, shard, deadline, trace_ctx,
                    self.name,
                    lambda sids=sids: filter_groups(groups, frozenset(sids)),
                )
            )
        return partials

    def warm_up(self) -> List[float]:
        """Pay worker start-up cost now instead of inside the first query.

        Returns the seconds-until-ready of each worker (ascending: the
        k-th entry is when the k-th worker finished its warm-up ping).
        For the process backend under ``spawn`` this is where the
        database ships — pickled per worker, or mmap-attached by path
        for segment-backed databases — so the durations separate attach
        cost from scan cost.  The service records them in the
        ``solap_service_worker_init_seconds`` histogram.
        """
        return []

    def shutdown(self, wait: bool = True) -> None:
        """Release pool resources (idempotent)."""


def _timed_warm_up(executor: Executor, workers: int) -> List[float]:
    """Submit one ping per worker; return each completion's elapsed time."""
    start = time.monotonic()
    futures = [executor.submit(_worker_ping, index) for index in range(workers)]
    durations: List[float] = []
    for future in as_completed(futures):
        future.result()
        durations.append(time.monotonic() - start)
    return durations


class SerialExecutorBackend(ExecutorBackend):
    """Match every chunk inline on the calling thread (no parallelism)."""

    name = "serial"

    def run_shards(self, db, spec, chunks, deadline, trace_ctx=None):
        matcher = make_matcher(
            spec.template, db.schema, spec.restriction, spec.predicate, db=db
        )
        # Inline execution runs in the coordinator's own context: a
        # worker.match span per chunk records straight into the active
        # trace (no collector round-trip needed), so payloads stay None.
        results: List[List[Assignments]] = []
        for index, chunk in enumerate(chunks):
            with span("worker.match", shard=index, backend=self.name) as sp:
                results.append(_match_chunk(matcher, chunk, deadline))
                sp.set("sequences_scanned", len(chunk))
        return results, [None] * len(chunks)


class ThreadExecutorBackend(ExecutorBackend):
    """Match chunks on a thread pool.

    Shards share the coordinator's matcher and Deadline objects directly
    (threads share memory), so handoff is one closure per chunk.  The
    pure-Python matching loop holds the GIL, so this backend buys
    deadline fairness and overlap with any C-level work, not CPU scaling
    — use the process backend for that.
    """

    name = "thread"

    def __init__(
        self, max_workers: int, executor: Optional[Executor] = None
    ):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.workers = max_workers
        self._owns_pool = executor is None
        self.executor = executor or ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="solap-scan"
        )

    def run_shards(self, db, spec, chunks, deadline, trace_ctx=None):
        # A CompiledMatcher is safe to share across pool threads: it keeps
        # no per-sequence scratch state, and dictionary interning under its
        # lock (plus the GIL) keeps code assignment race-free.
        matcher = make_matcher(
            spec.template, db.schema, spec.restriction, spec.predicate, db=db
        )
        futures = [
            self.executor.submit(
                _traced_match_chunk,
                matcher, chunk, deadline, trace_ctx, self.name, index, db,
            )
            for index, chunk in enumerate(chunks)
        ]
        collected = _collect_or_cancel(futures)
        return (
            [assignments for assignments, __ in collected],
            [payload for __, payload in collected],
        )

    def run_partial_shards(
        self, db, groups, transport, tasks, strategy, deadline, trace_ctx=None
    ) -> List[ShardPartial]:
        # Pool threads share the coordinator's groups and Deadline
        # directly; each task slices the pipeline (inside the worker, so
        # worker.rebuild measures it) and runs a full kernel.
        futures = [
            self.executor.submit(
                run_traced_shard_partial,
                db, transport, strategy, shard, deadline, trace_ctx,
                self.name,
                lambda sids=sids: filter_groups(groups, frozenset(sids)),
            )
            for shard, sids in tasks
        ]
        return _collect_or_cancel(futures)

    def warm_up(self) -> List[float]:
        return _timed_warm_up(self.executor, self.workers)

    def shutdown(self, wait: bool = True) -> None:
        if self._owns_pool:
            self.executor.shutdown(wait=wait)


# ---------------------------------------------------------------------------
# Process backend: worker-side state and entry points
# ---------------------------------------------------------------------------

#: the EventDatabase this worker process serves (set by the initializer)
_worker_db: Optional[EventDatabase] = None
#: per-pipeline rebuilt SequenceGroupSets (drive both task kinds)
_worker_groups: Dict[Tuple, SequenceGroupSet] = {}
#: per-pipeline sid -> Sequence tables, derived from the group memo
_worker_sequences: Dict[Tuple, Dict[int, Sequence]] = {}
#: pipelines memoised per worker before the tables are reset
_WORKER_PIPELINE_MEMO_MAX = 8


def _process_worker_init(db: EventDatabase) -> None:
    """Pool initializer: receive the database once per worker process.

    Under the ``fork`` start method the database arrives by address-space
    copy (no pickling); under ``spawn``/``forkserver`` it is pickled once
    per worker — never once per task.
    """
    global _worker_db
    _worker_db = db
    _worker_groups.clear()
    _worker_sequences.clear()


def _worker_ping(token: int) -> int:
    """No-op task used by warm-up to force worker start-up."""
    return token


def _worker_groups_for(spec: CuboidSpec) -> SequenceGroupSet:
    """This worker's rebuilt SequenceGroupSet for *spec*'s pipeline.

    Sequence formation is deterministic (sorted cluster-key order, dense
    sid assignment), so rebuilding here reproduces exactly the
    coordinator's groups and sid numbering — that is what lets tasks
    ship sequence *ids* instead of sequences.
    """
    key = spec.pipeline_key()
    groups = _worker_groups.get(key)
    if groups is None:
        groups = build_sequence_groups(
            _worker_db, spec.where, spec.cluster_by,
            spec.sequence_by, spec.group_by,
        )
        if len(_worker_groups) >= _WORKER_PIPELINE_MEMO_MAX:
            _worker_groups.clear()
            _worker_sequences.clear()
        _worker_groups[key] = groups
    return groups


def _worker_sequences_for(spec: CuboidSpec) -> Dict[int, Sequence]:
    """This worker's sid -> Sequence table for *spec*'s pipeline."""
    key = spec.pipeline_key()
    table = _worker_sequences.get(key)
    if table is None:
        groups = _worker_groups_for(spec)
        table = {seq.sid: seq for seq in groups.all_sequences()}
        _worker_sequences[key] = table
    return table


@dataclass(frozen=True)
class _ShardTask:
    """The picklable payload of one process-backend shard."""

    spec: CuboidSpec
    sids: Tuple[int, ...]
    #: seconds of deadline budget left at submission (None = unbounded);
    #: a plain float because Deadline objects cannot cross processes
    budget_seconds: Optional[float]
    #: the coordinator's effective occurrence cap (process-global state
    #: does not propagate to spawn-started workers)
    occurrence_cap: Optional[int]
    #: the coordinator's open-span identity; None means "untraced" and
    #: keeps the worker on the NULL_SPAN fast path
    trace_ctx: Optional[SpanContext] = None
    #: chunk index, used only to label the worker's span origin
    chunk: int = 0


def _process_scan_shard(
    task: _ShardTask,
) -> Tuple[List[Assignments], Optional[dict]]:
    """Worker entry point: match one shard of sequence ids."""
    db = _worker_db
    if db is None:
        raise ServiceError("scan worker used before initialization")
    started = time.monotonic()
    expires = (
        started + task.budget_seconds
        if task.budget_seconds is not None
        else None
    )
    collector = RemoteSpanCollector(
        task.trace_ctx, shard=task.chunk, backend="process"
    )
    with collector:
        report_attach_span(db)
        with span("worker.rebuild") as rebuild_span:
            sequences = _worker_sequences_for(task.spec)
            rebuild_span.set("sequences_out", len(sequences))
        matcher = make_matcher(
            task.spec.template,
            db.schema,
            task.spec.restriction,
            task.spec.predicate,
            occurrence_cap=task.occurrence_cap,
            db=db,
        )
        out: List[Assignments] = []
        with span("worker.match", shard=task.chunk) as match_span:
            for position, sid in enumerate(task.sids):
                if (
                    expires is not None
                    and position % _WORKER_CHECK_EVERY == 0
                    and time.monotonic() >= expires
                ):
                    raise QueryTimeoutError(
                        "query deadline exceeded in scan worker",
                        budget_seconds=task.budget_seconds,
                        elapsed_seconds=time.monotonic() - started,
                    )
                out.append(matcher.assignments(sequences[sid]))
            match_span.set("sequences_scanned", len(task.sids))
    return out, collector.payload()


@dataclass(frozen=True)
class _PartialShardTask:
    """The picklable payload of one scatter-gather shard (full kernel)."""

    spec: CuboidSpec
    sids: Tuple[int, ...]
    strategy: str
    shard: int
    budget_seconds: Optional[float]
    occurrence_cap: Optional[int]
    trace_ctx: Optional[SpanContext] = None


def _process_partial_shard(task: _PartialShardTask) -> ShardPartial:
    """Worker entry point: run one shard's CB/II kernel over its slice."""
    db = _worker_db
    if db is None:
        raise ServiceError("scan worker used before initialization")
    deadline = Deadline.after(task.budget_seconds)
    with occurrence_limit(task.occurrence_cap):
        return run_traced_shard_partial(
            db, task.spec, task.strategy, task.shard, deadline,
            task.trace_ctx, "process",
            lambda: filter_groups(
                _worker_groups_for(task.spec), frozenset(task.sids)
            ),
        )


class ProcessExecutorBackend(ExecutorBackend):
    """Match chunks on a process pool (true multi-core scans).

    The backend is bound to one :class:`EventDatabase` at construction:
    the pool initializer delivers it to every worker exactly once.
    Tasks then carry only the spec and a shard of sequence ids, and each
    worker rebuilds the (deterministic) sid -> Sequence table per
    pipeline, memoised across tasks.
    """

    name = "process"

    def __init__(
        self,
        db: EventDatabase,
        max_workers: int,
        start_method: Optional[str] = None,
    ):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        import multiprocessing

        self.workers = max_workers
        self.db = db
        self.start_method = start_method
        self.executor = ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=multiprocessing.get_context(start_method),
            initializer=_process_worker_init,
            initargs=(db,),
        )

    def warm_up(self) -> List[float]:
        # One ping per worker forces every process to start (and, under
        # spawn, to unpickle — or mmap-attach — the database) before the
        # first real scan; the timed completions expose that cost.
        return _timed_warm_up(self.executor, self.workers)

    def run_shards(self, db, spec, chunks, deadline, trace_ctx=None):
        if db is not self.db:
            raise ServiceError(
                "process backend is bound to a different EventDatabase; "
                "construct one backend per database"
            )
        budget = deadline.remaining() if deadline is not None else None
        cap = get_default_occurrence_limit()
        futures = [
            self.executor.submit(
                _process_scan_shard,
                _ShardTask(
                    spec,
                    tuple(sequence.sid for __, sequence in chunk),
                    budget,
                    cap,
                    trace_ctx,
                    index,
                ),
            )
            for index, chunk in enumerate(chunks)
        ]
        collected = _collect_or_cancel(futures)
        return (
            [assignments for assignments, __ in collected],
            [payload for __, payload in collected],
        )

    def run_partial_shards(
        self, db, groups, transport, tasks, strategy, deadline, trace_ctx=None
    ) -> List[ShardPartial]:
        if db is not self.db:
            raise ServiceError(
                "process backend is bound to a different EventDatabase; "
                "construct one backend per database"
            )
        # Workers rebuild the (deterministic) pipeline themselves, so each
        # task ships only sequence ids; deadline budgets travel as floats
        # and the occurrence cap rides along because process-global state
        # does not propagate to spawn-started workers.
        budget = deadline.remaining() if deadline is not None else None
        cap = get_default_occurrence_limit()
        futures = [
            self.executor.submit(
                _process_partial_shard,
                _PartialShardTask(
                    transport, sids, strategy, shard, budget, cap, trace_ctx
                ),
            )
            for shard, sids in tasks
        ]
        return _collect_or_cancel(futures)

    def shutdown(self, wait: bool = True) -> None:
        self.executor.shutdown(wait=wait)


def create_backend(
    config: ServiceConfig, db: EventDatabase
) -> Optional[ExecutorBackend]:
    """The scan backend *config* asks for (None = keep scans serial)."""
    if config.executor_backend == "thread":
        return ThreadExecutorBackend(config.max_workers)
    if config.executor_backend == "process":
        return ProcessExecutorBackend(
            db, config.max_workers, start_method=config.process_start_method
        )
    return None


class ParallelCBScanner:
    """Engine hook (``engine.cb_scanner``) running sharded CB scans.

    Instances are installed by :class:`~repro.service.service.QueryService`
    and called from :meth:`SOLAPEngine.execute` with the already-formed
    sequence groups; they may decline small scans by returning None.
    """

    def __init__(
        self,
        backend,
        shards: int,
        threshold: int = 512,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if isinstance(backend, Executor):
            # Compatibility: a bare (thread) executor still works.
            backend = ThreadExecutorBackend(shards, executor=backend)
        self.backend: ExecutorBackend = backend
        self.shards = shards
        self.threshold = threshold
        self.scans_run = 0

    def __call__(
        self,
        db: EventDatabase,
        groups: SequenceGroupSet,
        spec: CuboidSpec,
        stats: QueryStats,
    ) -> Optional[SCuboid]:
        slices = spec.sliced_groups()
        work: List[Tuple[SequenceGroup, Sequence]] = list(
            selected_sequences(groups, slices)
        )
        if not work:
            # Empty selection: decline; the serial path returns the
            # empty cuboid without scheduling any worker tasks.
            return None
        if self.shards < 2 or len(work) < max(self.threshold, 2):
            return None

        stats.strategy = stats.strategy or "CB"
        deadline = stats.deadline
        chunks = split_chunks(work, self.shards)
        with span(
            "cb.parallel_scan",
            backend=self.backend.name,
            shards=len(chunks),
            workers=self.backend.workers,
        ) as scan_span:
            ctx = current_context()
            results, payloads = self.backend.run_shards(
                db, spec, chunks, deadline, trace_ctx=ctx
            )
            for payload in payloads:
                if payload is not None:
                    graft_payload(scan_span, payload)
            cells: CellTable = {}
            # run_shards returns chunk results in submission order, so
            # the fold below replays the canonical serial scan order.
            with span("cb.fold") as fold_span:
                for chunk, assignments_list in zip(chunks, results):
                    for (group, sequence), assignments in zip(
                        chunk, assignments_list
                    ):
                        stats.add_scan()
                        if assignments:
                            fold_assignments(
                                db, spec, cells, group, sequence, assignments
                            )
                fold_span.set("cells_out", len(cells))
            scan_span.set("sequences_scanned", len(work))
            scan_span.set("cells_out", len(cells))

        self.scans_run += 1
        stats.extra["parallel_shards"] = len(chunks)
        stats.extra["scan_backend"] = self.backend.name
        stats.extra["scan_workers"] = self.backend.workers
        # Record the kernel the shards ran.  Worker processes build their
        # matchers in their own interpreters, so probe compilability here
        # rather than reading their (invisible) dispatch counters.
        stats.extra["matcher"] = (
            "compiled" if can_compile(spec.template, db) else "legacy"
        )
        stats.checkpoint()
        return finalize_cells(spec, cells)
