"""Sharded counter-based scans for the query service.

The CB strategy is embarrassingly parallel in its expensive half: pattern
matching (``TemplateMatcher.assignments``) is a pure function of one
sequence.  The scanner shards the engine's canonical scan order
(:func:`repro.core.counter_based.selected_sequences`) into contiguous
chunks, matches each chunk on the service's worker pool, and folds the
per-sequence assignments into the accumulator table **serially, in the
canonical order**.

Folding serially is deliberate: accumulator updates are cheap relative to
matching (for COUNT-only queries they are a dict bump), and replaying the
exact serial fold order makes the parallel result *bit-identical* to the
serial path — including float SUM/AVG, where addition order matters.  A
merge of per-shard partial sums could differ in the last ulp; replaying
the fold cannot.

The scanner declines (returns None) on small inputs, where thread handoff
costs more than it saves; the engine then falls through to the serial scan.
"""

from __future__ import annotations

from concurrent.futures import Executor
from typing import Dict, List, Optional, Sequence as Seq, Tuple

from repro.core.counter_based import (
    CellTable,
    finalize_cells,
    fold_assignments,
    selected_sequences,
)
from repro.core.cuboid import SCuboid
from repro.core.matcher import TemplateMatcher
from repro.core.spec import CuboidSpec
from repro.core.stats import QueryStats
from repro.events.database import EventDatabase
from repro.events.sequence import Sequence, SequenceGroup, SequenceGroupSet

#: how many sequences a worker matches between deadline checks
_WORKER_CHECK_EVERY = 64


def split_chunks(items: List, n_chunks: int) -> List[List]:
    """Split *items* into at most *n_chunks* contiguous, near-equal chunks."""
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    n = len(items)
    n_chunks = min(n_chunks, n) or 1
    size, remainder = divmod(n, n_chunks)
    chunks: List[List] = []
    start = 0
    for index in range(n_chunks):
        end = start + size + (1 if index < remainder else 0)
        chunks.append(items[start:end])
        start = end
    return chunks


class ParallelCBScanner:
    """Engine hook (``engine.cb_scanner``) running sharded CB scans.

    Instances are installed by :class:`~repro.service.service.QueryService`
    and called from :meth:`SOLAPEngine.execute` with the already-formed
    sequence groups; they may decline small scans by returning None.
    """

    def __init__(
        self,
        executor: Executor,
        shards: int,
        threshold: int = 512,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.executor = executor
        self.shards = shards
        self.threshold = threshold
        self.scans_run = 0

    def __call__(
        self,
        db: EventDatabase,
        groups: SequenceGroupSet,
        spec: CuboidSpec,
        stats: QueryStats,
    ) -> Optional[SCuboid]:
        slices = spec.sliced_groups()
        work: List[Tuple[SequenceGroup, Sequence]] = list(
            selected_sequences(groups, slices)
        )
        if self.shards < 2 or len(work) < max(self.threshold, 2):
            return None

        stats.strategy = stats.strategy or "CB"
        matcher = TemplateMatcher(
            spec.template, db.schema, spec.restriction, spec.predicate
        )
        deadline = stats.deadline

        def scan_chunk(
            chunk: Seq[Tuple[SequenceGroup, Sequence]]
        ) -> List[Dict]:
            out = []
            for position, (__, sequence) in enumerate(chunk):
                if deadline is not None and position % _WORKER_CHECK_EVERY == 0:
                    deadline.check()  # type: ignore[attr-defined]
                out.append(matcher.assignments(sequence))
            return out

        chunks = split_chunks(work, self.shards)
        cells: CellTable = {}
        # executor.map yields chunk results in submission order, so the
        # fold below replays the canonical serial scan order exactly.
        for chunk, assignments_list in zip(
            chunks, self.executor.map(scan_chunk, chunks)
        ):
            for (group, sequence), assignments in zip(chunk, assignments_list):
                stats.add_scan()
                if assignments:
                    fold_assignments(db, spec, cells, group, sequence, assignments)

        self.scans_run += 1
        stats.extra["parallel_shards"] = len(chunks)
        stats.checkpoint()
        return finalize_cells(spec, cells)
