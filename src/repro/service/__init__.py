"""repro.service — the concurrent S-OLAP query service.

The serving layer above the single-threaded engine of Figure 6: admission
control, per-query deadlines with cooperative cancellation, sharded
counter-based scans, server-side sessions with LRU memory management, and
lightweight metrics.  See ``docs/service.md``.
"""

from repro.service.config import EXECUTOR_BACKENDS, ServiceConfig
from repro.service.deadline import Deadline
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.parallel import (
    ExecutorBackend,
    ParallelCBScanner,
    ProcessExecutorBackend,
    SerialExecutorBackend,
    ThreadExecutorBackend,
    create_backend,
    split_chunks,
)
from repro.service.service import SESSION_OPERATIONS, QueryService
from repro.service.sessions import SessionEntry, SessionManager

__all__ = [
    "Deadline",
    "EXECUTOR_BACKENDS",
    "ExecutorBackend",
    "LatencyHistogram",
    "ParallelCBScanner",
    "ProcessExecutorBackend",
    "QueryService",
    "SESSION_OPERATIONS",
    "SerialExecutorBackend",
    "ServiceConfig",
    "ServiceMetrics",
    "SessionEntry",
    "SessionManager",
    "ThreadExecutorBackend",
    "create_backend",
    "split_chunks",
]
