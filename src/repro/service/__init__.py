"""repro.service — the concurrent S-OLAP query service.

The serving layer above the single-threaded engine of Figure 6: admission
control, per-query deadlines with cooperative cancellation, sharded
counter-based scans, server-side sessions with LRU memory management, and
lightweight metrics.  See ``docs/service.md``.
"""

from repro.service.config import ServiceConfig
from repro.service.deadline import Deadline
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.parallel import ParallelCBScanner, split_chunks
from repro.service.service import SESSION_OPERATIONS, QueryService
from repro.service.sessions import SessionEntry, SessionManager

__all__ = [
    "Deadline",
    "LatencyHistogram",
    "ParallelCBScanner",
    "QueryService",
    "SESSION_OPERATIONS",
    "ServiceConfig",
    "ServiceMetrics",
    "SessionEntry",
    "SessionManager",
    "split_chunks",
]
