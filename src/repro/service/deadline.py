"""Per-query deadlines with cooperative cancellation.

A :class:`Deadline` is a cheap, immutable-after-construction token created
by the service layer when a request is admitted.  It is attached to the
query's :class:`~repro.core.stats.QueryStats` and checked opportunistically
from the strategies' hot loops (every sequence scan batch, every join-chain
step, every group boundary), so a runaway scan stops within a bounded
amount of work instead of holding an executor slot forever.

Cancellation is *cooperative*: nothing is interrupted pre-emptively.  The
loops call :meth:`Deadline.check`, which raises
:class:`~repro.errors.QueryTimeoutError` once the budget is spent; the
service catches the typed error, bumps its metrics and releases the slot.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.errors import QueryCancelledError, QueryTimeoutError


class Deadline:
    """A wall-clock budget for one query, measured on the monotonic clock."""

    __slots__ = ("budget_seconds", "started_at", "expires_at")

    def __init__(self, budget_seconds: float):
        if budget_seconds <= 0:
            raise ValueError("deadline budget must be > 0 seconds")
        self.budget_seconds = float(budget_seconds)
        self.started_at = time.monotonic()
        self.expires_at = self.started_at + self.budget_seconds

    @classmethod
    def after(cls, budget_seconds: Optional[float]) -> Optional["Deadline"]:
        """A deadline *budget_seconds* from now, or None for unbounded."""
        if budget_seconds is None:
            return None
        return cls(budget_seconds)

    def elapsed(self) -> float:
        return time.monotonic() - self.started_at

    def remaining(self) -> float:
        """Seconds left before expiry (negative once expired)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self) -> None:
        """Raise :class:`QueryTimeoutError` if the budget is spent."""
        if time.monotonic() >= self.expires_at:
            raise QueryTimeoutError(
                budget_seconds=self.budget_seconds,
                elapsed_seconds=self.elapsed(),
            )

    def __repr__(self) -> str:
        return (
            f"Deadline({self.budget_seconds:.3f}s budget, "
            f"{self.remaining():.3f}s remaining)"
        )


class CancelToken:
    """Client-driven cooperative cancellation for one query.

    The serving layer hands one token per asynchronous query to both the
    executing request (via :class:`CancelScope`) and the cancel endpoint.
    ``cancel()`` is thread-safe and idempotent; the running query observes
    it at its next cancellation point — the same ``check()`` call sites
    that enforce deadlines — and unwinds with
    :class:`~repro.errors.QueryCancelledError`.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent, callable from any thread)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def check(self) -> None:
        """Raise :class:`QueryCancelledError` once cancellation was requested."""
        if self._event.is_set():
            raise QueryCancelledError()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "live"
        return f"CancelToken({state})"


class CancelScope:
    """A deadline and a cancel token fused into one cooperative guard.

    Duck-type compatible with :class:`Deadline` everywhere the service and
    the strategies' hot loops look (``check``/``remaining``/``elapsed``/
    ``budget_seconds``), so existing cancellation points pick up client
    cancellation for free.  The token is checked first: an explicit cancel
    beats a deadline that expired in the same interval.
    """

    __slots__ = ("deadline", "token")

    def __init__(
        self, deadline: Optional[Deadline], token: CancelToken
    ) -> None:
        self.deadline = deadline
        self.token = token

    @classmethod
    def wrap(
        cls,
        deadline: Optional[Deadline],
        token: Optional[CancelToken],
    ) -> "Optional[Deadline | CancelScope]":
        """Fuse *deadline* and *token*; plain deadline when no token."""
        if token is None:
            return deadline
        return cls(deadline, token)

    @property
    def budget_seconds(self) -> Optional[float]:
        return (
            self.deadline.budget_seconds if self.deadline is not None else None
        )

    def elapsed(self) -> float:
        return self.deadline.elapsed() if self.deadline is not None else 0.0

    def remaining(self) -> Optional[float]:
        """Seconds left on the deadline (None when unbounded)."""
        return (
            self.deadline.remaining() if self.deadline is not None else None
        )

    def expired(self) -> bool:
        return self.deadline.expired() if self.deadline is not None else False

    def check(self) -> None:
        self.token.check()
        if self.deadline is not None:
            self.deadline.check()

    def __repr__(self) -> str:
        return f"CancelScope({self.deadline!r}, {self.token!r})"
