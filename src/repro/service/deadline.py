"""Per-query deadlines with cooperative cancellation.

A :class:`Deadline` is a cheap, immutable-after-construction token created
by the service layer when a request is admitted.  It is attached to the
query's :class:`~repro.core.stats.QueryStats` and checked opportunistically
from the strategies' hot loops (every sequence scan batch, every join-chain
step, every group boundary), so a runaway scan stops within a bounded
amount of work instead of holding an executor slot forever.

Cancellation is *cooperative*: nothing is interrupted pre-emptively.  The
loops call :meth:`Deadline.check`, which raises
:class:`~repro.errors.QueryTimeoutError` once the budget is spent; the
service catches the typed error, bumps its metrics and releases the slot.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.errors import QueryTimeoutError


class Deadline:
    """A wall-clock budget for one query, measured on the monotonic clock."""

    __slots__ = ("budget_seconds", "started_at", "expires_at")

    def __init__(self, budget_seconds: float):
        if budget_seconds <= 0:
            raise ValueError("deadline budget must be > 0 seconds")
        self.budget_seconds = float(budget_seconds)
        self.started_at = time.monotonic()
        self.expires_at = self.started_at + self.budget_seconds

    @classmethod
    def after(cls, budget_seconds: Optional[float]) -> Optional["Deadline"]:
        """A deadline *budget_seconds* from now, or None for unbounded."""
        if budget_seconds is None:
            return None
        return cls(budget_seconds)

    def elapsed(self) -> float:
        return time.monotonic() - self.started_at

    def remaining(self) -> float:
        """Seconds left before expiry (negative once expired)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self) -> None:
        """Raise :class:`QueryTimeoutError` if the budget is spent."""
        if time.monotonic() >= self.expires_at:
            raise QueryTimeoutError(
                budget_seconds=self.budget_seconds,
                elapsed_seconds=self.elapsed(),
            )

    def __repr__(self) -> str:
        return (
            f"Deadline({self.budget_seconds:.3f}s budget, "
            f"{self.remaining():.3f}s remaining)"
        )
