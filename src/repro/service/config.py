"""Tunables of the concurrent query service.

One frozen dataclass so a service's whole behaviour is reproducible from a
single value (tests and benchmarks construct these explicitly; the CLI maps
flags onto them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: the execution backends a sharded CB scan can run on (see
#: :mod:`repro.service.parallel`): ``serial`` disables sharding entirely,
#: ``thread`` shards onto a thread pool (cheap handoff, but the
#: pure-Python matching loop stays GIL-serialised), ``process`` shards
#: onto a process pool (true multi-core; the event database is shipped
#: once per worker).
EXECUTOR_BACKENDS = ("serial", "thread", "process")

#: multiprocessing start methods accepted for the process backend
PROCESS_START_METHODS = (None, "fork", "spawn", "forkserver")


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration for a :class:`~repro.service.service.QueryService`."""

    #: workers of the shared scan pool (parallel CB shards run here)
    max_workers: int = 4
    #: shards per parallel CB scan; 0 means "use max_workers"
    scan_shards: int = 0
    #: logical shards for scatter-gather execution (:mod:`repro.shard`):
    #: sequences are consistent-hashed onto this many shards and partial
    #: S-cuboids are merged under the aggregate algebra.  0 disables the
    #: scatter-gather path entirely (the default); 1 is valid and exercises
    #: the full plan/scatter/merge machinery over a single shard.
    shards: int = 0
    #: execution backend for sharded CB scans: one of
    #: :data:`EXECUTOR_BACKENDS` (``serial`` | ``thread`` | ``process``)
    executor_backend: str = "thread"
    #: multiprocessing start method for the process backend (None = the
    #: platform default: fork on Linux, spawn on macOS/Windows)
    process_start_method: Optional[str] = None
    #: minimum sequences in a pipeline before a scan is sharded at all —
    #: below this, thread handoff costs more than it saves
    parallel_scan_threshold: int = 512
    #: queries allowed to execute concurrently (holding an engine slot)
    max_concurrent: int = 4
    #: requests allowed to *wait* beyond the concurrent ones; anything more
    #: is rejected immediately with ServiceOverloadedError
    queue_depth: int = 16
    #: default per-query deadline in seconds (None = unbounded)
    default_timeout_seconds: Optional[float] = None
    #: maximum live sessions before LRU eviction
    session_capacity: int = 64
    #: approximate memory budget for session-cached cuboids; crossing it
    #: evicts LRU sessions (and unreferenced pipeline state with them)
    session_byte_budget: int = 64 * 1024 * 1024
    #: byte budget for materialised inverted indices across all pipelines
    #: (None = unbounded); enforced after every query via LRU eviction
    index_byte_budget: Optional[int] = None
    #: history entries kept per session (spec/stats pairs)
    session_history_limit: int = 32
    #: serve /metrics, /healthz and /varz on this port (None = no HTTP
    #: exporter; 0 = bind an ephemeral port, see service.metrics_server.port)
    expose_metrics_port: Optional[int] = None
    #: interface the metrics exporter binds to
    metrics_host: str = "127.0.0.1"
    #: wall-time threshold above which a query emits a ``slow_query`` log
    #: record with its EXPLAIN ANALYZE plan embedded (None = disabled).
    #: Setting this also runs every query under tracing so the plan is
    #: available when the threshold trips.
    slow_query_seconds: Optional[float] = None
    #: traces the flight recorder keeps in its ring buffer (0 disables
    #: the recorder — and with it /debug/traces and trace sampling)
    flight_recorder_capacity: int = 64
    #: rate at which untraced queries are promoted to tracing so the
    #: recorder stays populated under load (token bucket; 0 = only
    #: record queries the caller explicitly analyzed)
    flight_recorder_sample_per_second: float = 2.0

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.scan_shards < 0:
            raise ValueError("scan_shards must be >= 0")
        if self.shards < 0:
            raise ValueError("shards must be >= 0")
        if self.executor_backend not in EXECUTOR_BACKENDS:
            raise ValueError(
                f"executor_backend must be one of {EXECUTOR_BACKENDS}, "
                f"got {self.executor_backend!r}"
            )
        if self.process_start_method not in PROCESS_START_METHODS:
            raise ValueError(
                f"process_start_method must be one of "
                f"{PROCESS_START_METHODS}, got {self.process_start_method!r}"
            )
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if self.queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        if self.session_capacity < 1:
            raise ValueError("session_capacity must be >= 1")
        if self.session_byte_budget < 0:
            raise ValueError("session_byte_budget must be >= 0")
        if (
            self.default_timeout_seconds is not None
            and self.default_timeout_seconds <= 0
        ):
            raise ValueError("default_timeout_seconds must be > 0 or None")
        if self.index_byte_budget is not None and self.index_byte_budget < 0:
            raise ValueError("index_byte_budget must be >= 0 or None")
        if self.expose_metrics_port is not None and not (
            0 <= self.expose_metrics_port <= 65535
        ):
            raise ValueError("expose_metrics_port must be in [0, 65535] or None")
        if self.slow_query_seconds is not None and self.slow_query_seconds < 0:
            raise ValueError("slow_query_seconds must be >= 0 or None")
        if self.flight_recorder_capacity < 0:
            raise ValueError("flight_recorder_capacity must be >= 0")
        if self.flight_recorder_sample_per_second < 0:
            raise ValueError(
                "flight_recorder_sample_per_second must be >= 0"
            )

    @property
    def effective_scan_shards(self) -> int:
        return self.scan_shards or self.max_workers

    @property
    def admission_limit(self) -> int:
        """Total requests allowed in flight (running + queued)."""
        return self.max_concurrent + self.queue_depth
