"""The paper's synthetic sequence generator (Section 5.2).

Parameters (paper notation ``Ix.Ly.θz.Dw``):

* ``I`` — number of distinct event symbols,
* ``L`` — mean sequence length (lengths ~ Poisson(L)),
* ``theta`` — Zipf skew of the initial-symbol and transition distributions,
* ``D`` — number of sequences.

Symbols are organised into a 3-level concept hierarchy
``symbol → group → supergroup`` whose group sizes follow Zipf's law
(paper: 100 symbols → 20 groups → 5 super-groups, θ = 0.9 at both splits).

The generator can emit either raw symbol sequences (for algorithm-level
tests) or a full :class:`EventDatabase` with (seq, ts, symbol) events whose
standard pipeline (CLUSTER BY seq, SEQUENCE BY ts) reproduces the sequences
— all sequences then form the single sequence group the experiments use.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.spec import CuboidSpec, PatternKind, PatternTemplate
from repro.datagen.markov import MarkovChain
from repro.datagen.zipf import assign_to_groups, sample_poisson, zipf_partition_sizes
from repro.events.database import EventDatabase
from repro.events.schema import Dimension, Hierarchy, Schema


@dataclass
class SyntheticConfig:
    """Generator parameters; defaults mirror the paper's base dataset shape
    (scaled D — pure-Python constant factors make 100k+ impractical in CI,
    but nothing caps it)."""

    I: int = 100
    L: int = 20
    theta: float = 0.9
    D: int = 1000
    seed: int = 42
    #: group counts per hierarchy split (fine → coarse)
    hierarchy_groups: Tuple[int, ...] = (20, 5)
    hierarchy_theta: float = 0.9
    min_length: int = 1

    @property
    def name(self) -> str:
        """The paper's dataset naming convention, e.g. I100.L20.θ0.9.D1000."""
        return f"I{self.I}.L{self.L}.theta{self.theta}.D{self.D}"


#: level names of the synthetic hierarchy, fine to coarse
LEVELS = ("symbol", "group", "supergroup")


def symbol_name(index: int) -> str:
    return f"e{index:03d}"


def build_hierarchy(config: SyntheticConfig) -> Hierarchy:
    """The symbol → group → supergroup hierarchy with Zipf-law group sizes."""
    symbols = [symbol_name(i) for i in range(config.I)]
    levels = LEVELS[: len(config.hierarchy_groups) + 1]
    mappings: Dict[str, Dict[object, object]] = {}
    current_names: List[str] = symbols
    for depth, n_groups in enumerate(config.hierarchy_groups):
        level = levels[depth + 1]
        sizes = zipf_partition_sizes(
            len(current_names), n_groups, config.hierarchy_theta
        )
        assignment = assign_to_groups(current_names, sizes)
        prefix = "g" if depth == 0 else "s"
        group_names = [f"{prefix}{j:02d}" for j in range(n_groups)]
        mapping = {
            name: group_names[group]
            for name, group in zip(current_names, assignment)
        }
        if depth == 0:
            mappings[level] = mapping
        else:
            # Compose: base symbol -> previous level -> this level.
            previous = mappings[levels[depth]]
            mappings[level] = {
                base: mapping[prev] for base, prev in previous.items()
            }
        current_names = group_names
    return Hierarchy("symbol", levels, mappings)


def build_schema(config: SyntheticConfig) -> Schema:
    """Schema of the synthetic event database: seq, ts, symbol."""
    return Schema(
        dimensions=[
            Dimension("seq"),
            Dimension("ts"),
            Dimension("symbol", build_hierarchy(config)),
        ]
    )


def generate_symbol_sequences(config: SyntheticConfig) -> List[List[str]]:
    """D sequences of symbol names (Poisson lengths, Zipf'd Markov chain)."""
    rng = random.Random(config.seed)
    chain = MarkovChain(config.I, config.theta, rng)
    sequences: List[List[str]] = []
    for __ in range(config.D):
        length = max(config.min_length, sample_poisson(config.L, rng))
        sequences.append([symbol_name(s) for s in chain.generate(length)])
    return sequences


def generate_event_database(config: SyntheticConfig) -> EventDatabase:
    """The synthetic data as an event database (one row per sequence element)."""
    schema = build_schema(config)
    db = EventDatabase(schema)
    for seq_id, symbols in enumerate(generate_symbol_sequences(config)):
        for position, symbol in enumerate(symbols):
            db.append({"seq": seq_id, "ts": position, "symbol": symbol})
    return db


def base_spec(
    positions: Tuple[str, ...],
    level: str = "symbol",
    kind: PatternKind = PatternKind.SUBSTRING,
    per_symbol_levels: Optional[Dict[str, str]] = None,
) -> CuboidSpec:
    """A spec over the synthetic database with the standard pipeline.

    ``per_symbol_levels`` lets individual pattern dimensions sit at
    different hierarchy levels (QuerySet B's mixed-level templates).
    """
    names: List[str] = []
    for name in positions:
        if name not in names:
            names.append(name)
    levels = per_symbol_levels or {}
    bindings = {
        name: ("symbol", levels.get(name, level)) for name in names
    }
    template = PatternTemplate.build(kind, tuple(positions), bindings)
    return CuboidSpec(
        template=template,
        cluster_by=(("seq", "seq"),),
        sequence_by=(("ts", True),),
    )
