"""Smart-card transit event generator — the paper's running example.

The paper's motivating application (Section 1, Figure 1) is an RFID
electronic-payment transit system: passengers tap in and out of stations,
producing (time, card-id, location, action, amount) events.  The real data
(a subway operator's logs, Section 6) is private, so this module generates
a synthetic equivalent exercising the same query shapes:

* round trips (X, Y, Y, X) with a planted hot origin-destination pair,
* optional follow-up trips (the Q2 APPEND scenario),
* a station → district location hierarchy,
* an individual → fare-group card hierarchy,
* a minute-resolution time dimension with day and week levels.

Time values are integer minutes since the epoch of the dataset; the day and
week hierarchy levels are computed (``minute // 1440``, ``day // 7``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.spec import (
    CuboidSpec,
    MatchingPredicate,
    PatternTemplate,
)
from repro.events.database import EventDatabase
from repro.events.expression import (
    And,
    Comparison,
    Literal,
    PlaceholderField,
)
from repro.events.schema import (
    Dimension,
    Hierarchy,
    Measure,
    Schema,
    register_computed_mapping,
)

MINUTES_PER_DAY = 1440

#: Default network: stations grouped into districts (D10 deliberately
#: contains both Pentagon and Clarendon — the paper's s6 roll-up example).
DEFAULT_DISTRICTS: Dict[str, str] = {
    "Pentagon": "D10",
    "Clarendon": "D10",
    "Wheaton": "D20",
    "Glenmont": "D20",
    "Deanwood": "D30",
    "Anacostia": "D30",
    "Ballston": "D40",
    "Rosslyn": "D40",
}

FARE_GROUPS = ("student", "regular", "senior")


@dataclass
class TransitConfig:
    """Generator parameters for the synthetic smart-card dataset."""

    n_cards: int = 200
    n_days: int = 7
    seed: int = 7
    districts: Dict[str, str] = field(
        default_factory=lambda: dict(DEFAULT_DISTRICTS)
    )
    #: probability a passenger's day contains a round trip (in, out, in, out
    #: back); otherwise it is a single trip
    p_round_trip: float = 0.55
    #: probability a round-tripper takes a third (follow-up) trip
    p_third_trip: float = 0.35
    #: the planted hot origin-destination pair (Q1's dominant cell)
    hot_pair: Tuple[str, str] = ("Pentagon", "Wheaton")
    #: probability a round trip uses the hot pair
    p_hot: float = 0.4
    base_fare: float = 2.0


def day_of(minute: object) -> int:
    return int(minute) // MINUTES_PER_DAY  # type: ignore[arg-type]


def week_of(minute: object) -> int:
    return day_of(minute) // 7


#: registered so transit datasets (and their time hierarchy) can be
#: persisted and reloaded by name
DAY_MAPPING = register_computed_mapping("transit.minute-to-day", day_of)
WEEK_MAPPING = register_computed_mapping("transit.minute-to-week", week_of)


def build_schema(config: TransitConfig) -> Schema:
    """Schema with the paper's three concept hierarchies (Section 3.1)."""
    rng = random.Random(config.seed + 1)
    fare_group = {
        card: FARE_GROUPS[rng.randrange(len(FARE_GROUPS))]
        for card in range(config.n_cards)
    }
    return Schema(
        dimensions=[
            Dimension(
                "time",
                Hierarchy(
                    "time",
                    ("minute", "day", "week"),
                    {"day": DAY_MAPPING, "week": WEEK_MAPPING},
                ),
            ),
            Dimension(
                "card-id",
                Hierarchy(
                    "card-id", ("individual", "fare-group"), {"fare-group": fare_group}
                ),
            ),
            Dimension(
                "location",
                Hierarchy(
                    "location", ("station", "district"), {"district": config.districts}
                ),
            ),
            Dimension("action"),
        ],
        measures=[Measure("amount")],
    )


def generate_database(config: TransitConfig) -> EventDatabase:
    """Generate tap-in/tap-out events for every card over every day."""
    schema = build_schema(config)
    db = EventDatabase(schema)
    rng = random.Random(config.seed)
    stations = sorted(config.districts)

    def other_station(exclude: Sequence[str]) -> str:
        while True:
            station = stations[rng.randrange(len(stations))]
            if station not in exclude:
                return station

    for day in range(config.n_days):
        day_start = day * MINUTES_PER_DAY
        for card in range(config.n_cards):
            minute = day_start + rng.randrange(5 * 60, 10 * 60)
            legs: List[Tuple[str, str]] = []
            if rng.random() < config.p_round_trip:
                if rng.random() < config.p_hot:
                    origin, destination = config.hot_pair
                else:
                    origin = other_station(())
                    destination = other_station((origin,))
                legs.append((origin, destination))
                legs.append((destination, origin))
                if rng.random() < config.p_third_trip:
                    legs.append((origin, other_station((origin,))))
            else:
                origin = other_station(())
                legs.append((origin, other_station((origin,))))
            for enter, leave in legs:
                db.append(
                    {
                        "time": minute,
                        "card-id": card,
                        "location": enter,
                        "action": "in",
                        "amount": 0.0,
                    }
                )
                minute += rng.randrange(10, 40)
                db.append(
                    {
                        "time": minute,
                        "card-id": card,
                        "location": leave,
                        "action": "out",
                        "amount": -config.base_fare,
                    }
                )
                minute += rng.randrange(30, 240)
    return db


def in_out_predicate(placeholders: Sequence[str]) -> MatchingPredicate:
    """Alternating in/out action constraints (Figure 3 lines 13-17 style)."""
    terms = tuple(
        Comparison(
            PlaceholderField(name, "action"),
            "=",
            Literal("in" if index % 2 == 0 else "out"),
        )
        for index, name in enumerate(placeholders)
    )
    expr = terms[0] if len(terms) == 1 else And(terms)
    return MatchingPredicate(tuple(placeholders), expr)


def round_trip_spec(group_by_fare: bool = True) -> CuboidSpec:
    """The paper's Q1: round trips (X, Y, Y, X) per day and fare-group."""
    template = PatternTemplate.substring(
        ("X", "Y", "Y", "X"),
        {"X": ("location", "station"), "Y": ("location", "station")},
    )
    group_by: Tuple[Tuple[str, str], ...] = ()
    if group_by_fare:
        group_by = (("card-id", "fare-group"), ("time", "day"))
    return CuboidSpec(
        template=template,
        cluster_by=(("card-id", "individual"), ("time", "day")),
        sequence_by=(("time", True),),
        group_by=group_by,
        predicate=in_out_predicate(("x1", "y1", "y2", "x2")),
    )


def single_trip_spec() -> CuboidSpec:
    """The paper's Q3: single trips (X, Y) with in/out actions (Figure 11)."""
    template = PatternTemplate.substring(
        ("X", "Y"),
        {"X": ("location", "station"), "Y": ("location", "station")},
    )
    return CuboidSpec(
        template=template,
        cluster_by=(("card-id", "individual"), ("time", "day")),
        sequence_by=(("time", True),),
        predicate=in_out_predicate(("x1", "y1")),
    )
