"""Data generators: synthetic (Section 5.2), transit, clickstream analogue."""

from repro.datagen.clickstream import (
    ClickstreamConfig,
    generate_database as generate_clickstream,
    remove_crawler_sessions,
    two_step_spec,
)
from repro.datagen.markov import MarkovChain
from repro.datagen.rfid import (
    RFIDConfig,
    generate_database as generate_rfid,
    path_spec as rfid_path_spec,
    shrinkage_spec as rfid_shrinkage_spec,
)
from repro.datagen.synthetic import (
    SyntheticConfig,
    base_spec,
    build_hierarchy,
    build_schema as build_synthetic_schema,
    generate_event_database,
    generate_symbol_sequences,
)
from repro.datagen.transit import (
    TransitConfig,
    build_schema as build_transit_schema,
    generate_database as generate_transit,
    in_out_predicate,
    round_trip_spec,
    single_trip_spec,
)
from repro.datagen.zipf import (
    ZipfDistribution,
    sample_poisson,
    zipf_partition_sizes,
)

__all__ = [
    "ClickstreamConfig",
    "MarkovChain",
    "RFIDConfig",
    "SyntheticConfig",
    "TransitConfig",
    "ZipfDistribution",
    "base_spec",
    "build_hierarchy",
    "build_synthetic_schema",
    "build_transit_schema",
    "generate_clickstream",
    "generate_event_database",
    "generate_rfid",
    "generate_symbol_sequences",
    "generate_transit",
    "in_out_predicate",
    "remove_crawler_sessions",
    "rfid_path_spec",
    "rfid_shrinkage_spec",
    "round_trip_spec",
    "sample_poisson",
    "single_trip_spec",
    "two_step_spec",
    "zipf_partition_sizes",
]
