"""Zipf-skewed discrete distributions (the paper's synthetic-data skew model).

The synthetic generator of Section 5.2 draws the first symbol of each
sequence from a Zipf distribution with parameters I (domain size) and θ
(skew), and sizes hierarchy groups by Zipf's law as well.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Optional, Sequence


class ZipfDistribution:
    """A Zipf(θ) distribution over ranks 0..n-1: P(i) ∝ 1 / (i+1)^θ.

    θ = 0 degenerates to uniform; larger θ concentrates mass on low ranks.
    Sampling is O(log n) via the precomputed CDF.
    """

    def __init__(self, n: int, theta: float, rng: Optional[random.Random] = None):
        if n < 1:
            raise ValueError("domain size must be >= 1")
        if theta < 0:
            raise ValueError("theta must be >= 0")
        self.n = n
        self.theta = theta
        self._rng = rng or random.Random()
        weights = [1.0 / (rank + 1) ** theta for rank in range(n)]
        total = sum(weights)
        self.probabilities = [w / total for w in weights]
        self._cdf: List[float] = []
        acc = 0.0
        for p in self.probabilities:
            acc += p
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against float drift

    def sample(self) -> int:
        """Draw one rank."""
        return bisect.bisect_left(self._cdf, self._rng.random())

    def sample_many(self, k: int) -> List[int]:
        """Draw k ranks."""
        return [self.sample() for __ in range(k)]

    def probability(self, rank: int) -> float:
        return self.probabilities[rank]

    def __repr__(self) -> str:
        return f"ZipfDistribution(n={self.n}, theta={self.theta})"


def zipf_partition_sizes(total: int, n_groups: int, theta: float) -> List[int]:
    """Partition *total* items into *n_groups* Zipf-proportioned sizes.

    Every group receives at least one item (the paper's hierarchy splits
    100 symbols into 20 groups and 20 groups into 5 super-groups with
    Zipf-law sizes, and no group may be empty).
    """
    if n_groups < 1:
        raise ValueError("need at least one group")
    if total < n_groups:
        raise ValueError(f"cannot split {total} items into {n_groups} non-empty groups")
    dist = ZipfDistribution(n_groups, theta)
    sizes = [1] * n_groups
    remaining = total - n_groups
    # Largest-remainder apportionment of the leftover mass.
    quotas = [p * remaining for p in dist.probabilities]
    floors = [int(q) for q in quotas]
    sizes = [s + f for s, f in zip(sizes, floors)]
    leftover = remaining - sum(floors)
    remainders = sorted(
        range(n_groups), key=lambda i: quotas[i] - floors[i], reverse=True
    )
    for i in remainders[:leftover]:
        sizes[i] += 1
    return sizes


def assign_to_groups(values: Sequence[object], sizes: Sequence[int]) -> List[int]:
    """Group index per value, contiguously by the given sizes."""
    if sum(sizes) != len(values):
        raise ValueError("sizes must sum to the number of values")
    assignment = []
    for group, size in enumerate(sizes):
        assignment.extend([group] * size)
    return assignment


def sample_poisson(mean: float, rng: random.Random) -> int:
    """Poisson sample via Knuth's method (sequence lengths, Section 5.2).

    Adequate for the small means used by the paper (L ≈ 10..40); switches
    to a normal approximation above mean 60 to stay O(1).
    """
    if mean <= 0:
        return 0
    if mean > 60:
        value = int(round(rng.gauss(mean, mean ** 0.5)))
        return max(0, value)
    import math

    limit = math.exp(-mean)
    k = 0
    product = rng.random()
    while product > limit:
        k += 1
        product *= rng.random()
    return k
