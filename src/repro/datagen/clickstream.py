"""Gazelle-style clickstream generator — the real-data analogue (Section 5.1).

The paper's real dataset is the KDD-Cup 2000 Gazelle.com clickstream:
164,364 click events in 50,524 sessions, a ``page`` attribute with a
raw-page → page-category hierarchy (44 categories), and 279 product pages
after drilling into the Legwear category.  The original file is not
redistributable, so this generator synthesises a dataset with the same
*shape*, seeded and deterministic:

* 44 page categories including "Assortment", "Legwear", "Legcare" and
  "Main Pages";
* 279 Legwear product pages, including the paper's remarkable ones
  (``product-id-null``, ``product-id-34893``, ``product-id-34885``,
  ``product-id-34897``);
* session transitions skewed so the published exploration finds the same
  qualitative answers: (Assortment, Legwear) is the dominant two-step
  category pair, ``product-id-null`` and ``product-id-34893`` are the top
  Legwear landings after Assortment, and comparison-shopping hops
  34885 → 34897 exist;
* a crawler fraction with very long sessions, so the paper's preprocessing
  step (filtering crawler sessions) has something real to remove.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.core.spec import CuboidSpec, PatternTemplate
from repro.datagen.zipf import ZipfDistribution, sample_poisson
from repro.events.database import EventDatabase
from repro.events.schema import Dimension, Hierarchy, Schema

N_CATEGORIES = 44
N_LEGWEAR_PRODUCTS = 279

NAMED_CATEGORIES = ("Assortment", "Legwear", "Legcare", "Main Pages")

#: product pages the paper calls out in its exploration
REMARKABLE_PRODUCTS = (
    "product-id-null",
    "product-id-34893",
    "product-id-34885",
    "product-id-34897",
)


@dataclass
class ClickstreamConfig:
    """Generator parameters; defaults scale the Gazelle shape down ~10x."""

    n_sessions: int = 5000
    mean_session_length: float = 3.2
    seed: int = 2000
    #: fraction of sessions produced by "crawlers" (very long sessions)
    crawler_fraction: float = 0.002
    crawler_length: int = 400
    #: probability an Assortment page is followed by a Legwear page
    p_assortment_to_legwear: float = 0.45
    #: probability the session starts on an Assortment page
    p_start_assortment: float = 0.35


def category_names() -> List[str]:
    names = list(NAMED_CATEGORIES)
    index = 1
    while len(names) < N_CATEGORIES:
        names.append(f"Category-{index:02d}")
        index += 1
    return names


def _pages_by_category() -> Dict[str, List[str]]:
    """Raw pages per category (Legwear gets the 279 product pages)."""
    pages: Dict[str, List[str]] = {}
    for category in category_names():
        if category == "Legwear":
            products = list(REMARKABLE_PRODUCTS)
            next_id = 34000
            while len(products) < N_LEGWEAR_PRODUCTS:
                products.append(f"product-id-{next_id}")
                next_id += 1
            pages[category] = products
        elif category == "Assortment":
            pages[category] = [f"assortment-{i:02d}" for i in range(6)]
        elif category == "Main Pages":
            pages[category] = ["home", "login", "logout", "basket", "checkout"]
        else:
            slug = category.lower().replace(" ", "-")
            pages[category] = [f"{slug}-page-{i}" for i in range(3)]
    return pages


def build_schema() -> Schema:
    """Schema: session-id, request-time, page (raw-page → page-category)."""
    mapping: Dict[object, object] = {}
    for category, pages in _pages_by_category().items():
        for page in pages:
            mapping[page] = category
    return Schema(
        dimensions=[
            Dimension("session-id"),
            Dimension("request-time"),
            Dimension(
                "page",
                Hierarchy("page", ("raw-page", "page-category"), {"page-category": mapping}),
            ),
        ]
    )


def generate_database(config: ClickstreamConfig) -> EventDatabase:
    """Generate the synthetic clickstream (one row per click)."""
    schema = build_schema()
    db = EventDatabase(schema)
    rng = random.Random(config.seed)
    pages = _pages_by_category()
    categories = category_names()
    category_dist = ZipfDistribution(len(categories), 0.8, rng)
    # Skewed landing distribution within Legwear: product-id-null first,
    # then product-id-34893, then the long tail (θ high → heavy head).
    legwear_dist = ZipfDistribution(len(pages["Legwear"]), 1.05, rng)

    def random_category_page(category: str) -> str:
        options = pages[category]
        return options[rng.randrange(len(options))]

    def random_page() -> str:
        category = categories[category_dist.sample()]
        return random_category_page(category)

    for session in range(config.n_sessions):
        if rng.random() < config.crawler_fraction:
            length = config.crawler_length + rng.randrange(200)
        else:
            length = max(1, sample_poisson(config.mean_session_length, rng))
        if rng.random() < config.p_start_assortment:
            current = random_category_page("Assortment")
        else:
            current = random_page()
        clicks = [current]
        while len(clicks) < length:
            current_category = schema.map_value("page", current, "page-category")
            if (
                current_category == "Assortment"
                and rng.random() < config.p_assortment_to_legwear
            ):
                current = pages["Legwear"][legwear_dist.sample()]
            elif current_category == "Legwear" and rng.random() < 0.25:
                # comparison shopping: another legwear product, with a
                # planted 34885 -> 34897 preference
                if current == "product-id-34885" and rng.random() < 0.5:
                    current = "product-id-34897"
                else:
                    current = pages["Legwear"][legwear_dist.sample()]
            else:
                current = random_page()
            clicks.append(current)
        for position, page in enumerate(clicks):
            db.append(
                {"session-id": session, "request-time": position, "page": page}
            )
    return db


def remove_crawler_sessions(
    db: EventDatabase, max_clicks: int = 100
) -> EventDatabase:
    """The paper's preprocessing step (1): drop very long sessions."""
    counts: Dict[object, int] = {}
    for value in db.column("session-id"):
        counts[value] = counts.get(value, 0) + 1
    keep = {session for session, count in counts.items() if count <= max_clicks}
    clean = EventDatabase(db.schema)
    for event in db:
        if event["session-id"] in keep:
            clean.append(event)
    return clean


def two_step_spec(level: str = "page-category") -> CuboidSpec:
    """The paper's Qa: two-step page accesses at the page-category level."""
    template = PatternTemplate.substring(
        ("X", "Y"), {"X": ("page", level), "Y": ("page", level)}
    )
    return CuboidSpec(
        template=template,
        cluster_by=(("session-id", "session-id"),),
        sequence_by=(("request-time", True),),
    )
