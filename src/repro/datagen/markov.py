"""Degree-1 Markov chains with Zipf-skewed rows (Section 5.2).

The paper generates each synthetic sequence by drawing the first symbol
from a Zipf distribution and every subsequent symbol "using a Markov chain
of degree 1" whose "conditional probabilities are pre-determined and are
skewed according to Zipf's law".  We realise that as: for each source
state, the transition distribution over target states is Zipf(θ) applied
through a per-state deterministic permutation, so different states prefer
different successors while every row has the same skew profile.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.datagen.zipf import ZipfDistribution


class MarkovChain:
    """A finite first-order Markov chain over symbols 0..n-1."""

    def __init__(
        self,
        n_symbols: int,
        theta: float,
        rng: Optional[random.Random] = None,
        initial_theta: Optional[float] = None,
    ):
        if n_symbols < 1:
            raise ValueError("need at least one symbol")
        self.n_symbols = n_symbols
        self.theta = theta
        self._rng = rng or random.Random()
        self._rank_dist = ZipfDistribution(n_symbols, theta, self._rng)
        self._initial = ZipfDistribution(
            n_symbols, initial_theta if initial_theta is not None else theta, self._rng
        )
        # Pre-determined per-state permutations: rank r of state s maps to
        # a concrete successor symbol.  Derived once so the chain is fixed
        # (the paper's "pre-determined" conditional probabilities).
        self._permutations: List[List[int]] = []
        for state in range(n_symbols):
            permutation = list(range(n_symbols))
            self._rng.shuffle(permutation)
            self._permutations.append(permutation)

    def initial_symbol(self) -> int:
        """Draw the first symbol of a sequence (Zipf over raw symbol ids)."""
        return self._initial.sample()

    def next_symbol(self, state: int) -> int:
        """Draw the successor of *state*."""
        rank = self._rank_dist.sample()
        return self._permutations[state][rank]

    def transition_probability(self, state: int, target: int) -> float:
        """P(target | state) from the fixed rank permutation."""
        rank = self._permutations[state].index(target)
        return self._rank_dist.probability(rank)

    def generate(self, length: int) -> List[int]:
        """One sequence of the given length."""
        if length <= 0:
            return []
        sequence = [self.initial_symbol()]
        while len(sequence) < length:
            sequence.append(self.next_symbol(sequence[-1]))
        return sequence

    def __repr__(self) -> str:
        return f"MarkovChain(n={self.n_symbols}, theta={self.theta})"
