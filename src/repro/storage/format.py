"""The on-disk segment format: header, footer, checksums, uint32 codecs.

A *segment* is one immutable file holding the dictionary-encoded columnar
representation of a run of events.  The layout is designed so a reader can
attach in O(1) — validate two fixed-size records and ``mmap`` the rest —
while a full integrity check (``solap segment verify``) remains possible
without any side metadata:

::

    offset 0                                                end of file
    | header (40 B) | section 0 | section 1 | ... | directory | footer (24 B) |

* **Header** (40 bytes, little-endian): magic ``SOLAPSG1``, format
  version, flags, event count, and the offset/length of the directory.
* **Sections** are raw byte runs: ``u32`` sections are contiguous
  little-endian uint32 arrays (code columns, offset arrays) readable
  zero-copy through a ``memoryview`` cast; ``json`` sections hold the
  schema, the dictionary tables and other variable-shape metadata.
* **Directory** is a JSON table of contents naming each section with its
  kind, byte offset, byte length and logical element count.
* **Footer** (24 bytes): magic ``SOLAPEND``, the CRC-32 of every byte
  before the footer, and the total file length.  The length check makes
  truncation detectable in O(1); the CRC makes corruption detectable in
  one pass.

Endianness is explicit: all integers — header fields and ``u32`` section
payloads — are stored **little-endian**, independent of the writing
host.  On the (rare) big-endian host the reader byteswaps ``u32``
sections into a process-local ``array('I')`` at attach time instead of
reading the mapped pages in place; little-endian hosts, i.e. everything
we run on in practice, stay zero-copy.
"""

from __future__ import annotations

import json
import struct
import sys
import zlib
from array import array
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import StorageError

#: first 8 bytes of every segment file (the trailing 1 is the format era)
MAGIC = b"SOLAPSG1"
#: first 8 bytes of the footer record
FOOTER_MAGIC = b"SOLAPEND"
#: current format version; readers reject versions they do not know
FORMAT_VERSION = 1

#: header record: magic, version u32, flags u32, n_events u64,
#: directory offset u64, directory length u64 — all little-endian
_HEADER_STRUCT = struct.Struct("<8sIIQQQ")
HEADER_SIZE = _HEADER_STRUCT.size  # 40

#: footer record: magic, payload crc32 u32, reserved u32, file length u64
_FOOTER_STRUCT = struct.Struct("<8sIIQ")
FOOTER_SIZE = _FOOTER_STRUCT.size  # 24

#: section kinds understood by this format version
SECTION_KINDS = ("json", "u32")

#: native typecode guaranteed to be 4 bytes on CPython's supported platforms
U32_TYPECODE = "I"
if array(U32_TYPECODE).itemsize != 4:  # pragma: no cover - exotic platform
    raise ImportError("array('I') is not 4 bytes on this platform")

#: whether mapped u32 payloads can be read in place (no byteswap copy)
HOST_IS_LITTLE_ENDIAN = sys.byteorder == "little"


@dataclass(frozen=True)
class SectionEntry:
    """One directory row: where a named byte run lives inside the file."""

    name: str
    kind: str
    offset: int
    length: int
    #: logical element count: uint32 entries for ``u32``, always the
    #: decoded object count the writer declared for ``json``
    count: int

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "offset": self.offset,
            "length": self.length,
            "count": self.count,
        }

    @classmethod
    def from_json(cls, data: dict) -> "SectionEntry":
        try:
            entry = cls(
                name=str(data["name"]),
                kind=str(data["kind"]),
                offset=int(data["offset"]),
                length=int(data["length"]),
                count=int(data["count"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageError(f"malformed directory entry: {data!r}") from exc
        if entry.kind not in SECTION_KINDS:
            raise StorageError(
                f"section {entry.name!r} has unknown kind {entry.kind!r}"
            )
        return entry


@dataclass(frozen=True)
class Header:
    """The decoded fixed-size header of one segment file."""

    version: int
    flags: int
    n_events: int
    directory_offset: int
    directory_length: int


def pack_header(
    n_events: int,
    directory_offset: int,
    directory_length: int,
    flags: int = 0,
    version: int = FORMAT_VERSION,
) -> bytes:
    return _HEADER_STRUCT.pack(
        MAGIC, version, flags, n_events, directory_offset, directory_length
    )


def unpack_header(raw: bytes) -> Header:
    """Decode and validate a header record (magic + known version)."""
    if len(raw) < HEADER_SIZE:
        raise StorageError(
            f"segment too short for a header ({len(raw)} bytes, "
            f"need {HEADER_SIZE})"
        )
    magic, version, flags, n_events, dir_offset, dir_length = (
        _HEADER_STRUCT.unpack_from(raw)
    )
    if magic != MAGIC:
        raise StorageError(
            f"not a segment file: bad magic {magic!r} (expected {MAGIC!r})"
        )
    if version != FORMAT_VERSION:
        raise StorageError(
            f"unsupported segment format version {version} "
            f"(this reader understands version {FORMAT_VERSION})"
        )
    return Header(version, flags, n_events, dir_offset, dir_length)


def pack_footer(payload_crc32: int, file_length: int) -> bytes:
    return _FOOTER_STRUCT.pack(FOOTER_MAGIC, payload_crc32 & 0xFFFFFFFF, 0, file_length)


def unpack_footer(raw: bytes) -> Tuple[int, int]:
    """Decode a footer record; returns (payload crc32, declared file length)."""
    if len(raw) != FOOTER_SIZE:
        raise StorageError(
            f"segment footer is {len(raw)} bytes, expected {FOOTER_SIZE}"
        )
    magic, crc, _reserved, file_length = _FOOTER_STRUCT.unpack(raw)
    if magic != FOOTER_MAGIC:
        raise StorageError(
            f"segment footer missing or overwritten: bad magic {magic!r} "
            f"(expected {FOOTER_MAGIC!r}) — file truncated?"
        )
    return crc, file_length


def payload_crc32(data: bytes) -> int:
    """CRC-32 of everything before the footer (what the footer asserts)."""
    return zlib.crc32(data) & 0xFFFFFFFF


# --------------------------------------------------------------------------
# uint32 payload codecs
# --------------------------------------------------------------------------


def encode_u32(values: Iterable[int]) -> bytes:
    """Little-endian uint32 bytes for *values*, on any host.

    The on-disk layout is explicitly little-endian (not "whatever
    ``array('I')`` happens to be"), so big-endian writers byteswap before
    serialising.
    """
    arr = values if isinstance(values, array) else array(U32_TYPECODE, values)
    if arr.typecode != U32_TYPECODE:
        arr = array(U32_TYPECODE, arr)
    if not HOST_IS_LITTLE_ENDIAN:  # pragma: no cover - big-endian host
        arr = array(U32_TYPECODE, arr)
        arr.byteswap()
    return arr.tobytes()


def decode_u32(buffer, little_endian_host: Optional[bool] = None):
    """An indexable uint32 view of a little-endian on-disk byte run.

    On little-endian hosts this is a **zero-copy** ``memoryview`` cast of
    *buffer* (which may be a slice of an ``mmap``); the file's pages back
    the returned object directly.  On big-endian hosts the bytes are
    copied into an ``array('I')`` and byteswapped — correctness over
    zero-copy, exactly once per attach.

    *little_endian_host* is injectable so the byteswap branch is testable
    on little-endian machines.
    """
    if little_endian_host is None:
        little_endian_host = HOST_IS_LITTLE_ENDIAN
    view = memoryview(buffer)
    if len(view) % 4:
        raise StorageError(
            f"u32 section length {len(view)} is not a multiple of 4"
        )
    if little_endian_host:
        return view.cast(U32_TYPECODE)
    arr = array(U32_TYPECODE, view.tobytes())  # pragma: no cover - big-endian
    arr.byteswap()  # pragma: no cover - big-endian
    return arr  # pragma: no cover - big-endian


def encode_json(payload: object) -> bytes:
    """Canonical JSON bytes for a metadata section."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def decode_json(buffer) -> object:
    try:
        return json.loads(bytes(buffer).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StorageError(f"corrupt JSON section: {exc}") from exc


def encode_directory(entries: Sequence[SectionEntry]) -> bytes:
    return encode_json({"sections": [entry.to_json() for entry in entries]})


def decode_directory(buffer) -> Dict[str, SectionEntry]:
    data = decode_json(buffer)
    if not isinstance(data, dict) or "sections" not in data:
        raise StorageError("segment directory is not a section table")
    entries: Dict[str, SectionEntry] = {}
    rows: List[dict] = data["sections"]
    for row in rows:
        entry = SectionEntry.from_json(row)
        if entry.name in entries:
            raise StorageError(f"duplicate section {entry.name!r} in directory")
        entries[entry.name] = entry
    return entries
