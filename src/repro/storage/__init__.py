"""On-disk, append-only, mmap-attachable columnar segment store.

The storage subsystem persists the dictionary-encoded columnar form of
an :class:`~repro.events.database.EventDatabase` as immutable *segment*
files (see :mod:`repro.storage.format` for the byte layout) and exposes
them back to the engine as a read-only, lazily-decoding database that
every matcher, kernel and executor backend consumes unchanged.  The
headline win is process-pool attachment by *path*: workers ``mmap`` the
shared pages in O(1) instead of unpickling the whole event database.
"""

from repro.storage.format import FORMAT_VERSION, FOOTER_MAGIC, MAGIC
from repro.storage.manager import (
    MANIFEST_NAME,
    SegmentBackedDatabase,
    SegmentEncodedStore,
    StorageManager,
    attach_store,
    build_layout,
    is_segment_store,
    register_storage_metrics,
)
from repro.storage.segment import (
    SegmentLayout,
    SegmentReader,
    SegmentWriter,
)

__all__ = [
    "FORMAT_VERSION",
    "FOOTER_MAGIC",
    "MAGIC",
    "MANIFEST_NAME",
    "SegmentBackedDatabase",
    "SegmentEncodedStore",
    "SegmentLayout",
    "SegmentReader",
    "SegmentWriter",
    "StorageManager",
    "attach_store",
    "build_layout",
    "is_segment_store",
    "register_storage_metrics",
]
