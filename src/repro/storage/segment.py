"""Segment files: immutable columnar runs of dictionary-encoded events.

A segment holds one contiguous run of events as uint32 code columns plus
the dictionary tables that decode them, in the byte layout defined by
:mod:`repro.storage.format`.  Segments are **append-only at the store
level**: a file, once written, is never modified — new data becomes a new
segment, and compaction rewrites the set (see
:class:`repro.storage.manager.StorageManager`).

Dictionaries are *cumulative*: an appended segment's dictionary tables
are seeded with every value of the preceding segments, so a code means
the same value in every segment of a store and the newest segment's
tables decode the whole store.  :meth:`SegmentReader.verify` checks this
prefix property from the manager side.

Values must be JSON-representable (the same constraint as dataset
directories on disk): strings, numbers, booleans, null.
"""

from __future__ import annotations

import mmap
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import StorageError
from repro.io.events_io import schema_from_dict, schema_to_dict
from repro.storage import format as fmt

#: section-name prefixes of per-attribute payloads
DICT_PREFIX = "dict:"
CODES_PREFIX = "codes:"
MEASURE_PREFIX = "measure:"
#: optional stored pipeline layout (per-sequence offset arrays)
LAYOUT_META = "layout:meta"
LAYOUT_ROWS = "layout:rows"
LAYOUT_OFFSETS = "layout:offsets"

SEGMENT_SUFFIX = ".seg"


class SegmentLayout:
    """A stored sequence-formation result: per-sequence offset arrays.

    ``rows`` is the flattened row ids of every sequence in sid order and
    ``offsets[i]:offsets[i+1]`` brackets sequence *i*'s slice of it — the
    classic offsets+values columnar encoding of a ragged array.  ``meta``
    records the pipeline spec the layout was built under (cluster_by,
    sequence_by, group_by) plus each sequence's cluster key and group
    key, so a reader can skip selection/clustering/sorting entirely when
    a query's spec matches.
    """

    __slots__ = ("meta", "rows", "offsets")

    def __init__(self, meta: dict, rows, offsets):
        self.meta = meta
        self.rows = rows
        self.offsets = offsets

    @property
    def n_sequences(self) -> int:
        return len(self.offsets) - 1 if len(self.offsets) else 0

    def sequence_rows(self, index: int):
        return self.rows[self.offsets[index] : self.offsets[index + 1]]


class SegmentWriter:
    """Accumulates events column-wise and serialises one segment file.

    Seed *dictionaries* (attribute → value list) with the cumulative
    tables of earlier segments when appending, so codes stay consistent
    across the whole store.
    """

    def __init__(
        self,
        schema,
        dictionaries: Optional[Mapping[str, Sequence[object]]] = None,
    ):
        self.schema = schema
        self._dims: Tuple[str, ...] = tuple(schema.dimensions)
        self._measures: Tuple[str, ...] = tuple(schema.measures)
        #: per dimension: value → code and code → value (append-only)
        self._codes: Dict[str, Dict[object, int]] = {}
        self._values: Dict[str, List[object]] = {}
        for attr in self._dims:
            seed = list((dictionaries or {}).get(attr, ()))
            self._values[attr] = seed
            try:
                self._codes[attr] = {value: code for code, value in enumerate(seed)}
            except TypeError as exc:
                raise StorageError(
                    f"dictionary for {attr!r} holds unhashable values"
                ) from exc
        #: per dimension: the uint32 code column being accumulated
        self._columns: Dict[str, List[int]] = {attr: [] for attr in self._dims}
        self._measure_columns: Dict[str, List[object]] = {
            attr: [] for attr in self._measures
        }
        self._n_events = 0

    # ------------------------------------------------------------------
    def add_event(self, event: Mapping[str, object]) -> int:
        """Append one event; returns its row index within this segment."""
        for attr in self._dims:
            if attr not in event:
                raise StorageError(
                    f"event missing dimension {attr!r}: {event!r}"
                )
        for attr in self._dims:
            value = event[attr]
            codes = self._codes[attr]
            try:
                code = codes.get(value)
            except TypeError as exc:
                raise StorageError(
                    f"dimension {attr!r} value {value!r} is unhashable"
                ) from exc
            if code is None:
                values = self._values[attr]
                code = len(values)
                values.append(value)
                codes[value] = code
            self._columns[attr].append(code)
        for attr in self._measures:
            self._measure_columns[attr].append(event.get(attr))
        self._n_events += 1
        return self._n_events - 1

    def add_events(self, events: Iterable[Mapping[str, object]]) -> int:
        """Append many events; returns the number added."""
        count = 0
        for event in events:
            self.add_event(event)
            count += 1
        return count

    def add_database(self, db) -> int:
        """Append every event of an :class:`EventDatabase`, in row order.

        Row order is preserved exactly — it is the tiebreaker of sequence
        sorting, so permuting it would change query results.  Encoding
        runs column-wise (one tight loop per dimension), not row-wise.
        """
        n = len(db)
        for attr in self._dims:
            codes = self._codes[attr]
            values = self._values[attr]
            out = self._columns[attr]
            get = codes.get
            append = out.append
            try:
                for value in db.column(attr):
                    code = get(value)
                    if code is None:
                        code = len(values)
                        values.append(value)
                        codes[value] = code
                    append(code)
            except TypeError as exc:
                raise StorageError(
                    f"dimension {attr!r} holds unhashable values"
                ) from exc
        for attr in self._measures:
            self._measure_columns[attr].extend(db.column(attr))
        self._n_events += n
        return n

    @property
    def n_events(self) -> int:
        return self._n_events

    def dictionaries(self) -> Dict[str, List[object]]:
        """The cumulative value tables (seed for the next segment)."""
        return {attr: list(values) for attr, values in self._values.items()}

    # ------------------------------------------------------------------
    def write(self, path, layout: Optional[SegmentLayout] = None) -> Path:
        """Serialise the accumulated events to *path* and return it.

        The file is assembled in memory (header, sections, directory,
        CRC footer) and written with a single ``write`` call; segments
        are immutable afterwards.
        """
        path = Path(path)
        sections: List[Tuple[str, str, bytes, int]] = []

        def add(name: str, kind: str, payload: bytes, count: int) -> None:
            sections.append((name, kind, payload, count))

        try:
            add("schema", "json", fmt.encode_json(schema_to_dict(self.schema)), 1)
            for attr in self._dims:
                values = self._values[attr]
                add(
                    DICT_PREFIX + attr,
                    "json",
                    fmt.encode_json(values),
                    len(values),
                )
                column = self._columns[attr]
                add(
                    CODES_PREFIX + attr,
                    "u32",
                    fmt.encode_u32(column),
                    len(column),
                )
            for attr in self._measures:
                column = self._measure_columns[attr]
                add(
                    MEASURE_PREFIX + attr,
                    "json",
                    fmt.encode_json(column),
                    len(column),
                )
            if layout is not None:
                add(LAYOUT_META, "json", fmt.encode_json(layout.meta), 1)
                add(
                    LAYOUT_ROWS,
                    "u32",
                    fmt.encode_u32(layout.rows),
                    len(layout.rows),
                )
                add(
                    LAYOUT_OFFSETS,
                    "u32",
                    fmt.encode_u32(layout.offsets),
                    len(layout.offsets),
                )
        except TypeError as exc:
            raise StorageError(
                f"segment payload is not JSON-representable: {exc}"
            ) from exc

        offset = fmt.HEADER_SIZE
        entries: List[fmt.SectionEntry] = []
        for name, kind, payload, count in sections:
            entries.append(
                fmt.SectionEntry(name, kind, offset, len(payload), count)
            )
            offset += len(payload)
        directory = fmt.encode_directory(entries)
        header = fmt.pack_header(self._n_events, offset, len(directory))
        payload = b"".join(
            [header] + [blob for __, __, blob, __ in sections] + [directory]
        )
        footer = fmt.pack_footer(
            fmt.payload_crc32(payload), len(payload) + fmt.FOOTER_SIZE
        )
        path.write_bytes(payload + footer)
        return path


class SegmentReader:
    """One mmap-attached segment file.

    Attach cost is O(1): the constructor validates the header and footer
    magics and the declared file length, maps the file read-only, and
    decodes the (small) section directory.  Code columns come back as
    zero-copy ``memoryview`` casts over the mapped pages (on
    little-endian hosts); nothing else is materialised until asked for.
    Full integrity checking — the CRC pass and structural invariants —
    lives in :meth:`verify`, priced for `solap segment verify`, not for
    every attach.
    """

    def __init__(self, path):
        self.path = Path(path)
        try:
            self._file = open(self.path, "rb")
        except OSError as exc:
            raise StorageError(f"cannot open segment {self.path}: {exc}") from exc
        try:
            self._mmap = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError) as exc:
            self._file.close()
            raise StorageError(
                f"cannot map segment {self.path}: {exc}"
            ) from exc
        self._view = memoryview(self._mmap)
        self._closed = False
        self._schema = None
        self._json_cache: Dict[str, object] = {}
        self._u32_cache: Dict[str, object] = {}
        try:
            self.header = fmt.unpack_header(self._view[: fmt.HEADER_SIZE])
            size = len(self._view)
            if size < fmt.HEADER_SIZE + fmt.FOOTER_SIZE:
                raise StorageError(
                    f"segment {self.path} is {size} bytes — truncated"
                )
            self.crc32, declared = fmt.unpack_footer(
                bytes(self._view[size - fmt.FOOTER_SIZE :])
            )
            if declared != size:
                raise StorageError(
                    f"segment {self.path} length mismatch: footer declares "
                    f"{declared} bytes, file has {size} — truncated or "
                    "partially written"
                )
            dir_end = self.header.directory_offset + self.header.directory_length
            if dir_end > size - fmt.FOOTER_SIZE:
                raise StorageError(
                    f"segment {self.path} directory extends past the footer"
                )
            self.sections = fmt.decode_directory(
                self._view[self.header.directory_offset : dir_end]
            )
            for entry in self.sections.values():
                if entry.offset + entry.length > size - fmt.FOOTER_SIZE:
                    raise StorageError(
                        f"segment {self.path} section {entry.name!r} extends "
                        "past the directory"
                    )
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------
    @property
    def n_events(self) -> int:
        return self.header.n_events

    @property
    def bytes_mapped(self) -> int:
        return 0 if self._closed else len(self._mmap)

    def _entry(self, name: str) -> fmt.SectionEntry:
        try:
            return self.sections[name]
        except KeyError:
            raise StorageError(
                f"segment {self.path} has no section {name!r}"
            ) from None

    def _section_view(self, entry: fmt.SectionEntry):
        return self._view[entry.offset : entry.offset + entry.length]

    def json_section(self, name: str):
        cached = self._json_cache.get(name)
        if cached is None and name not in self._json_cache:
            cached = fmt.decode_json(self._section_view(self._entry(name)))
            self._json_cache[name] = cached
        return cached

    def u32_section(self, name: str):
        """The uint32 payload of a section — zero-copy where the host allows."""
        cached = self._u32_cache.get(name)
        if cached is None:
            entry = self._entry(name)
            if entry.kind != "u32":
                raise StorageError(
                    f"section {name!r} is {entry.kind!r}, not u32"
                )
            cached = fmt.decode_u32(self._section_view(entry))
            if len(cached) != entry.count:
                raise StorageError(
                    f"section {name!r} holds {len(cached)} uint32 values, "
                    f"directory declares {entry.count}"
                )
            self._u32_cache[name] = cached
        return cached

    # -- typed accessors -------------------------------------------------
    @property
    def schema(self):
        if self._schema is None:
            data = self.json_section("schema")
            try:
                self._schema = schema_from_dict(data)
            except (KeyError, TypeError) as exc:
                raise StorageError(
                    f"segment {self.path} schema section is malformed: {exc}"
                ) from exc
        return self._schema

    def dimensions(self) -> List[str]:
        return [
            name[len(DICT_PREFIX) :]
            for name in self.sections
            if name.startswith(DICT_PREFIX)
        ]

    def measures(self) -> List[str]:
        return [
            name[len(MEASURE_PREFIX) :]
            for name in self.sections
            if name.startswith(MEASURE_PREFIX)
        ]

    def dictionary(self, attribute: str) -> List[object]:
        values = self.json_section(DICT_PREFIX + attribute)
        if not isinstance(values, list):
            raise StorageError(
                f"dictionary section for {attribute!r} is not a value list"
            )
        return values

    def codes(self, attribute: str):
        return self.u32_section(CODES_PREFIX + attribute)

    def measure_column(self, attribute: str) -> List[object]:
        values = self.json_section(MEASURE_PREFIX + attribute)
        if not isinstance(values, list):
            raise StorageError(
                f"measure section for {attribute!r} is not a value list"
            )
        return values

    def layout(self) -> Optional[SegmentLayout]:
        if LAYOUT_META not in self.sections:
            return None
        return SegmentLayout(
            self.json_section(LAYOUT_META),
            self.u32_section(LAYOUT_ROWS),
            self.u32_section(LAYOUT_OFFSETS),
        )

    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Full integrity check: CRC pass plus structural invariants.

        Raises :class:`~repro.errors.StorageError` naming the first
        violation found.  This is the expensive one-pass-over-the-file
        check backing ``solap segment verify``; attach never runs it.
        """
        size = len(self._view)
        actual = fmt.payload_crc32(bytes(self._view[: size - fmt.FOOTER_SIZE]))
        if actual != self.crc32:
            raise StorageError(
                f"segment {self.path} checksum mismatch: footer says "
                f"{self.crc32:#010x}, payload hashes to {actual:#010x} — "
                "file corrupted"
            )
        schema = self.schema
        dims = set(self.dimensions())
        if dims != set(schema.dimensions):
            raise StorageError(
                f"segment {self.path} stores dimensions {sorted(dims)} but "
                f"its schema declares {sorted(schema.dimensions)}"
            )
        for attr in sorted(dims):
            values = self.dictionary(attr)
            column = self.codes(attr)
            if len(column) != self.n_events:
                raise StorageError(
                    f"segment {self.path} column {attr!r} has "
                    f"{len(column)} codes for {self.n_events} events"
                )
            limit = len(values)
            for code in column:
                if code >= limit:
                    raise StorageError(
                        f"segment {self.path} column {attr!r} holds code "
                        f"{code} outside its dictionary (size {limit})"
                    )
        for attr in self.measures():
            column = self.measure_column(attr)
            if len(column) != self.n_events:
                raise StorageError(
                    f"segment {self.path} measure {attr!r} has "
                    f"{len(column)} values for {self.n_events} events"
                )
        layout = self.layout()
        if layout is not None:
            offsets = layout.offsets
            if not len(offsets) or offsets[0] != 0:
                raise StorageError(
                    f"segment {self.path} layout offsets must start at 0"
                )
            previous = 0
            for value in offsets:
                if value < previous:
                    raise StorageError(
                        f"segment {self.path} layout offsets are not "
                        "monotonically non-decreasing"
                    )
                previous = value
            if previous != len(layout.rows):
                raise StorageError(
                    f"segment {self.path} layout offsets end at {previous}, "
                    f"rows section holds {len(layout.rows)}"
                )
            for row in layout.rows:
                if row >= self.n_events:
                    raise StorageError(
                        f"segment {self.path} layout references row {row} "
                        f"of {self.n_events} events"
                    )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Explicitly release every exported memoryview cast before the mmap
        # can be unmapped.  Dropping our cache references is not enough:
        # callers (StorageManager column caches, stored layouts) hold the
        # same view objects, and mmap.close() raises BufferError while any
        # export is alive.  release() severs those exports in place — stale
        # holders then get a clean ValueError instead of a dangling map.
        for cached in self._u32_cache.values():
            if isinstance(cached, memoryview):
                cached.release()
        self._u32_cache = {}
        self._view.release()
        self._mmap.close()
        self._file.close()

    def __enter__(self) -> "SegmentReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SegmentReader({self.path.name}, {self.n_events} events, "
            f"{len(self.sections)} sections)"
        )
