"""The segment store: a directory of segments behaving like a database.

:class:`StorageManager` owns a store directory — a ``MANIFEST.json``
naming an ordered list of immutable segment files — and exposes it to
the rest of the engine as :class:`SegmentBackedDatabase`, a read-only
:class:`~repro.events.database.EventDatabase` whose columns materialise
lazily from the mapped segments.  The pieces that make queries run
unchanged on top of it:

* **Zero-copy code rows.**  :class:`SegmentEncodedStore` subclasses
  :class:`~repro.events.encoding.EncodedSequenceStore` so the compiled
  matcher, the CB/II kernels and every executor backend see the exact
  interface they already use — but base-level code rows are gathered
  straight out of the mapped uint32 columns instead of being re-encoded
  from Python values, and domains arrive pre-closed from the on-disk
  dictionary tables (``ensure_domain_complete`` never scans events).

* **Attach by path.**  ``SegmentBackedDatabase.__reduce__`` pickles as
  ``attach_store(root)`` — a worker process receives a short path
  string, maps the shared pages in O(1), and never deserialises the
  event data.  The per-process memo keeps one manager per store, so a
  pool of tasks attaches once.

* **Append-only growth.**  :meth:`StorageManager.append_events` writes a
  *new* segment whose dictionary tables are seeded with the cumulative
  tables of its predecessors — a code means the same value in every
  segment, so columns concatenate without remapping.
  :meth:`StorageManager.compact` rewrites the set into one segment,
  restoring single-file zero-copy reads.

The manager also keeps its own attach telemetry (count, latency
histogram, bytes mapped) which :func:`register_storage_metrics` exposes
on a :class:`~repro.obs.metrics.MetricsRegistry` as the
``solap_storage_*`` family.
"""

from __future__ import annotations

import json
import os
import threading
import time
from array import array
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence as Seq, Tuple

from repro.errors import StorageError
from repro.events.database import EventDatabase
from repro.events.encoding import EncodedSequenceStore
from repro.events.sequence import (
    Sequence,
    SequenceGroup,
    SequenceGroupSet,
    build_sequence_groups,
)
from repro.io.events_io import schema_to_dict
from repro.obs.metrics import BucketHistogram, MetricsRegistry
from repro.obs.spans import span
from repro.storage import format as fmt
from repro.storage.segment import (
    SEGMENT_SUFFIX,
    SegmentLayout,
    SegmentReader,
    SegmentWriter,
)

MANIFEST_NAME = "MANIFEST.json"

#: an (attribute, level) CLUSTER BY / GROUP BY pair and a SEQUENCE BY key,
#: mirroring repro.events.sequence
AttrLevel = Tuple[str, str]
OrderKey = Tuple[str, bool]


def is_segment_store(path) -> bool:
    """Whether *path* is a segment-store directory (has a manifest)."""
    return (Path(path) / MANIFEST_NAME).is_file()


def _read_manifest(root: Path) -> dict:
    path = root / MANIFEST_NAME
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise StorageError(f"no segment store at {root}: {exc}") from exc
    try:
        data = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise StorageError(f"manifest {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or not isinstance(data.get("segments"), list):
        raise StorageError(f"manifest {path} is malformed")
    version = data.get("format_version")
    if version != fmt.FORMAT_VERSION:
        raise StorageError(
            f"manifest {path} has format version {version!r}; this reader "
            f"understands version {fmt.FORMAT_VERSION}"
        )
    if not data["segments"]:
        raise StorageError(f"manifest {path} lists no segments")
    return data


def _write_manifest(root: Path, names: Seq[str]) -> None:
    payload = json.dumps(
        {"format_version": fmt.FORMAT_VERSION, "segments": list(names)},
        indent=2,
    )
    # tmp + rename so a crash mid-write never leaves a torn manifest
    tmp = root / (MANIFEST_NAME + ".tmp")
    tmp.write_text(payload, encoding="utf-8")
    os.replace(tmp, root / MANIFEST_NAME)


def _segment_name(index: int) -> str:
    return f"segment-{index:06d}{SEGMENT_SUFFIX}"


def _segment_index(name: str) -> int:
    stem = name[: -len(SEGMENT_SUFFIX)]
    try:
        return int(stem.rsplit("-", 1)[1])
    except (IndexError, ValueError):
        return -1


def build_layout(
    db,
    cluster_by: Seq[AttrLevel],
    sequence_by: Seq[OrderKey],
    group_by: Seq[AttrLevel] = (),
) -> SegmentLayout:
    """Run the sequence pipeline and freeze the result as a stored layout.

    The layout records each sequence's row slice (offsets + flattened
    rows), its cluster key, and its group key, in sid order — enough for
    :meth:`SegmentBackedDatabase.stored_groups` to rebuild the
    :class:`SequenceGroupSet` without selecting, clustering or sorting.
    """
    groups = build_sequence_groups(db, None, cluster_by, sequence_by, group_by)
    sequences = sorted(groups.all_sequences(), key=lambda seq: seq.sid)
    group_key_by_sid: Dict[int, Tuple[object, ...]] = {}
    for group in groups:
        for sequence in group:
            group_key_by_sid[sequence.sid] = group.key
    rows = array("I")
    offsets = array("I", [0])
    cluster_keys: List[List[object]] = []
    group_keys: List[List[object]] = []
    for sequence in sequences:
        rows.extend(sequence.rows)
        offsets.append(len(rows))
        cluster_keys.append(list(sequence.cluster_key))
        group_keys.append(list(group_key_by_sid[sequence.sid]))
    meta = {
        "cluster_by": [[attr, level] for attr, level in cluster_by],
        "sequence_by": [[attr, bool(asc)] for attr, asc in sequence_by],
        "group_by": [[attr, level] for attr, level in group_by],
        "cluster_keys": cluster_keys,
        "group_keys": group_keys,
    }
    return SegmentLayout(meta, rows, offsets)


class _LazyColumns(dict):
    """Column map that decodes segment columns on first access.

    ``EventDatabase.column`` indexes ``_columns`` and converts
    ``KeyError`` to ``SchemaError``; ``__missing__`` keeps that contract
    by raising ``KeyError`` for attributes the schema does not declare.
    """

    def __init__(self, db: "SegmentBackedDatabase"):
        super().__init__()
        self._db = db

    def __missing__(self, attribute: str):
        column = self._db._materialise_column(attribute)  # raises KeyError
        self[attribute] = column
        return column


class SegmentEncodedStore(EncodedSequenceStore):
    """An encoding store whose base domains come from the segment files.

    Differences from the in-memory store, all invisible to callers:

    * base-level dictionaries are **seeded** from the on-disk tables at
      construction, so codes match the stored columns exactly;
    * base-level code rows are **gathered** from the mapped uint32
      columns (``codes[row]`` per event) instead of hashing Python
      values — the matcher's hot path never touches decoded objects;
    * ``ensure_domain_complete`` is O(|domain|): base domains are closed
      by construction (every stored code has a dictionary entry), and
      coarser levels close by mapping the dictionary's values, never by
      scanning events.
    """

    def __init__(self, manager: "StorageManager"):
        super().__init__()
        self._manager = manager
        schema = manager.schema
        for attribute in schema.dimensions:
            base_level = schema.hierarchy(attribute).base_level
            self.dictionary.seed(
                (attribute, base_level), manager.dictionary_values(attribute)
            )

    # the store is rebuilt from the segment files on attach, never pickled
    def __getstate__(self):  # pragma: no cover - guarded by __reduce__
        raise TypeError(
            "SegmentEncodedStore does not pickle; the owning database "
            "re-attaches by path"
        )

    def row(self, sequence, attribute: str, level: str):
        domain = (attribute, level)
        cache = sequence._code_cache
        row = cache.get(domain)
        if row is None:
            db = sequence.db
            base_level = db.schema.hierarchy(attribute).base_level
            if level == base_level:
                codes = self._manager.codes(attribute)
                row = array("I", map(codes.__getitem__, sequence.rows))
            else:
                base_row = self.row(sequence, attribute, base_level)
                level_map = self._level_map(db, attribute, base_level, level)
                row = array("I", map(level_map.__getitem__, base_row))
            cache[domain] = row
        return row

    def ensure_domain_complete(self, db, attribute: str, level: str) -> None:
        domain = (attribute, level)
        if domain in self._complete_domains:
            return
        base_level = db.schema.hierarchy(attribute).base_level
        if level != base_level:
            # Building the level map interns the mapped value of every
            # dictionary entry — and raises SchemaError on unmapped
            # values, exactly like the in-memory scan would.
            self._level_map(db, attribute, base_level, level)
        with self._lock:
            self._complete_domains.add(domain)


class SegmentBackedDatabase(EventDatabase):
    """A read-only :class:`EventDatabase` over a mapped segment store.

    Lazy everywhere: attaching maps the files and decodes nothing; a
    column materialises the first time something indexes it (predicates,
    the legacy matcher, sequence ordering), while the encoded hot path
    reads the uint32 columns directly and may never decode at all.

    Pickling is attach-by-path: workers receive the store's root and
    ``mmap`` the same pages instead of deserialising event data.
    """

    def __init__(self, manager: "StorageManager"):
        self.schema = manager.schema
        self._manager = manager
        self._columns = _LazyColumns(self)
        self._length = manager.n_events

    @property
    def storage(self) -> "StorageManager":
        """The managing :class:`StorageManager` (segment store handle)."""
        return self._manager

    def __reduce__(self):
        return (attach_store, (str(self._manager.root),))

    # -- read-only: growth goes through StorageManager.append_events -----
    def append(self, event) -> int:
        raise StorageError(
            "segment-backed databases are read-only; append events with "
            "StorageManager.append_events (writes a new segment)"
        )

    def extend(self, events) -> None:
        raise StorageError(
            "segment-backed databases are read-only; append events with "
            "StorageManager.append_events (writes a new segment)"
        )

    # ------------------------------------------------------------------
    def _materialise_column(self, attribute: str) -> List[object]:
        manager = self._manager
        if self.schema.is_dimension(attribute):
            decoder = manager.dictionary_values(attribute)
            return list(map(decoder.__getitem__, manager.codes(attribute)))
        if attribute in self.schema.measures:
            return manager.measure_column(attribute)
        raise KeyError(attribute)

    def distinct(
        self, attribute: str, level: Optional[str] = None
    ) -> Tuple[object, ...]:
        """Sorted distinct values — read from the dictionary, not the data.

        Store-level dictionaries hold exactly the values witnessed by
        stored events (appends seed cumulatively, compaction re-interns
        from live data), so this matches the in-memory scan in
        O(|domain|) instead of O(events).
        """
        if self.schema.is_dimension(attribute):
            hierarchy = self.schema.hierarchy(attribute)
            values = set(self._manager.dictionary_values(attribute))
            if level is not None and level != hierarchy.base_level:
                values = {hierarchy.map_value(value, level) for value in values}
            return tuple(sorted(values, key=repr))
        return super().distinct(attribute, level)

    def encoding_store(self):
        store = getattr(self, "_encoding", None)
        if store is None:
            store = SegmentEncodedStore(self._manager)
            self._encoding = store
        return store

    # ------------------------------------------------------------------
    def stored_groups(
        self,
        where,
        cluster_by: Seq[AttrLevel],
        sequence_by: Seq[OrderKey],
        group_by: Seq[AttrLevel] = (),
    ) -> Optional[SequenceGroupSet]:
        """The stored sequence layout as a group set, if it answers the spec.

        Returns ``None`` (caller falls back to the live pipeline) unless
        the store has a single segment carrying a layout whose pipeline
        spec matches exactly and the query has no WHERE predicate.  Sids
        and ordering reproduce :func:`build_sequence_groups` bit for bit:
        the layout was frozen from that very pipeline in sid order.
        """
        if where is not None:
            return None
        layout = self._manager.stored_layout()
        if layout is None:
            return None
        meta = layout.meta
        if (
            meta.get("cluster_by") != [[a, lv] for a, lv in cluster_by]
            or meta.get("sequence_by")
            != [[a, bool(asc)] for a, asc in sequence_by]
            or meta.get("group_by") != [[a, lv] for a, lv in group_by]
        ):
            return None
        cluster_keys = meta["cluster_keys"]
        sequences = [
            Sequence(
                index,
                self,
                tuple(layout.sequence_rows(index)),
                cluster_key=tuple(cluster_keys[index]),
            )
            for index in range(layout.n_sequences)
        ]
        grouped: Dict[Tuple[object, ...], List[Sequence]] = {}
        for sequence, key in zip(sequences, meta["group_keys"]):
            grouped.setdefault(tuple(key), []).append(sequence)
        return SequenceGroupSet(
            global_dims=tuple((a, lv) for a, lv in group_by),
            groups={
                key: SequenceGroup(key, members)
                for key, members in grouped.items()
            },
        )

    def __repr__(self) -> str:
        return (
            f"SegmentBackedDatabase({self._length} events, "
            f"{self._manager.segments_open} segments at "
            f"{self._manager.root})"
        )


class StorageManager:
    """Owner of one segment-store directory.

    Thread-safe for the operations the service layer performs
    concurrently (attach, metric reads); writes (append, compact) take
    the manager lock and are expected to be single-writer, matching the
    daily-append maintenance model of the paper's §6.
    """

    def __init__(self, root):
        self.root = Path(root)
        self._lock = threading.Lock()
        self._segments: List[SegmentReader] = []
        self._names: List[str] = []
        self._db: Optional[SegmentBackedDatabase] = None
        self._codes_cache: Dict[str, object] = {}
        #: attach telemetry, exposed via register_storage_metrics
        self.attach_count = 0
        #: latency of this manager's last attach(), read by traced workers
        #: to report attach cost that predates their task tracer
        self.last_attach_seconds = 0.0
        self.attach_hist = BucketHistogram()
        self._extra_hists: List[object] = []
        start = time.monotonic()
        manifest = _read_manifest(self.root)
        for name in manifest["segments"]:
            self._open_segment(name)
        self._open_seconds = time.monotonic() - start
        self.schema = self._segments[-1].schema

    @classmethod
    def open(cls, root) -> "StorageManager":
        return cls(root)

    @classmethod
    def write(
        cls,
        db,
        root,
        cluster_by: Seq[AttrLevel] = (),
        sequence_by: Seq[OrderKey] = (),
        group_by: Seq[AttrLevel] = (),
    ) -> "StorageManager":
        """Materialise *db* as a fresh single-segment store at *root*.

        Pass *cluster_by*/*sequence_by* (and optionally *group_by*) to
        also freeze the sequence pipeline's result into the segment, so
        matching queries skip sequence formation entirely.
        """
        root = Path(root)
        if is_segment_store(root):
            raise StorageError(
                f"{root} already holds a segment store; attach and append, "
                "or choose an empty directory"
            )
        root.mkdir(parents=True, exist_ok=True)
        with span("storage.write") as sp:
            writer = SegmentWriter(db.schema)
            writer.add_database(db)
            layout = None
            if cluster_by and sequence_by:
                layout = build_layout(db, cluster_by, sequence_by, group_by)
            name = _segment_name(0)
            writer.write(root / name, layout)
            _write_manifest(root, [name])
            sp.set("events", writer.n_events)
            sp.set("segments", 1)
        return cls(root)

    @classmethod
    def create(cls, schema, root) -> "StorageManager":
        """An empty store (one zero-event segment) ready for appends."""
        return cls.write(EventDatabase(schema), root)

    # ------------------------------------------------------------------
    def _open_segment(self, name: str) -> SegmentReader:
        reader = SegmentReader(self.root / name)
        self._segments.append(reader)
        self._names.append(name)
        return reader

    @property
    def segments_open(self) -> int:
        return len(self._segments)

    @property
    def segment_names(self) -> Tuple[str, ...]:
        return tuple(self._names)

    @property
    def n_events(self) -> int:
        return sum(segment.n_events for segment in self._segments)

    @property
    def bytes_mapped(self) -> int:
        return sum(segment.bytes_mapped for segment in self._segments)

    def dictionary_values(self, attribute: str) -> List[object]:
        """The cumulative code → value table (the newest segment's copy).

        Appended segments seed their dictionaries with every predecessor
        value, so the last segment's table decodes the whole store.
        """
        return self._segments[-1].dictionary(attribute)

    def codes(self, attribute: str):
        """The store-wide uint32 code column for one dimension.

        A single-segment store returns the zero-copy mapped view; a
        multi-segment store concatenates into a process-local
        ``array('I')`` once and caches it (compaction restores the
        zero-copy read).
        """
        cached = self._codes_cache.get(attribute)
        if cached is None:
            if len(self._segments) == 1:
                cached = self._segments[0].codes(attribute)
            else:
                combined = array("I")
                for segment in self._segments:
                    combined.extend(segment.codes(attribute))
                cached = combined
            self._codes_cache[attribute] = cached
        return cached

    def measure_column(self, attribute: str) -> List[object]:
        column: List[object] = []
        for segment in self._segments:
            column.extend(segment.measure_column(attribute))
        return column

    def stored_layout(self) -> Optional[SegmentLayout]:
        """The stored pipeline layout — only valid for single-segment
        stores (appended events are not in an old layout)."""
        if len(self._segments) != 1:
            return None
        return self._segments[0].layout()

    # ------------------------------------------------------------------
    def attach(self) -> SegmentBackedDatabase:
        """The (cached) database view of this store.

        The first attach is the one that pays: manifest read + per-file
        ``mmap`` (already done in the constructor, included in the
        recorded latency) plus construction of the lazy views.
        """
        with self._lock:
            if self._db is None:
                start = time.monotonic()
                with span("storage.attach") as sp:
                    self._db = SegmentBackedDatabase(self)
                    sp.set("segments", self.segments_open)
                    sp.set("events", self._db._length)
                    sp.set("bytes_mapped", self.bytes_mapped)
                elapsed = self._open_seconds + (time.monotonic() - start)
                self._open_seconds = 0.0
                self.attach_count += 1
                self.last_attach_seconds = elapsed
                self._observe_attach(elapsed)
            return self._db

    def _observe_attach(self, seconds: float) -> None:
        self.attach_hist.observe(seconds)
        for hist in self._extra_hists:
            hist.observe(seconds)

    # ------------------------------------------------------------------
    def append_events(self, events: Iterable[Mapping[str, object]]) -> int:
        """Write *events* as a new segment; returns the number appended.

        The new segment's dictionaries are seeded with the cumulative
        tables, keeping codes store-consistent.  The attached database
        and caches are invalidated — callers re-attach to see the data.
        """
        with self._lock, span("storage.write") as sp:
            writer = SegmentWriter(
                self.schema,
                dictionaries={
                    attr: self.dictionary_values(attr)
                    for attr in self.schema.dimensions
                },
            )
            count = writer.add_events(events)
            next_index = max(_segment_index(n) for n in self._names) + 1
            name = _segment_name(next_index)
            path = writer.write(self.root / name)
            reader = SegmentReader(path)
            self._segments.append(reader)
            self._names.append(name)
            _write_manifest(self.root, self._names)
            self._invalidate()
            sp.set("events", count)
            sp.set("segments", len(self._segments))
        return count

    def compact(
        self,
        cluster_by: Seq[AttrLevel] = (),
        sequence_by: Seq[OrderKey] = (),
        group_by: Seq[AttrLevel] = (),
    ) -> int:
        """Rewrite all segments into one; returns the segment count folded.

        Restores single-file zero-copy column reads after a run of
        appends.  Pass a pipeline spec to freeze a fresh layout into the
        compacted segment; with no spec, the spec of the first segment's
        stored layout (if any) carries over, rebuilt to cover the
        appended events.  Old files are deleted only after the new
        manifest is durably in place.
        """
        with self._lock:
            folded = len(self._segments)
            if folded == 1 and not (cluster_by and sequence_by):
                return folded
            if not (cluster_by and sequence_by):
                old_layout = self._segments[0].layout()
                if old_layout is not None:
                    meta = old_layout.meta
                    cluster_by = tuple(
                        (a, lv) for a, lv in meta.get("cluster_by", ())
                    )
                    sequence_by = tuple(
                        (a, bool(asc))
                        for a, asc in meta.get("sequence_by", ())
                    )
                    group_by = tuple(
                        (a, lv) for a, lv in meta.get("group_by", ())
                    )
            db = self._db or SegmentBackedDatabase(self)
            with span("storage.write") as sp:
                writer = SegmentWriter(self.schema)
                writer.add_database(db)
                layout = None
                if cluster_by and sequence_by:
                    layout = build_layout(db, cluster_by, sequence_by, group_by)
                next_index = max(_segment_index(n) for n in self._names) + 1
                name = _segment_name(next_index)
                writer.write(self.root / name, layout)
                old_names = list(self._names)
                _write_manifest(self.root, [name])
                for segment in self._segments:
                    segment.close()
                self._segments = []
                self._names = []
                self._open_segment(name)
                for old in old_names:
                    try:
                        (self.root / old).unlink()
                    except OSError:
                        pass  # stale file; manifest no longer references it
                self._invalidate()
                sp.set("events", writer.n_events)
                sp.set("segments", 1)
            return folded

    def _invalidate(self) -> None:
        self._db = None
        self._codes_cache = {}

    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Full store check: every segment plus the cross-segment rules.

        Raises :class:`~repro.errors.StorageError` on the first
        violation: a failed per-segment CRC/structure check, diverging
        schemas, or a dictionary that is not a prefix of its successor's
        (the append-only guarantee that makes codes store-consistent).
        """
        reference = None
        for segment in self._segments:
            segment.verify()
            described = schema_to_dict(segment.schema)
            if reference is None:
                reference = described
            elif described != reference:
                raise StorageError(
                    f"segment {segment.path} schema diverges from the "
                    "store's first segment"
                )
        for earlier, later in zip(self._segments, self._segments[1:]):
            for attribute in self.schema.dimensions:
                prefix = earlier.dictionary(attribute)
                full = later.dictionary(attribute)
                if full[: len(prefix)] != prefix:
                    raise StorageError(
                        f"dictionary for {attribute!r} in {later.path} does "
                        f"not extend {earlier.path}'s — codes would decode "
                        "differently across segments"
                    )

    def close(self) -> None:
        with self._lock:
            for segment in self._segments:
                segment.close()
            self._invalidate()

    def __repr__(self) -> str:
        return (
            f"StorageManager({self.root}, {self.segments_open} segments, "
            f"{self.n_events} events)"
        )


# --------------------------------------------------------------------------
# Attach-by-path (the pickle target of SegmentBackedDatabase)
# --------------------------------------------------------------------------

_ATTACH_MEMO: Dict[str, Tuple[Tuple[str, ...], StorageManager]] = {}
_ATTACH_LOCK = threading.Lock()


def attach_store(root) -> SegmentBackedDatabase:
    """Attach the segment store at *root*, memoised per process.

    This is what a spawn/fork worker executes when a
    :class:`SegmentBackedDatabase` "arrives" in a task: map the store's
    pages and share one manager across every task in the process.  The
    memo key includes the manifest's segment list, so an append (which
    changes the manifest) transparently re-attaches.
    """
    key = os.path.realpath(str(root))
    names = tuple(_read_manifest(Path(key))["segments"])
    with _ATTACH_LOCK:
        entry = _ATTACH_MEMO.get(key)
        if entry is None or entry[0] != names:
            entry = (names, StorageManager(key))
            _ATTACH_MEMO[key] = entry
        manager = entry[1]
    return manager.attach()


def register_storage_metrics(
    registry: MetricsRegistry, manager: StorageManager
) -> None:
    """Expose a manager's storage telemetry as ``solap_storage_*`` metrics.

    Gauges are pull-based (evaluated at scrape time); the attach
    histogram merges what the manager already observed and receives
    future observations directly.
    """
    registry.gauge(
        "solap_storage_segments_open",
        "Segment files currently mapped by the store",
    ).set_function(lambda: manager.segments_open)
    registry.gauge(
        "solap_storage_bytes_mapped",
        "Total bytes of segment files currently mapped",
    ).set_function(lambda: manager.bytes_mapped)
    registry.counter(
        "solap_storage_attaches_total",
        "Store attachments performed by this process",
    ).attach_callback(lambda: manager.attach_count)
    hist = registry.histogram(
        "solap_storage_attach_seconds",
        "Latency of attaching the segment store (mmap + lazy view setup)",
    ).labels()
    hist.merge(manager.attach_hist)
    manager._extra_hists.append(hist)
