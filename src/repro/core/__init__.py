"""Core S-OLAP machinery: specs, matching, strategies, engine, lattice."""

from repro.core.counter_based import counter_based_cuboid
from repro.core.cube import (
    SCube,
    detail_summarization_counterexample,
    spec_coarser_or_equal,
)
from repro.core.cuboid import SCuboid
from repro.core.engine import SOLAPEngine
from repro.core.explain import QueryPlan, explain
from repro.core.inverted_index import (
    inverted_index_cuboid,
    precompute_indices,
    rollup_by_merge_is_valid,
)
from repro.core.matcher import TemplateMatcher
from repro.core.repository import CuboidRepository
from repro.core.session import Session
from repro.core.spec import (
    AggregateScope,
    AggregateSpec,
    COUNT_ALL,
    CellRestriction,
    CuboidSpec,
    MatchingPredicate,
    PatternKind,
    PatternSymbol,
    PatternTemplate,
)
from repro.core.stats import QueryStats

__all__ = [
    "AggregateScope",
    "AggregateSpec",
    "COUNT_ALL",
    "CellRestriction",
    "CuboidRepository",
    "CuboidSpec",
    "MatchingPredicate",
    "PatternKind",
    "PatternSymbol",
    "PatternTemplate",
    "QueryPlan",
    "QueryStats",
    "SCube",
    "SCuboid",
    "SOLAPEngine",
    "Session",
    "TemplateMatcher",
    "counter_based_cuboid",
    "detail_summarization_counterexample",
    "explain",
    "inverted_index_cuboid",
    "precompute_indices",
    "rollup_by_merge_is_valid",
    "spec_coarser_or_equal",
]
