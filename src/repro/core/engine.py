"""The S-OLAP engine (architecture of Figure 6).

The engine owns the event database plus the three auxiliary stores —
sequence cache, cuboid repository, inverted-index registry — and answers
:class:`~repro.core.spec.CuboidSpec` queries with either construction
strategy:

* ``"cb"`` — counter-based full scan (Section 4.2.1),
* ``"ii"`` — inverted-index join/merge/refine (Section 4.2.2),
* ``"auto"`` — II when any useful index exists for the template's group
  set, CB otherwise (a first-cut of the query optimiser the paper leaves
  as future work).

Every execution returns ``(SCuboid, QueryStats)``; stats carry wall time,
sequences scanned and index bytes built — the quantities the paper reports.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Tuple

from repro.core.counter_based import counter_based_cuboid
from repro.core.cuboid import SCuboid
from repro.core.inverted_index import inverted_index_cuboid, precompute_indices
from repro.core.repository import CuboidRepository
from repro.core.spec import CuboidSpec, PatternTemplate
from repro.core.stats import QueryStats
from repro.errors import EngineError
from repro.events.cache import SequenceCache
from repro.events.database import EventDatabase
from repro.events.sequence import SequenceGroupSet, build_sequence_groups
from repro.index.registry import IndexRegistry
from repro.obs.spans import Tracer, span, tracing_active

STRATEGIES = ("auto", "cb", "ii", "cost")


class RegistryView:
    """Read-only aggregate over the engine's per-pipeline index registries.

    Indices are only valid for the sequence-formation pipeline they were
    built over (a WHERE clause changes which sequences exist, clustering
    changes what a sequence *is*), so the engine keeps one
    :class:`IndexRegistry` per pipeline key.  This view exists for
    introspection and maintenance across all of them; index lookups that
    matter for correctness go through :meth:`SOLAPEngine.registry_for`.
    """

    def __init__(self, registries: dict):
        self._registries = registries

    def __len__(self) -> int:
        return sum(len(registry) for registry in self._registries.values())

    def __iter__(self):
        for registry in self._registries.values():
            yield from registry

    def total_bytes(self) -> int:
        return sum(r.total_bytes() for r in self._registries.values())

    def clear(self) -> None:
        self._registries.clear()

    def evict_to_budget(self, byte_budget: int) -> Tuple[int, int]:
        """LRU-evict indices across every pipeline until bytes fit the budget.

        Index ticks are process-wide (see :class:`IndexRegistry`), so the
        coldest index overall goes first regardless of which pipeline owns
        it.  Returns ``(indices_dropped, bytes_freed)``.
        """
        over = self.total_bytes() - byte_budget
        if over <= 0:
            return 0, 0
        entries = []
        for registry in self._registries.values():
            for tick, group_key, signature, size in registry.lru_entries():
                entries.append((tick, registry, group_key, signature, size))
        entries.sort(key=lambda entry: entry[0])
        dropped = 0
        freed = 0
        for __, registry, group_key, signature, size in entries:
            if over <= 0:
                break
            if registry.drop(group_key, signature):
                registry.evictions += 1
                dropped += 1
                freed += size
                over -= size
        return dropped, freed

    def find(self, group_key, template, schema):
        """First hit across pipelines (introspection only)."""
        for registry in self._registries.values():
            hit = registry.find(group_key, template, schema)
            if hit is not None:
                return hit
        return None

    def get_exact(self, group_key, template):
        for registry in self._registries.values():
            hit = registry.get_exact(group_key, template)
            if hit is not None:
                return hit
        return None

    def longest_prefix(self, group_key, template, schema):
        best = None
        for registry in self._registries.values():
            hit = registry.longest_prefix(group_key, template, schema)
            if hit is not None and (best is None or hit[0] > best[0]):
                best = hit
        return best

    def indices_for_group(self, group_key):
        out = []
        for registry in self._registries.values():
            out.extend(registry.indices_for_group(group_key))
        return out

    def __repr__(self) -> str:
        return (
            f"RegistryView({len(self)} indices over "
            f"{len(self._registries)} pipelines)"
        )


class SOLAPEngine:
    """Query engine over one event database."""

    def __init__(
        self,
        db: EventDatabase,
        sequence_cache_size: int = 16,
        repository_size: int = 64,
        use_repository: bool = True,
        repository_policy: str = "benefit",
        semantic_cache: bool = True,
    ):
        self.db = db
        self.sequence_cache = SequenceCache(sequence_cache_size)
        self.repository = CuboidRepository(repository_size, policy=repository_policy)
        #: consult the semantic cache (derive answers from cached cuboids)
        #: on exact-key misses; requires use_repository
        self.semantic_cache = semantic_cache
        #: per-op semantic-cache telemetry, exported as the
        #: solap_cuboid_semantic_{hits,derivations,rejects}_total families
        self.semantic_hits: dict = {}
        self.semantic_derivations: dict = {}
        self.semantic_rejects: dict = {}
        self._planner = None
        #: one IndexRegistry per pipeline key — indices built over one
        #: sequence formation must never serve another (different WHERE /
        #: CLUSTER BY produce different sequences under the same group key)
        self._registries: dict = {}
        self.use_repository = use_repository
        self.queries_executed = 0
        #: cumulative query telemetry (one cheap add per query, never
        #: per-row) — exported by obs.metrics.register_engine_metrics
        self.strategy_counts: dict = {}
        self.sequences_scanned_total = 0
        self.rows_aggregated_total = 0
        #: index evictions carried over from dropped pipeline registries
        self._index_evictions_carried = 0
        self._profiles: dict = {}
        #: optional sharded-scan hook installed by the service layer: a
        #: callable ``(db, groups, spec, stats) -> Optional[SCuboid]`` that
        #: may decline (return None) when parallelism is not worthwhile
        self.cb_scanner: Optional[
            Callable[[EventDatabase, SequenceGroupSet, CuboidSpec, QueryStats],
                     Optional[SCuboid]]
        ] = None
        #: optional scatter-gather hook (``repro.shard``) installed by the
        #: service layer: ``(db, groups, spec, stats, strategy) ->
        #: Optional[SCuboid]``.  Consulted before the single-shard CB/II
        #: paths (never for iceberg/min_support queries); a None return
        #: means "declined — run single-shard".
        self.scatter_gather: Optional[
            Callable[
                [EventDatabase, SequenceGroupSet, CuboidSpec, QueryStats, str],
                Optional[SCuboid],
            ]
        ] = None

    @property
    def registry(self) -> RegistryView:
        """Aggregate, read-only view over all per-pipeline registries."""
        return RegistryView(self._registries)

    def registry_for(self, spec: CuboidSpec) -> IndexRegistry:
        """The index registry of *spec*'s sequence-formation pipeline."""
        key = spec.pipeline_key()
        registry = self._registries.get(key)
        if registry is None:
            registry = IndexRegistry()
            self._registries[key] = registry
        return registry

    # ------------------------------------------------------------------
    # Pipeline steps 1-4, cached
    # ------------------------------------------------------------------
    def sequence_groups(
        self, spec: CuboidSpec, stats: Optional[QueryStats] = None
    ) -> SequenceGroupSet:
        """Sequence groups for a spec, served from the sequence cache."""
        key = spec.pipeline_key()
        groups = self.sequence_cache.get(key)
        if groups is not None:
            if stats is not None:
                stats.sequence_cache_hit = True
            return groups
        groups = build_sequence_groups(
            self.db, spec.where, spec.cluster_by, spec.sequence_by, spec.group_by
        )
        self.sequence_cache.put(key, groups)
        return groups

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        spec: CuboidSpec,
        strategy: str = "auto",
        deadline: Optional[object] = None,
        analyze: bool = False,
    ) -> Tuple[SCuboid, QueryStats]:
        """Answer one S-cuboid query.

        Checks the cuboid repository first (Figure 6's flow); on a miss,
        builds the cuboid with the selected strategy and stores it.
        *deadline* (any object with a ``check()`` raising on expiry, e.g.
        :class:`repro.service.deadline.Deadline`) is threaded through the
        strategies' hot loops for cooperative cancellation.

        With ``analyze=True`` the query runs under a tracing span tree
        (EXPLAIN ANALYZE): the returned stats carry ``stats.trace`` (the
        root :class:`~repro.obs.spans.Span`) and ``stats.plan`` (an
        annotated :class:`~repro.core.explain.QueryPlan` with per-stage
        wall times, row flow, cache outcomes and the strategy chosen
        next to the cost model's prediction).
        """
        if not analyze:
            return self._execute(spec, strategy, deadline)
        from repro.obs.analyze import explain_analyze

        if tracing_active():
            # Join the caller's trace (e.g. ``solap trace`` wrapping the
            # whole service call) instead of starting a nested one.
            with span("query") as root:
                cuboid, stats = self._execute(spec, strategy, deadline)
        else:
            with Tracer("query") as tracer:
                cuboid, stats = self._execute(spec, strategy, deadline)
            root = tracer.root
        stats.trace = root
        stats.plan = explain_analyze(self, spec, stats, root)
        return cuboid, stats

    def _execute(
        self,
        spec: CuboidSpec,
        strategy: str,
        deadline: Optional[object] = None,
    ) -> Tuple[SCuboid, QueryStats]:
        if strategy not in STRATEGIES:
            raise EngineError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        spec.validate(self.db.schema)
        stats = QueryStats(deadline=deadline)
        start = time.perf_counter()
        self.queries_executed += 1

        cache_key = spec.cache_key()
        if self.use_repository:
            cached = self.repository.get(cache_key)
            if cached is not None:
                stats.strategy = "cache"
                stats.cuboid_cache_hit = True
                stats.extra["cache_answer"] = "exact"
                stats.runtime_seconds = time.perf_counter() - start
                self._count_query(stats, cached)
                return cached, stats
            derived = self._try_derive(spec, cache_key, stats)
            if derived is not None:
                stats.runtime_seconds = time.perf_counter() - start
                self._count_query(stats, derived)
                return derived, stats
        stats.extra["cache_answer"] = "miss"

        groups = self.sequence_groups(spec, stats)
        stats.checkpoint()  # sequence formation can itself be slow
        if strategy == "auto":
            strategy = self._choose_strategy(spec, groups)
        elif strategy == "cost":
            strategy = self._choose_by_cost(spec, groups, stats)
        stats.strategy = strategy.upper()

        with span("aggregation", strategy=stats.strategy) as agg_span:
            if spec.min_support is not None:
                # Iceberg query (HAVING COUNT(*) >= n): route to the iceberg
                # implementations; the II variant prunes sub-threshold lists
                # between join steps but cannot bound ALL-MATCHED counts.
                from repro.core.spec import CellRestriction
                from repro.extensions.iceberg import (
                    iceberg_counter_based,
                    iceberg_inverted_index,
                )

                if (
                    strategy == "cb"
                    or spec.restriction is CellRestriction.ALL_MATCHED
                ):
                    cuboid = iceberg_counter_based(
                        self.db, groups, spec, spec.min_support, stats
                    )
                else:
                    cuboid = iceberg_inverted_index(
                        self.db, groups, spec, spec.min_support, stats
                    )
            elif strategy == "cb":
                cuboid = None
                if self.scatter_gather is not None:
                    cuboid = self.scatter_gather(
                        self.db, groups, spec, stats, "cb"
                    )
                if cuboid is None and self.cb_scanner is not None:
                    cuboid = self.cb_scanner(self.db, groups, spec, stats)
                if cuboid is None:
                    cuboid = counter_based_cuboid(self.db, groups, spec, stats)
            else:
                cuboid = None
                if self.scatter_gather is not None:
                    cuboid = self.scatter_gather(
                        self.db, groups, spec, stats, "ii"
                    )
                if cuboid is None:
                    cuboid = inverted_index_cuboid(
                        self.db, groups, spec, self.registry_for(spec), stats
                    )
            agg_span.set("sequences_scanned", stats.sequences_scanned)
            agg_span.set("cells_out", len(cuboid))

        if self.use_repository:
            self.repository.put(
                cache_key, cuboid, cost_seconds=time.perf_counter() - start
            )
        stats.runtime_seconds = time.perf_counter() - start
        self._count_query(stats, cuboid)
        return cuboid, stats

    # ------------------------------------------------------------------
    # Semantic cache (derive from cached cuboids on exact-key miss)
    # ------------------------------------------------------------------
    def _derivation_planner(self):
        if self._planner is None:
            from repro.optimizer.semantic_cache import DerivationPlanner

            self._planner = DerivationPlanner(self.db.schema)
        return self._planner

    def _try_derive(
        self, spec: CuboidSpec, cache_key, stats: QueryStats
    ) -> Optional[SCuboid]:
        """Answer *spec* by transforming a cached cuboid, if soundly possible.

        On success the derived cuboid is stored back under the query's own
        cache key (a later verbatim repeat is then an exact hit) and the
        query is accounted under the ``derived`` strategy with zero scan /
        aggregation work — derivation only touches cached cells.
        """
        if not self.semantic_cache or not len(self.repository):
            return None
        with span("cuboid.derive") as derive_span:
            result = self._derivation_planner().plan(spec, self.repository)
            for op, n in result.rejects.items():
                self.semantic_rejects[op] = self.semantic_rejects.get(op, 0) + n
            plan = result.plan
            if plan is None:
                derive_span.set("outcome", "miss")
                return None
            source = self.repository.get(plan.source_key)
            if source is None:  # pragma: no cover — concurrent eviction race
                derive_span.set("outcome", "miss")
                return None
            try:
                from repro.optimizer.semantic_cache import execute_chain

                derived = execute_chain(source, plan.chain, spec, self.db.schema)
            except Exception:
                self.semantic_rejects["error"] = (
                    self.semantic_rejects.get("error", 0) + 1
                )
                derive_span.set("outcome", "error")
                return None
            chain_ops = [step.op for step in plan.chain]
            for op in dict.fromkeys(chain_ops):
                self.semantic_hits[op] = self.semantic_hits.get(op, 0) + 1
            for op in chain_ops:
                self.semantic_derivations[op] = (
                    self.semantic_derivations.get(op, 0) + 1
                )
            stats.strategy = "derived"
            stats.extra["cache_answer"] = "derived:" + plan.op_chain
            stats.extra["derivation_chain"] = plan.describe()
            derive_span.set("outcome", "derived")
            derive_span.set("chain", plan.op_chain)
            derive_span.set("cells_out", len(derived))
            self.repository.put(
                cache_key, derived, cost_seconds=plan.derive_cost_seconds
            )
            return derived

    def _count_query(self, stats: QueryStats, cuboid: SCuboid) -> None:
        """Fold one finished query into the engine's cumulative telemetry."""
        label = (stats.strategy or "?").lower()
        self.strategy_counts[label] = self.strategy_counts.get(label, 0) + 1
        self.sequences_scanned_total += stats.sequences_scanned
        if not stats.cuboid_cache_hit and label != "derived":
            self.rows_aggregated_total += len(cuboid)

    def _choose_strategy(self, spec: CuboidSpec, groups: SequenceGroupSet) -> str:
        """First-cut optimiser: II when prior index work can be reused."""
        registry = self.registry_for(spec)
        for group in groups:
            hit = registry.longest_prefix(
                group.key, spec.template, self.db.schema
            )
            if hit is not None:
                return "ii"
        return "cb"

    def _choose_by_cost(
        self,
        spec: CuboidSpec,
        groups: SequenceGroupSet,
        stats: QueryStats,
    ) -> str:
        """Cost-model-based choice (the §4.2.2 optimisation problem).

        Profiles are cached per pipeline key so repeated queries over the
        same sequence formation pay the profiling pass only once.
        """
        from repro.optimizer.cost_model import CostModel, profile_groups

        key = spec.pipeline_key()
        profile = self._profiles.get(key)
        if profile is None:
            domains = tuple(
                (symbol.attribute, symbol.level)
                for symbol in spec.template.symbols
            )
            profile = profile_groups(self.db, groups, domains)
            self._profiles[key] = profile
        model = CostModel(profile)
        group_key = next(iter(groups)).key if len(groups) else ()
        choice, cb, ii = model.choose(
            spec, self.registry_for(spec), group_key, self.db.schema
        )
        stats.extra["cost_cb"] = cb.scan_equivalents
        stats.extra["cost_ii"] = ii.scan_equivalents
        return choice

    # ------------------------------------------------------------------
    # Offline precomputation (experiment setup)
    # ------------------------------------------------------------------
    def precompute(
        self, spec: CuboidSpec, templates: List[PatternTemplate]
    ) -> QueryStats:
        """Build base indices for *templates* over the spec's sequence groups.

        Mirrors the experiments' setup step ("three size-two inverted
        indices at the finest level of abstraction were precomputed").
        """
        groups = self.sequence_groups(spec)
        return precompute_indices(
            groups, templates, self.db.schema, self.registry_for(spec)
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def invalidate_caches(self) -> None:
        """Drop every cache (after base-data mutation)."""
        self.sequence_cache.clear()
        self.repository.clear()
        self.registry.clear()
        self._profiles.clear()

    def drop_pipeline(self, pipeline_key) -> int:
        """Release everything owned by one sequence-formation pipeline.

        Used by the service layer when the last session over a pipeline is
        evicted: the cached sequence groups, the pipeline's index registry
        and its cost-model profile all become unreachable work.  Returns
        the number of indices dropped.
        """
        self.sequence_cache.invalidate(pipeline_key)
        self._profiles.pop(pipeline_key, None)
        registry = self._registries.pop(pipeline_key, None)
        if registry is None:
            return 0
        self._index_evictions_carried += registry.evictions
        return len(registry)

    @property
    def index_evictions_total(self) -> int:
        """Budget evictions across live and already-dropped registries."""
        return self._index_evictions_carried + sum(
            registry.evictions for registry in self._registries.values()
        )

    def cache_stats(self) -> dict:
        """One snapshot of every cache/registry counter the engine keeps."""
        return {
            "sequence_cache": self.sequence_cache.stats(),
            "repository": {
                "entries": len(self.repository),
                "capacity": self.repository.capacity,
                "bytes": self.repository.bytes_used,
                "hits": self.repository.hits,
                "misses": self.repository.misses,
                "evictions": self.repository.evictions,
                "policy": self.repository.policy,
            },
            "semantic_cache": {
                "enabled": self.semantic_cache and self.use_repository,
                "hits": dict(self.semantic_hits),
                "derivations": dict(self.semantic_derivations),
                "rejects": dict(self.semantic_rejects),
                "hits_total": sum(self.semantic_hits.values()),
                "derivations_total": sum(self.semantic_derivations.values()),
                "rejects_total": sum(self.semantic_rejects.values()),
            },
            "index_registry": {
                "indices": len(self.registry),
                "pipelines": len(self._registries),
                "bytes": self.registry.total_bytes(),
                "evictions": self.index_evictions_total,
            },
            "queries_executed": self.queries_executed,
            "queries_by_strategy": dict(self.strategy_counts),
            "sequences_scanned_total": self.sequences_scanned_total,
            "rows_aggregated_total": self.rows_aggregated_total,
        }

    def __repr__(self) -> str:
        return (
            f"SOLAPEngine({len(self.db)} events, {self.queries_executed} queries, "
            f"{len(self.registry)} indices)"
        )
