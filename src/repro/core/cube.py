"""The sequence data cube (S-cube) lattice (Section 3.4).

An S-cube is the lattice of S-cuboids reachable by varying global/pattern
dimensions and their abstraction levels.  Two properties distinguish it from
a classical data cube, and both are expressed executably here:

* **Infinity** — APPEND/PREPEND can grow the pattern template without bound,
  so the full lattice is infinite; :class:`SCube` therefore materialises a
  *bounded* fragment (up to a maximum template length) and
  :func:`iter_templates` exposes the unbounded generator.
* **Non-summarizability** — a coarser S-cuboid cannot generally be computed
  from finer ones because a sequence may fall into several cells;
  :func:`detail_summarization_counterexample` reproduces the paper's s3
  example where DE-TAIL aggregation gives c4 = 2 instead of the true 1.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence as Seq, Tuple

import networkx as nx

from repro.core.spec import CuboidSpec, PatternKind, PatternTemplate
from repro.events.schema import Schema

AttrLevel = Tuple[str, str]


# --------------------------------------------------------------------------
# Partial order
# --------------------------------------------------------------------------


def _levels_coarser_or_equal(
    schema: Schema, attribute: str, level_a: str, level_b: str
) -> bool:
    hierarchy = schema.hierarchy(attribute)
    return hierarchy.level_index(level_a) >= hierarchy.level_index(level_b)


def global_dims_coarser_or_equal(
    schema: Schema,
    dims_a: Seq[AttrLevel],
    dims_b: Seq[AttrLevel],
) -> bool:
    """A's global dims are an (order-preserving) coarsening of a subset of B's."""
    by_attr_b = {attr: level for attr, level in dims_b}
    for attr, level_a in dims_a:
        level_b = by_attr_b.get(attr)
        if level_b is None:
            return False
        if not _levels_coarser_or_equal(schema, attr, level_a, level_b):
            return False
    return True


def template_coarser_or_equal(
    schema: Schema, template_a: PatternTemplate, template_b: PatternTemplate
) -> bool:
    """A's template is obtainable from B's by DE-HEAD/DE-TAIL and P-ROLL-UPs.

    Concretely: A's position list must be a *contiguous window* of B's with
    the same symbol-identity structure, and each of A's symbols must sit at
    a coarser-or-equal level than B's corresponding symbol.
    """
    if template_a.kind != template_b.kind:
        return False
    la, lb = template_a.length, template_b.length
    if la > lb:
        return False
    ids_a = template_a.symbol_ids()
    ids_b = template_b.symbol_ids()
    symbols_a = template_a.position_symbols()
    symbols_b = template_b.position_symbols()
    for start in range(lb - la + 1):
        window = ids_b[start : start + la]
        # Normalise window symbol identities to first-appearance numbering.
        remap: Dict[int, int] = {}
        normalised = []
        for value in window:
            remap.setdefault(value, len(remap))
            normalised.append(remap[value])
        if tuple(normalised) != ids_a:
            continue
        if all(
            symbol_a.attribute == symbol_b.attribute
            and _levels_coarser_or_equal(
                schema, symbol_a.attribute, symbol_a.level, symbol_b.level
            )
            for symbol_a, symbol_b in zip(
                symbols_a, symbols_b[start : start + la]
            )
        ):
            return True
    return False


def spec_coarser_or_equal(
    schema: Schema, spec_a: CuboidSpec, spec_b: CuboidSpec
) -> bool:
    """The S-cuboid partial order: A is at a coarser-or-equal granularity."""
    if spec_a.pipeline_key()[:3] != spec_b.pipeline_key()[:3]:
        # WHERE / CLUSTER BY / SEQUENCE BY must agree: the lattice is over
        # one sequence-formation pipeline.
        return False
    return global_dims_coarser_or_equal(
        schema, spec_a.group_by, spec_b.group_by
    ) and template_coarser_or_equal(schema, spec_a.template, spec_b.template)


# --------------------------------------------------------------------------
# Template enumeration
# --------------------------------------------------------------------------


def iter_templates(
    kind: PatternKind,
    domains: Seq[AttrLevel],
    max_length: Optional[int] = None,
    symbol_names: str = "XYZABCDEFGH",
) -> Iterator[PatternTemplate]:
    """Enumerate pattern templates over the given symbol domains.

    For each length 1..max_length (unbounded when None — demonstrating the
    infinite S-cube), yields every symbol-identity shape (set partition of
    positions) with every assignment of domains to symbols.
    """
    length = 1
    while max_length is None or length <= max_length:
        for shape in _identity_shapes(length):
            n_symbols = max(shape) + 1
            if n_symbols > len(symbol_names):
                continue
            for assignment in itertools.product(domains, repeat=n_symbols):
                names = [symbol_names[i] for i in range(n_symbols)]
                positions = tuple(names[i] for i in shape)
                bindings = {
                    names[i]: assignment[i] for i in range(n_symbols)
                }
                yield PatternTemplate.build(kind, positions, bindings)
        length += 1


def _identity_shapes(length: int) -> Iterator[Tuple[int, ...]]:
    """All canonical symbol-identity patterns of a given length.

    These are restricted-growth strings: position i may reuse any earlier
    symbol id or introduce the next unused one.
    """

    def extend(prefix: List[int]) -> Iterator[Tuple[int, ...]]:
        if len(prefix) == length:
            yield tuple(prefix)
            return
        limit = (max(prefix) + 1 if prefix else 0) + 1
        for value in range(limit):
            prefix.append(value)
            yield from extend(prefix)
            prefix.pop()

    yield from extend([])


# --------------------------------------------------------------------------
# Bounded lattice materialisation
# --------------------------------------------------------------------------


class SCube:
    """A bounded fragment of the (infinite) S-cube lattice.

    Given a prototype spec, the pattern-symbol domains to range over and a
    maximum template length, enumerates every S-cuboid spec in the fragment
    and exposes the covering lattice as a :mod:`networkx` DiGraph (edges
    point from finer to coarser cuboids).
    """

    def __init__(
        self,
        schema: Schema,
        prototype: CuboidSpec,
        pattern_domains: Seq[AttrLevel],
        max_template_length: int = 3,
        global_level_choices: Optional[Dict[str, Seq[str]]] = None,
    ):
        self.schema = schema
        self.prototype = prototype
        self.pattern_domains = tuple(pattern_domains)
        self.max_template_length = max_template_length
        self.global_level_choices = global_level_choices or {
            attr: schema.hierarchy(attr).levels for attr, __ in prototype.group_by
        }
        self._specs: Optional[List[CuboidSpec]] = None

    def cuboids(self) -> List[CuboidSpec]:
        """Every spec in the bounded fragment."""
        if self._specs is not None:
            return self._specs
        global_options: List[List[Tuple[AttrLevel, ...]]] = []
        # Each global dim may be dropped or kept at any allowed level.
        per_dim: List[List[Optional[AttrLevel]]] = []
        for attr, __ in self.prototype.group_by:
            choices: List[Optional[AttrLevel]] = [None]
            for level in self.global_level_choices.get(attr, ()):
                choices.append((attr, level))
            per_dim.append(choices)
        group_by_options: List[Tuple[AttrLevel, ...]] = []
        for combo in itertools.product(*per_dim) if per_dim else [()]:
            group_by_options.append(tuple(c for c in combo if c is not None))
        specs: List[CuboidSpec] = []
        for template in iter_templates(
            self.prototype.template.kind,
            self.pattern_domains,
            self.max_template_length,
        ):
            for group_by in group_by_options:
                specs.append(
                    CuboidSpec(
                        template=template,
                        cluster_by=self.prototype.cluster_by,
                        sequence_by=self.prototype.sequence_by,
                        group_by=group_by,
                        where=self.prototype.where,
                        restriction=self.prototype.restriction,
                        aggregates=self.prototype.aggregates,
                    )
                )
        self._specs = specs
        return specs

    def lattice(self) -> "nx.DiGraph":
        """The covering DAG: an edge A -> B when B is strictly coarser than A
        with nothing in between."""
        specs = self.cuboids()
        graph = nx.DiGraph()
        for index, spec in enumerate(specs):
            graph.add_node(index, spec=spec)
        coarser: Dict[int, List[int]] = {i: [] for i in range(len(specs))}
        for i, a in enumerate(specs):
            for j, b in enumerate(specs):
                if i == j:
                    continue
                if spec_coarser_or_equal(self.schema, b, a) and not spec_coarser_or_equal(
                    self.schema, a, b
                ):
                    coarser[i].append(j)
        for i, ups in coarser.items():
            ups_set = set(ups)
            for j in ups:
                # j covers i unless some k sits strictly between.
                if any(k in ups_set and j in coarser[k] for k in ups if k != j):
                    continue
                graph.add_edge(i, j)
        return graph

    def __repr__(self) -> str:
        return (
            f"SCube(max_length={self.max_template_length}, "
            f"{len(self.cuboids())} cuboids in fragment)"
        )


# --------------------------------------------------------------------------
# Non-summarizability
# --------------------------------------------------------------------------


def detail_summarization_counterexample() -> Dict[str, int]:
    """The paper's s3 example (Section 3.4), returned as named counts.

    One sequence <Pentagon, Wheaton, Pentagon, Wheaton, Glenmont>;
    SUBSTRING(X, Y, Z) puts it in three cells (c1, c2, c3).  After DE-TAIL
    to SUBSTRING(X, Y), the true count of [Pentagon, Wheaton] is 1, but
    aggregating the finer cells whose (X, Y) prefix is (Pentagon, Wheaton)
    gives c1 + c3 = 2 — proving S-cuboids are non-summarizable.
    """
    sequence = ("Pentagon", "Wheaton", "Pentagon", "Wheaton", "Glenmont")

    def substring_cells(pattern_length: int) -> Dict[Tuple[str, ...], int]:
        cells: Dict[Tuple[str, ...], int] = {}
        seen: set = set()
        for start in range(len(sequence) - pattern_length + 1):
            window = sequence[start : start + pattern_length]
            if window in seen:
                continue
            seen.add(window)
            cells[window] = cells.get(window, 0) + 1
        return cells

    fine = substring_cells(3)
    coarse_true = substring_cells(2)
    target = ("Pentagon", "Wheaton")
    aggregated = sum(
        count for window, count in fine.items() if window[:2] == target
    )
    return {
        "c1": fine.get(("Pentagon", "Wheaton", "Pentagon"), 0),
        "c2": fine.get(("Wheaton", "Pentagon", "Wheaton"), 0),
        "c3": fine.get(("Pentagon", "Wheaton", "Glenmont"), 0),
        "true_c4": coarse_true.get(target, 0),
        "aggregated_c4": aggregated,
    }
