"""Cuboid repository (Figure 6): an LRU cache of computed S-cuboids.

The paper notes that with limited storage the repository "could be
implemented as a cache with an appropriate replacement policy such as LRU";
this is that implementation, with both an entry-count bound and an
approximate byte budget.  A hit lets DE-TAIL / DE-HEAD (and any repeated
query) return instantly — Section 4.2.2's ``Qc`` example.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Optional

from repro.core.cuboid import SCuboid


def estimate_cuboid_bytes(cuboid: SCuboid) -> int:
    """Rough footprint: key cells + one aggregate dict per non-empty cell."""
    dims = len(cuboid.spec.group_by) + cuboid.spec.template.n_dims
    per_cell = 96 + 8 * dims + 48 * len(cuboid.spec.aggregates)
    return per_cell * len(cuboid)


class CuboidRepository:
    """Bounded LRU store of S-cuboids keyed by spec cache keys.

    Thread-safe: service sessions share one repository, so the LRU
    order, the byte accounting and the hit/miss/eviction counters are
    guarded by a single non-reentrant lock (``_evict`` is only ever
    called with the lock already held).
    """

    def __init__(self, capacity: int = 64, byte_budget: int = 256 * 1024 * 1024):
        if capacity < 1:
            raise ValueError("repository capacity must be >= 1")
        self.capacity = capacity
        self.byte_budget = byte_budget
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, SCuboid]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable) -> Optional[SCuboid]:
        with self._lock:
            cuboid = self._entries.get(key)
            if cuboid is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return cuboid

    def put(self, key: Hashable, cuboid: SCuboid) -> None:
        with self._lock:
            if key in self._entries:
                self._bytes -= estimate_cuboid_bytes(self._entries[key])
            self._entries[key] = cuboid
            self._entries.move_to_end(key)
            self._bytes += estimate_cuboid_bytes(cuboid)
            self._evict()

    def _evict(self) -> None:
        # caller must hold self._lock
        while self._entries and (
            len(self._entries) > self.capacity or self._bytes > self.byte_budget
        ):
            __, evicted = self._entries.popitem(last=False)
            self._bytes -= estimate_cuboid_bytes(evicted)
            self.evictions += 1

    def invalidate(self, key: Hashable) -> bool:
        with self._lock:
            cuboid = self._entries.pop(key, None)
            if cuboid is None:
                return False
            self._bytes -= estimate_cuboid_bytes(cuboid)
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    @property
    def bytes_used(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __repr__(self) -> str:
        return (
            f"CuboidRepository({len(self._entries)}/{self.capacity} cuboids, "
            f"{self._bytes / 1e6:.3f} MB, hits={self.hits}, "
            f"misses={self.misses}, evictions={self.evictions})"
        )
