"""Cuboid repository (Figure 6): a bounded store of computed S-cuboids.

The paper notes that with limited storage the repository "could be
implemented as a cache with an appropriate replacement policy such as LRU";
this is that implementation, with both an entry-count bound and an
approximate byte budget.  A hit lets DE-TAIL / DE-HEAD (and any repeated
query) return instantly — Section 4.2.2's ``Qc`` example.

Two replacement policies are available:

* ``"lru"`` — classic least-recently-used (the paper's suggestion).
* ``"benefit"`` — benefit-weighted: the victim is the entry with the
  lowest ``cost_seconds * (1 + hits) / bytes``, i.e. the cuboid that is
  cheapest to recompute per byte it occupies, given how often it has
  actually been reused.  Ties fall back to LRU order.

Entries remember the byte estimate taken at insert time, so accounting
stays exact even if a cached cuboid's cell dict is later mutated in
place (the old estimate, not a re-estimate of the mutated object, is
subtracted on overwrite and eviction).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, List, Optional, Tuple

from repro.core.cuboid import SCuboid


def _value_bytes(value: object) -> int:
    """Approximate payload bytes for one stored aggregate value.

    Derived cuboids can carry structured payloads — notably AVGPAIR's
    ``(sum, count)`` transport tuples — which the old flat per-aggregate
    constant undercounted.
    """
    if isinstance(value, tuple):
        return 56 + 16 * len(value)
    if isinstance(value, str):
        return 49 + len(value)
    return 28


def estimate_cuboid_bytes(cuboid: SCuboid) -> int:
    """Rough footprint: key cells plus the actual cell payloads."""
    dims = len(cuboid.spec.group_by) + cuboid.spec.template.n_dims
    per_cell_base = 96 + 8 * dims
    total = 0
    for values in cuboid.cells.values():
        total += per_cell_base
        for value in values.values():
            total += 48 + _value_bytes(value)
    return total


def estimate_cells_bytes(n_dims: int, n_aggregates: int, n_cells: int) -> int:
    """Footprint estimate from counts alone (for log-mined workloads)."""
    per_cell = 96 + 8 * n_dims + n_aggregates * (48 + 28)
    return per_cell * n_cells


class _Entry:
    """Repository slot: the cuboid plus its replacement-policy metadata."""

    __slots__ = ("cuboid", "bytes", "cost_seconds", "hits")

    def __init__(self, cuboid: SCuboid, nbytes: int, cost_seconds: float):
        self.cuboid = cuboid
        self.bytes = nbytes
        self.cost_seconds = cost_seconds
        self.hits = 0


class CuboidRepository:
    """Bounded store of S-cuboids keyed by spec cache keys.

    Thread-safe: service sessions share one repository, so the recency
    order, the byte accounting and the hit/miss/eviction counters are
    guarded by a single non-reentrant lock (``_evict`` is only ever
    called with the lock already held).
    """

    POLICIES = ("lru", "benefit")

    def __init__(
        self,
        capacity: int = 64,
        byte_budget: int = 256 * 1024 * 1024,
        policy: str = "lru",
    ):
        if capacity < 1:
            raise ValueError("repository capacity must be >= 1")
        if policy not in self.POLICIES:
            raise ValueError(f"unknown repository policy {policy!r}; use one of {self.POLICIES}")
        self.capacity = capacity
        self.byte_budget = byte_budget
        self.policy = policy
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable) -> Optional[SCuboid]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self.hits += 1
            return entry.cuboid

    def put(self, key: Hashable, cuboid: SCuboid, cost_seconds: float = 0.0) -> None:
        nbytes = estimate_cuboid_bytes(cuboid)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                # Subtract the estimate recorded at insert time, NOT a fresh
                # estimate of the (possibly mutated) old object — re-estimating
                # here is how overwrites used to corrupt the byte ledger.
                self._bytes -= old.bytes
            self._entries[key] = _Entry(cuboid, nbytes, cost_seconds)
            self._bytes += nbytes
            self._evict()

    def _evict(self) -> None:
        # caller must hold self._lock
        while self._entries and (
            len(self._entries) > self.capacity or self._bytes > self.byte_budget
        ):
            victim = self._pick_victim()
            entry = self._entries.pop(victim)
            self._bytes -= entry.bytes
            self.evictions += 1

    def _pick_victim(self) -> Hashable:
        # caller must hold self._lock; self._entries is non-empty
        if self.policy == "lru":
            return next(iter(self._entries))
        # Benefit-weighted: evict the entry whose retained recompute cost
        # per byte is smallest.  Strict ``<`` keeps ties in LRU order
        # (OrderedDict iterates coldest-first).
        best_key = None
        best_score = None
        for key, entry in self._entries.items():
            score = (entry.cost_seconds * (1.0 + entry.hits)) / max(1, entry.bytes)
            if best_score is None or score < best_score:
                best_key = key
                best_score = score
        return best_key

    def items(self) -> List[Tuple[Hashable, SCuboid, float]]:
        """Snapshot of ``(key, cuboid, cost_seconds)`` without touching recency.

        Used by the semantic-cache planner to scan derivation candidates.
        """
        with self._lock:
            return [(k, e.cuboid, e.cost_seconds) for k, e in self._entries.items()]

    def entry_stats(self, key: Hashable) -> Optional[dict]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            return {
                "bytes": entry.bytes,
                "cost_seconds": entry.cost_seconds,
                "hits": entry.hits,
            }

    def invalidate(self, key: Hashable) -> bool:
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._bytes -= entry.bytes
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    @property
    def bytes_used(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __repr__(self) -> str:
        return (
            f"CuboidRepository({len(self._entries)}/{self.capacity} cuboids, "
            f"{self._bytes / 1e6:.3f} MB, policy={self.policy}, hits={self.hits}, "
            f"misses={self.misses}, evictions={self.evictions})"
        )
