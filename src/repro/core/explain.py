"""EXPLAIN: a human-readable execution plan for an S-OLAP query.

``explain(engine, spec)`` describes, without executing the query, how the
engine would answer it: the sequence-formation pipeline (and whether its
result is cached), which indices exist for the template, the acquisition
path the inverted-index strategy would take (exact hit / roll-up merge /
drill-down refinement / join chain / cold build), the counting mode, and
the cost model's CB-vs-II estimates with the recommended strategy.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.aggregates import needs_contents
from repro.core.engine import SOLAPEngine
from repro.core.inverted_index import (
    _find_refine_source,
    _find_rollup_source,
    rollup_by_merge_is_valid,
)
from repro.core.matcher import can_compile
from repro.core.spec import CellRestriction, CuboidSpec
from repro.optimizer.cost_model import CostModel, profile_groups


class QueryPlan:
    """A structured explanation; renders as indented text."""

    def __init__(self) -> None:
        self.lines: List[Tuple[int, str]] = []
        #: structured side-channel (e.g. the query's resource profile);
        #: everything here must already be JSON-serialisable
        self.extra: dict = {}

    def add(self, text: str, depth: int = 0) -> None:
        self.lines.append((depth, text))

    def render(self) -> str:
        return "\n".join("  " * depth + text for depth, text in self.lines)

    def to_dict(self) -> dict:
        """JSON-serialisable form (embedded in slow-query log entries)."""
        doc = {
            "plan_schema": 1,
            "lines": [
                {"depth": depth, "text": text} for depth, text in self.lines
            ],
        }
        if self.extra:
            doc["extra"] = dict(self.extra)
        return doc

    def __str__(self) -> str:
        return self.render()

    def __contains__(self, text: str) -> bool:
        return any(text in line for __, line in self.lines)


def explain(engine: SOLAPEngine, spec: CuboidSpec) -> QueryPlan:
    """Build the execution plan for *spec* on *engine* (does not execute)."""
    spec.validate(engine.db.schema)
    schema = engine.db.schema
    plan = QueryPlan()
    template = spec.template

    plan.add("S-OLAP query plan")
    plan.add(
        f"template: {template.kind.value}({', '.join(template.positions)}) "
        f"[m={template.length}, n={template.n_dims}"
        + (", wildcards" if template.has_wildcards else "")
        + "]",
        1,
    )
    plan.add(
        "matcher kernel: "
        + (
            "compiled (dictionary-encoded)"
            if can_compile(template, engine.db)
            else "legacy (value-space)"
        ),
        1,
    )

    # -- repository -------------------------------------------------------
    if engine.use_repository and spec.cache_key() in engine.repository:
        plan.add("cuboid repository: HIT — returned without computation", 1)
        return plan
    plan.add("cuboid repository: miss", 1)
    if engine.use_repository and getattr(engine, "semantic_cache", False):
        try:
            result = engine._derivation_planner().plan(spec, engine.repository)
        except Exception:  # pragma: no cover — explain must never fail a query
            result = None
        if result is not None and result.plan is not None:
            plan.add(
                "semantically derivable from cached cuboid via "
                + " → ".join(result.plan.describe()),
                2,
            )

    # -- pipeline ----------------------------------------------------------
    cached = spec.pipeline_key() in engine.sequence_cache
    plan.add(
        "sequence pipeline (select/cluster/order/group): "
        + ("cached" if cached else "will run"),
        1,
    )
    groups = engine.sequence_groups(spec)
    plan.add(
        f"{len(groups)} sequence group(s), {groups.total_sequences()} sequences",
        2,
    )

    # -- index situation ---------------------------------------------------
    plan.add("inverted-index acquisition per group:", 1)
    registry = engine.registry_for(spec)
    for group in groups:
        label = f"group {group.key!r}" if group.key else "the single group"
        exact = registry.find(group.key, template, schema)
        if exact is not None and exact.verified:
            plan.add(f"{label}: exact index hit ({len(exact)} lists)", 2)
            continue
        if rollup_by_merge_is_valid(template) and _find_rollup_source(
            group, template, schema, registry
        ):
            plan.add(f"{label}: P-ROLL-UP merge from a finer index (no scans)", 2)
            continue
        if _find_refine_source(group, template, schema, registry):
            plan.add(
                f"{label}: P-DRILL-DOWN refinement (scan only listed sequences)",
                2,
            )
            continue
        prefix = registry.longest_prefix(group.key, template, schema)
        if prefix is not None and prefix[0] >= 2:
            steps = template.length - prefix[0]
            plan.add(
                f"{label}: join chain from cached L{prefix[0]} "
                f"({steps} join+verify step(s))",
                2,
            )
        else:
            plan.add(
                f"{label}: cold — build base index scanning "
                f"{len(group)} sequences, then join chain",
                2,
            )

    # -- counting mode ------------------------------------------------------
    fast = (
        not needs_contents(spec.aggregates)
        and spec.predicate is None
        and spec.restriction is not CellRestriction.ALL_MATCHED
    )
    plan.add(
        "counting: "
        + (
            "list lengths (no sequence access)"
            if fast
            else "scan each listed sequence once (predicate/aggregate/"
            "ALL-MATCHED requires contents)"
        ),
        1,
    )

    # -- cost model ----------------------------------------------------------
    domains = tuple(
        (s.attribute, s.level) for s in template.symbols if not s.wildcard
    )
    profile = profile_groups(engine.db, groups, domains)
    model = CostModel(profile)
    group_key = next(iter(groups)).key if len(groups) else ()
    choice, cb, ii = model.choose(spec, registry, group_key, schema)
    plan.add("cost model:", 1)
    plan.add(f"CB : {cb.scan_equivalents:10.0f} scan-eq — {cb.detail}", 2)
    plan.add(f"II : {ii.scan_equivalents:10.0f} scan-eq — {ii.detail}", 2)
    plan.add(f"recommended strategy: {choice.upper()}", 1)
    return plan
