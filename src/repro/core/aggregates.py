"""Aggregate functions over cell assignments (Section 3.2, step 6).

COUNT counts assigned contents (under left-maximality: matching sequences).
Measure aggregates (SUM/AVG/MIN/MAX) fold a measure attribute over an
event scope per assignment:

* ``MATCHED`` — the events of the assigned content (the matched substring /
  subsequence, or the whole sequence under the data-go restriction),
* ``SEQUENCE`` — every event of the assigned sequence,
* ``FIRST-EVENT`` — only the first event of the assigned content,

mirroring the paper's discussion of the two SUM variants.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence as Seq, Tuple

from repro.core.spec import AggregateScope, AggregateSpec
from repro.events.database import EventDatabase
from repro.events.sequence import Sequence


class _AggState:
    """Mutable accumulator state for one aggregate in one cell."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value


class CellAccumulator:
    """Accumulates every aggregate of a spec for one cuboid cell."""

    __slots__ = ("_specs", "_states", "_count")

    def __init__(self, specs: Tuple[AggregateSpec, ...]):
        self._specs = specs
        self._states = [_AggState() for __ in specs]
        self._count = 0

    def add_assignment(
        self,
        db: EventDatabase,
        sequence: Sequence,
        content: Tuple[int, ...],
    ) -> None:
        """Fold one assigned content (tuple of database rows) into the cell."""
        self._count += 1
        for spec, state in zip(self._specs, self._states):
            if spec.func == "COUNT":
                continue
            rows = self._scope_rows(spec.scope, sequence, content)
            column = db.column(spec.argument)  # type: ignore[arg-type]
            for row in rows:
                value = column[row]
                if value is None:
                    continue
                state.add(float(value))  # type: ignore[arg-type]

    @staticmethod
    def _scope_rows(
        scope: AggregateScope, sequence: Sequence, content: Tuple[int, ...]
    ) -> Seq[int]:
        if scope is AggregateScope.MATCHED:
            return content
        if scope is AggregateScope.SEQUENCE:
            return sequence.rows
        return content[:1]  # FIRST_EVENT

    def results(self) -> Dict[str, object]:
        """Final value per aggregate name (AVG of nothing is None)."""
        out: Dict[str, object] = {}
        for spec, state in zip(self._specs, self._states):
            if spec.func == "COUNT":
                out[spec.name] = self._count
            elif spec.func == "SUM":
                out[spec.name] = state.total
            elif spec.func == "AVG":
                out[spec.name] = state.total / state.count if state.count else None
            elif spec.func == "AVGPAIR":
                # Mergeable transport form of AVG: the (sum, count) pair.
                out[spec.name] = (state.total, state.count)
            elif spec.func == "MIN":
                out[spec.name] = state.minimum
            elif spec.func == "MAX":
                out[spec.name] = state.maximum
        return out

    @property
    def count(self) -> int:
        """Number of assignments folded so far."""
        return self._count


def needs_contents(specs: Tuple[AggregateSpec, ...]) -> bool:
    """True when some aggregate reads measure values (not just COUNT).

    Strategies use this to skip materialising assignment contents on
    COUNT-only queries, which is the common case in the paper.
    """
    return any(spec.func != "COUNT" for spec in specs)


def merge_results(
    specs: Tuple[AggregateSpec, ...],
    partials: List[Dict[str, object]],
) -> Dict[str, object]:
    """Merge per-chunk aggregate results (online aggregation support).

    COUNT and SUM merge by addition, MIN/MAX by min/max.  AVG cannot be
    merged from finalised values alone, so online aggregation recomputes it
    from merged SUM/COUNT pairs when both are requested; a lone AVG raises.
    """
    merged: Dict[str, object] = {}
    for spec in specs:
        values = [p[spec.name] for p in partials if p.get(spec.name) is not None]
        if spec.func in ("COUNT", "SUM"):
            merged[spec.name] = sum(values) if values else (0 if spec.func == "COUNT" else 0.0)
        elif spec.func == "MIN":
            merged[spec.name] = min(values) if values else None
        elif spec.func == "MAX":
            merged[spec.name] = max(values) if values else None
        else:
            raise ValueError(
                f"{spec.name}: AVG partials cannot be merged; "
                "request SUM and COUNT instead"
            )
    return merged
