"""Per-query execution statistics.

The paper's evaluation reports *sequences scanned* and *index bytes built*
alongside wall-clock time (Table 1, Figure 16 annotations) because those are
the machine-independent cost drivers of the two strategies.  Every strategy
therefore threads a :class:`QueryStats` through its hot paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

#: every how many sequence scans :meth:`QueryStats.add_scan` re-checks the
#: deadline — a power of two so the test is a single AND on the counter
_DEADLINE_CHECK_MASK = 63


@dataclass
class QueryStats:
    """Counters collected while answering one S-OLAP query."""

    strategy: str = ""
    runtime_seconds: float = 0.0
    #: sequence accesses: every time a strategy reads a sequence's events
    sequences_scanned: int = 0
    #: number of inverted indices built during this query
    indices_built: int = 0
    #: estimated bytes of inverted indices built during this query
    index_bytes_built: int = 0
    #: number of index joins performed
    index_joins: int = 0
    #: number of inverted lists merged (P-ROLL-UP) or refined (P-DRILL-DOWN)
    lists_transformed: int = 0
    cuboid_cache_hit: bool = False
    sequence_cache_hit: bool = False
    index_reused: bool = False
    extra: Dict[str, object] = field(default_factory=dict)
    #: cooperative-cancellation token (duck-typed: anything with ``check()``,
    #: e.g. :class:`repro.service.deadline.Deadline`), set by the service
    #: layer; the hot loops check it via :meth:`add_scan` / :meth:`checkpoint`
    deadline: Optional[object] = field(default=None, repr=False, compare=False)
    #: EXPLAIN ANALYZE artefacts, populated by ``engine.execute(...,
    #: analyze=True)``: the root :class:`~repro.obs.spans.Span` of the
    #: query's trace and the annotated :class:`~repro.core.explain.QueryPlan`
    trace: Optional[object] = field(default=None, repr=False, compare=False)
    plan: Optional[object] = field(default=None, repr=False, compare=False)

    def add_scan(self, n: int = 1) -> None:
        self.sequences_scanned += n
        if (
            self.deadline is not None
            and (self.sequences_scanned & _DEADLINE_CHECK_MASK) == 0
        ):
            self.deadline.check()  # type: ignore[attr-defined]

    def checkpoint(self) -> None:
        """Cancellation point: raise if this query's deadline has passed.

        Strategies call this at loop boundaries that may be reached without
        scanning sequences (group boundaries, join-chain steps), so even
        index-only work cancels promptly.
        """
        if self.deadline is not None:
            self.deadline.check()  # type: ignore[attr-defined]

    def merge(self, other: "QueryStats") -> None:
        """Fold another stats object into this one (cumulative reporting)."""
        self.runtime_seconds += other.runtime_seconds
        self.sequences_scanned += other.sequences_scanned
        self.indices_built += other.indices_built
        self.index_bytes_built += other.index_bytes_built
        self.index_joins += other.index_joins
        self.lists_transformed += other.lists_transformed

    def summary(self) -> str:
        return (
            f"[{self.strategy or '?'}] {self.runtime_seconds * 1000:.2f} ms, "
            f"{self.sequences_scanned} sequences scanned, "
            f"{self.index_bytes_built / 1e6:.3f} MB indices built"
        )
