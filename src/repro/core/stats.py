"""Per-query execution statistics.

The paper's evaluation reports *sequences scanned* and *index bytes built*
alongside wall-clock time (Table 1, Figure 16 annotations) because those are
the machine-independent cost drivers of the two strategies.  Every strategy
therefore threads a :class:`QueryStats` through its hot paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class QueryStats:
    """Counters collected while answering one S-OLAP query."""

    strategy: str = ""
    runtime_seconds: float = 0.0
    #: sequence accesses: every time a strategy reads a sequence's events
    sequences_scanned: int = 0
    #: number of inverted indices built during this query
    indices_built: int = 0
    #: estimated bytes of inverted indices built during this query
    index_bytes_built: int = 0
    #: number of index joins performed
    index_joins: int = 0
    #: number of inverted lists merged (P-ROLL-UP) or refined (P-DRILL-DOWN)
    lists_transformed: int = 0
    cuboid_cache_hit: bool = False
    sequence_cache_hit: bool = False
    index_reused: bool = False
    extra: Dict[str, object] = field(default_factory=dict)

    def add_scan(self, n: int = 1) -> None:
        self.sequences_scanned += n

    def merge(self, other: "QueryStats") -> None:
        """Fold another stats object into this one (cumulative reporting)."""
        self.runtime_seconds += other.runtime_seconds
        self.sequences_scanned += other.sequences_scanned
        self.indices_built += other.indices_built
        self.index_bytes_built += other.index_bytes_built
        self.index_joins += other.index_joins
        self.lists_transformed += other.lists_transformed

    def summary(self) -> str:
        return (
            f"[{self.strategy or '?'}] {self.runtime_seconds * 1000:.2f} ms, "
            f"{self.sequences_scanned} sequences scanned, "
            f"{self.index_bytes_built / 1e6:.3f} MB indices built"
        )
