"""S-cuboid specification (Section 3.2).

A :class:`CuboidSpec` captures all six parts of the paper's cuboid
specification language:

1. WHERE — event selection predicate,
2. CLUSTER BY — clustering attributes with hierarchy levels,
3. SEQUENCE BY — ordering attributes,
4. SEQUENCE GROUP BY — global dimensions with hierarchy levels,
5. CUBOID BY — the pattern template, cell restriction and matching
   predicate,
6. the aggregation functions of the SELECT clause.

All spec objects are immutable and hashable: they key the cuboid
repository, the sequence cache and the inverted-index registry, and the
S-OLAP operations (Section 3.3) are implemented as pure spec → spec
transformations in :mod:`repro.core.operations`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import SpecError
from repro.events.expression import Expr
from repro.events.schema import Schema
from repro.events.sequence import AttrLevel, OrderKey


class PatternKind(enum.Enum):
    """Whether template occurrences are contiguous or order-preserving."""

    SUBSTRING = "SUBSTRING"
    SUBSEQUENCE = "SUBSEQUENCE"


class CellRestriction(enum.Enum):
    """How multiple occurrences of a cell's pattern within one data sequence
    are assigned to the cell (Section 3.2, Pattern Grouping part (b))."""

    #: Only the first (leftmost) qualifying occurrence is assigned.
    LEFT_MAXIMALITY = "LEFT-MAXIMALITY"
    #: First qualifying occurrence triggers assignment of the *whole sequence*.
    LEFT_MAXIMALITY_DATA = "LEFT-MAXIMALITY-DATA"
    #: Every qualifying occurrence is assigned.
    ALL_MATCHED = "ALL-MATCHED"


#: attribute/level marker for wildcard symbols (they have no value domain)
WILDCARD_DOMAIN = "*"


@dataclass(frozen=True)
class PatternSymbol:
    """One pattern dimension: a symbol with its value domain.

    ``fixed`` records a slice on this symbol (the symbol may only take that
    one value at its level).  ``within`` records an ancestor constraint
    produced by P-DRILL-DOWN on a sliced symbol: the symbol's value, mapped
    up to ``within[0]``, must equal ``within[1]``.

    ``wildcard`` marks an ``ANY`` position (the paper's regular-expression
    extension direction): it matches every event, binds no value, and is
    *not* a pattern dimension — it contributes no cuboid axis.  Wildcards
    may still be constrained through the matching predicate (their
    placeholder binds the matched event as usual).
    """

    name: str
    attribute: str
    level: str
    fixed: Optional[object] = None
    within: Optional[Tuple[str, object]] = None
    wildcard: bool = False

    def __post_init__(self) -> None:
        if self.wildcard and (self.fixed is not None or self.within is not None):
            raise SpecError(f"wildcard symbol {self.name!r} cannot be restricted")

    @classmethod
    def any(cls, name: str) -> "PatternSymbol":
        """A wildcard (ANY) symbol."""
        return cls(name, WILDCARD_DOMAIN, WILDCARD_DOMAIN, wildcard=True)

    @property
    def is_restricted(self) -> bool:
        """True when the symbol cannot range over its whole domain."""
        return self.fixed is not None or self.within is not None

    def __str__(self) -> str:
        if self.wildcard:
            return f"{self.name} AS ANY"
        text = f"{self.name} AS {self.attribute} AT {self.level}"
        if self.fixed is not None:
            text += f" = {self.fixed!r}"
        if self.within is not None:
            text += f" WITHIN {self.within[0]}={self.within[1]!r}"
        return text


@dataclass(frozen=True)
class PatternTemplate:
    """A pattern template: a sequence of symbols over value domains.

    ``positions`` is the symbol name at each template position (e.g.
    ``("X", "Y", "Y", "X")``); ``symbols`` holds the distinct pattern
    dimensions in order of first appearance.
    """

    kind: PatternKind
    positions: Tuple[str, ...]
    symbols: Tuple[PatternSymbol, ...]

    def __post_init__(self) -> None:
        if not self.positions:
            raise SpecError("pattern template must have >= 1 position")
        names = [symbol.name for symbol in self.symbols]
        if len(set(names)) != len(names):
            raise SpecError(f"duplicate pattern symbols: {names}")
        missing = [name for name in self.positions if name not in names]
        if missing:
            raise SpecError(f"positions reference unbound symbols: {missing}")
        unused = [name for name in names if name not in self.positions]
        if unused:
            raise SpecError(f"symbols bound but never used: {unused}")
        first_seen = []
        for name in self.positions:
            if name not in first_seen:
                first_seen.append(name)
        if first_seen != names:
            raise SpecError(
                "symbols must be listed in order of first appearance "
                f"(expected {first_seen}, got {names})"
            )

    # -- convenience constructors -----------------------------------------
    @classmethod
    def build(
        cls,
        kind: PatternKind,
        positions: Tuple[str, ...],
        bindings: Mapping[str, AttrLevel],
    ) -> "PatternTemplate":
        """Build a template from position names and symbol domain bindings."""
        seen = []
        for name in positions:
            if name not in seen:
                seen.append(name)
        symbols = []
        for name in seen:
            if name not in bindings:
                raise SpecError(f"no domain binding for symbol {name!r}")
            attribute, level = bindings[name]
            symbols.append(PatternSymbol(name, attribute, level))
        return cls(kind=kind, positions=tuple(positions), symbols=tuple(symbols))

    @classmethod
    def substring(
        cls, positions: Tuple[str, ...], bindings: Mapping[str, AttrLevel]
    ) -> "PatternTemplate":
        return cls.build(PatternKind.SUBSTRING, positions, bindings)

    @classmethod
    def subsequence(
        cls, positions: Tuple[str, ...], bindings: Mapping[str, AttrLevel]
    ) -> "PatternTemplate":
        return cls.build(PatternKind.SUBSEQUENCE, positions, bindings)

    # -- accessors ---------------------------------------------------------
    @property
    def length(self) -> int:
        """Number of template positions (m in the paper)."""
        return len(self.positions)

    @property
    def cell_symbols(self) -> Tuple[PatternSymbol, ...]:
        """The symbols that form cuboid axes (wildcards excluded)."""
        return tuple(s for s in self.symbols if not s.wildcard)

    @property
    def n_dims(self) -> int:
        """Number of distinct pattern dimensions (n in the paper).

        Wildcard positions match events but contribute no dimension.
        """
        return len(self.cell_symbols)

    @property
    def has_wildcards(self) -> bool:
        """True when some position is a wildcard (ANY)."""
        return any(s.wildcard for s in self.symbols)

    def symbol(self, name: str) -> PatternSymbol:
        for symbol in self.symbols:
            if symbol.name == name:
                return symbol
        raise SpecError(f"unknown pattern symbol {name!r}")

    def symbol_index(self, name: str) -> int:
        for index, symbol in enumerate(self.symbols):
            if symbol.name == name:
                return index
        raise SpecError(f"unknown pattern symbol {name!r}")

    def position_symbols(self) -> Tuple[PatternSymbol, ...]:
        """The :class:`PatternSymbol` at each template position."""
        by_name = {symbol.name: symbol for symbol in self.symbols}
        return tuple(by_name[name] for name in self.positions)

    @property
    def has_repeated_symbols(self) -> bool:
        """True when some symbol occurs at more than one position."""
        return len(self.positions) > len(self.symbols)

    @property
    def has_restricted_symbols(self) -> bool:
        """True when some symbol is sliced or ancestor-constrained."""
        return any(symbol.is_restricted for symbol in self.symbols)

    def symbol_ids(self) -> Tuple[int, ...]:
        """Canonical per-position symbol identity, e.g. (0,1,1,0)."""
        return tuple(self.symbol_index(name) for name in self.positions)

    def signature(self) -> Tuple:
        """Full hashable identity of the template (keys index caches)."""
        return (
            self.kind.value,
            self.symbol_ids(),
            tuple(
                (s.attribute, s.level, s.fixed, s.within, s.wildcard)
                for s in self.symbols
            ),
        )

    def domain_signature(self) -> Tuple:
        """Identity ignoring fixed/within restrictions.

        Two templates with the same domain signature can share base
        inverted indices; the restrictions are applied as list filters.
        """
        return (
            self.kind.value,
            self.symbol_ids(),
            tuple((s.attribute, s.level, s.wildcard) for s in self.symbols),
        )

    def replace_symbol(self, name: str, new_symbol: PatternSymbol) -> "PatternTemplate":
        """A copy of the template with one symbol definition swapped out."""
        if new_symbol.name != name:
            positions = tuple(
                new_symbol.name if p == name else p for p in self.positions
            )
        else:
            positions = self.positions
        symbols = tuple(
            new_symbol if symbol.name == name else symbol for symbol in self.symbols
        )
        return PatternTemplate(kind=self.kind, positions=positions, symbols=symbols)

    def validate(self, schema: Schema) -> None:
        """Check all symbol domains against *schema*."""
        for symbol in self.symbols:
            if symbol.wildcard:
                if self.positions.count(symbol.name) != 1:
                    raise SpecError(
                        f"wildcard symbol {symbol.name!r} must appear at "
                        "exactly one position"
                    )
                continue
            if not schema.is_dimension(symbol.attribute):
                raise SpecError(
                    f"pattern symbol {symbol.name!r} binds non-dimension "
                    f"attribute {symbol.attribute!r}"
                )
            schema.check_level(symbol.attribute, symbol.level)
            if symbol.within is not None:
                ancestor_level, __ = symbol.within
                hierarchy = schema.hierarchy(symbol.attribute)
                if not hierarchy.is_coarser(ancestor_level, symbol.level):
                    raise SpecError(
                        f"within-constraint level {ancestor_level!r} is not "
                        f"coarser than symbol level {symbol.level!r}"
                    )

    def __str__(self) -> str:
        inner = ", ".join(self.positions)
        with_part = ", ".join(str(symbol) for symbol in self.symbols)
        return f"{self.kind.value}({inner}) WITH {with_part}"


@dataclass(frozen=True)
class MatchingPredicate:
    """Placeholders (one per template position) plus a boolean expression.

    Example (Figure 3, lines 13-17)::

        MatchingPredicate(
            placeholders=("x1", "y1", "y2", "x2"),
            expr=Comparison(PlaceholderField("x1", "action"), "=", Literal("in")) & ...
        )
    """

    placeholders: Tuple[str, ...]
    expr: Expr

    def __post_init__(self) -> None:
        if len(set(self.placeholders)) != len(self.placeholders):
            raise SpecError(f"duplicate placeholders: {self.placeholders}")
        unknown = set(self.expr.placeholders()) - set(self.placeholders)
        if unknown:
            raise SpecError(
                f"matching predicate references undeclared placeholders: "
                f"{sorted(unknown)}"
            )

    def validate(self, template: PatternTemplate) -> None:
        if len(self.placeholders) != template.length:
            raise SpecError(
                f"{len(self.placeholders)} placeholders for a length-"
                f"{template.length} template"
            )

    def __str__(self) -> str:
        return f"({', '.join(self.placeholders)}) WITH {self.expr}"


class AggregateScope(enum.Enum):
    """Which events feed a measure aggregate (Section 3.2 SUM discussion)."""

    #: Aggregate over the events of the assigned (matched) content.
    MATCHED = "MATCHED"
    #: Aggregate over every event of each assigned sequence.
    SEQUENCE = "SEQUENCE"
    #: Aggregate over the first event of each assigned content.
    FIRST_EVENT = "FIRST-EVENT"


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate of the SELECT clause, e.g. COUNT(*) or SUM(amount)."""

    func: str
    argument: Optional[str] = None
    scope: AggregateScope = AggregateScope.MATCHED

    #: ``AVGPAIR`` is internal transport for sharded scatter-gather
    #: execution: it accumulates exactly like AVG but finalises to the
    #: ``(sum, count)`` pair, which — unlike a finalised average — merges
    #: across data shards.  Queries should request AVG; the coordinator
    #: rewrites it (see :mod:`repro.shard.merge`).
    _KNOWN = ("COUNT", "SUM", "AVG", "MIN", "MAX", "AVGPAIR")

    def __post_init__(self) -> None:
        if self.func not in self._KNOWN:
            raise SpecError(f"unknown aggregate function {self.func!r}")
        if self.func == "COUNT":
            if self.argument is not None:
                raise SpecError("COUNT takes no argument (use COUNT(*))")
        elif self.argument is None:
            raise SpecError(f"{self.func} requires a measure argument")

    @property
    def name(self) -> str:
        """Display/result-column name, e.g. ``COUNT(*)`` or ``SUM(amount)``."""
        return f"{self.func}({self.argument or '*'})"

    def validate(self, schema: Schema) -> None:
        if self.argument is not None and not schema.is_measure(self.argument):
            raise SpecError(
                f"aggregate argument {self.argument!r} is not a measure"
            )

    def __str__(self) -> str:
        text = self.name
        if self.func != "COUNT" and self.scope is not AggregateScope.MATCHED:
            text += f" OVER {self.scope.value}"
        return text


COUNT_ALL = AggregateSpec("COUNT")


@dataclass(frozen=True)
class CuboidSpec:
    """A complete S-cuboid specification (all six parts of Section 3.2)."""

    template: PatternTemplate
    cluster_by: Tuple[AttrLevel, ...]
    sequence_by: Tuple[OrderKey, ...]
    group_by: Tuple[AttrLevel, ...] = ()
    where: Optional[Expr] = None
    restriction: CellRestriction = CellRestriction.LEFT_MAXIMALITY
    predicate: Optional[MatchingPredicate] = None
    aggregates: Tuple[AggregateSpec, ...] = (COUNT_ALL,)
    #: Slices on global dimensions: (index into group_by, value).
    global_slice: Tuple[Tuple[int, object], ...] = field(default=())
    #: Iceberg condition (HAVING COUNT(*) >= n): cells below are dropped,
    #: and the inverted-index strategy prunes sub-threshold lists.
    min_support: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.aggregates:
            raise SpecError("at least one aggregate is required")
        if self.min_support is not None and self.min_support < 1:
            raise SpecError("HAVING COUNT(*) >= n requires n >= 1")
        if self.predicate is not None:
            self.predicate.validate(self.template)
        for index, __ in self.global_slice:
            if not 0 <= index < len(self.group_by):
                raise SpecError(
                    f"global slice index {index} out of range "
                    f"({len(self.group_by)} global dimensions)"
                )

    # -- identity ----------------------------------------------------------
    def pipeline_key(self) -> Tuple:
        """Key of pipeline steps 1-4 (drives the sequence cache)."""
        return (self.where, self.cluster_by, self.sequence_by, self.group_by)

    def cache_key(self) -> Tuple:
        """Full spec identity (drives the cuboid repository)."""
        return (
            self.pipeline_key(),
            self.template.signature(),
            self.restriction.value,
            self.predicate,
            self.aggregates,
            self.global_slice,
            self.min_support,
        )

    def __hash__(self) -> int:
        return hash(self.cache_key())

    # -- accessors ----------------------------------------------------------
    @property
    def pattern_dims(self) -> Tuple[PatternSymbol, ...]:
        """The pattern dimensions, in first-appearance order.

        Wildcard symbols match events but are not dimensions.
        """
        return self.template.cell_symbols

    @property
    def n_dims(self) -> int:
        """Total cuboid dimensionality: global dims + pattern dims."""
        return len(self.group_by) + self.template.n_dims

    def sliced_groups(self) -> Dict[int, object]:
        """Global-slice values by global-dimension index."""
        return dict(self.global_slice)

    def validate(self, schema: Schema) -> None:
        """Validate every attribute/level reference against *schema*."""
        for attr, level in self.cluster_by:
            schema.check_level(attr, level)
        for attr, __ in self.sequence_by:
            schema.validate_attribute(attr)
        for attr, level in self.group_by:
            schema.check_level(attr, level)
        self.template.validate(schema)
        for aggregate in self.aggregates:
            aggregate.validate(schema)

    def with_template(self, template: PatternTemplate) -> "CuboidSpec":
        """A copy of the spec with the pattern template replaced."""
        return replace(self, template=template)

    def __str__(self) -> str:
        parts = [f"SELECT {', '.join(str(a) for a in self.aggregates)}"]
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        parts.append(
            "CLUSTER BY "
            + ", ".join(f"{attr} AT {level}" for attr, level in self.cluster_by)
        )
        parts.append(
            "SEQUENCE BY "
            + ", ".join(
                f"{attr} {'ASCENDING' if asc else 'DESCENDING'}"
                for attr, asc in self.sequence_by
            )
        )
        if self.group_by:
            parts.append(
                "SEQUENCE GROUP BY "
                + ", ".join(f"{attr} AT {level}" for attr, level in self.group_by)
            )
        parts.append(f"CUBOID BY {self.template}")
        parts.append(self.restriction.value)
        if self.predicate is not None:
            parts.append(f"  {self.predicate}")
        return "\n".join(parts)
