"""The inverted-index (II) S-cuboid construction strategy (Section 4.2.2).

Implements the paper's QueryIndices procedure (Figure 15) plus the
index-aware fast paths of the six S-OLAP operations:

* the *join chain*: starting from the longest available verified prefix
  index, repeatedly join with a size-2 index over the next position pair,
  verify candidates against the base sequences, and cache the result —
  so APPEND/PREPEND reuse everything built by earlier queries;
* *P-ROLL-UP by list merging* when the template has no repeated and no
  restricted symbols (the paper's validity condition — see the s6
  counter-example of Section 4.2.2), with automatic fallback otherwise;
* *P-DRILL-DOWN by list refinement*: rebuild at the finer level scanning
  only sequences listed under the relevant coarse lists;
* *domain-restricted on-demand builds*: any index built mid-chain only
  scans sequences already known to be candidates.

Counting (QueryIndices lines 10-11) has a constant-time fast path: with a
COUNT-only aggregate, no matching predicate and a left-maximality
restriction, a cell's count is simply its list length — no sequence access
at all.  Otherwise each distinct listed sequence is scanned exactly once.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.aggregates import CellAccumulator, needs_contents
from repro.core.counter_based import group_is_selected
from repro.core.cuboid import SCuboid
from repro.core.matcher import make_matcher
from repro.core.spec import (
    CellRestriction,
    CuboidSpec,
    PatternSymbol,
    PatternTemplate,
)
from repro.core.stats import QueryStats
from repro.errors import EngineError, IndexError_
from repro.events.database import EventDatabase
from repro.events.schema import Schema
from repro.events.sequence import SequenceGroup, SequenceGroupSet
from repro.index.inverted import (
    InvertedIndex,
    build_index,
    join_indices,
    pair_template,
    prefix_template,
    refine_index,
    verify_index,
)
from repro.index.registry import IndexRegistry, base_template
from repro.obs.spans import span


def rollup_by_merge_is_valid(template: PatternTemplate) -> bool:
    """Validity of P-ROLL-UP by list merging (Section 4.2.2, operation 4).

    Merging is sound only when every coarse-level occurrence is witnessed
    by some fine-level list.  That fails for repeated symbols — the paper's
    s6 example: under (X, Y, Y, X), the sequence <Pentagon, Wheaton,
    Wheaton, Clarendon> occurs at the district level (D10 contains both
    Pentagon and Clarendon) but in no station-level list of the template.
    Without repeated symbols every position maps up independently, so a
    witness always exists; sliced symbols are then handled by filtering
    the fine lists through an ancestor constraint before merging.
    """
    return not template.has_repeated_symbols


def refine_template_to_levels(
    template: PatternTemplate,
    source_levels: Dict[str, str],
    schema: Schema,
) -> PatternTemplate:
    """The fine-level counterpart of *template* used before a merge roll-up.

    Each symbol moves down to its source-index level; a ``fixed`` value at
    the coarse level becomes a ``within`` ancestor constraint so the fine
    lists can be filtered by it.
    """
    out = template
    for symbol in template.symbols:
        src_level = source_levels.get(symbol.name, symbol.level)
        if src_level == symbol.level:
            continue
        within = None
        if symbol.fixed is not None:
            within = (symbol.level, symbol.fixed)
        elif symbol.within is not None:
            within = symbol.within
        out = out.replace_symbol(
            symbol.name,
            PatternSymbol(symbol.name, symbol.attribute, src_level, None, within),
        )
    return out


def coarsen_template(
    fine: PatternTemplate,
    coarse_levels: Dict[str, str],
    schema: Schema,
) -> PatternTemplate:
    """Map a template's symbols up to coarser levels, translating restrictions.

    *coarse_levels* maps symbol name -> target level.  A ``fixed`` value is
    translated up; a ``within`` constraint collapses to ``fixed`` when its
    anchor level equals the target level, and is kept when the anchor is
    still coarser than the target.
    """
    template = fine
    for symbol in fine.symbols:
        target_level = coarse_levels.get(symbol.name, symbol.level)
        if target_level == symbol.level:
            continue
        hierarchy = schema.hierarchy(symbol.attribute)
        fixed: Optional[object] = None
        within: Optional[Tuple[str, object]] = None
        if symbol.fixed is not None:
            fixed = hierarchy.translate(symbol.fixed, symbol.level, target_level)
        elif symbol.within is not None:
            anchor_level, anchor_value = symbol.within
            if anchor_level == target_level:
                fixed = anchor_value
            elif hierarchy.is_coarser(anchor_level, target_level):
                within = symbol.within
            # anchor finer than target: constraint dissolves at this level
        template = template.replace_symbol(
            symbol.name,
            PatternSymbol(
                symbol.name, symbol.attribute, target_level, fixed, within
            ),
        )
    return template


# --------------------------------------------------------------------------
# Index acquisition
# --------------------------------------------------------------------------


def _positions_compatible(
    candidate: PatternTemplate, target: PatternTemplate
) -> bool:
    """Same kind, same symbol-identity pattern, same attributes per position."""
    if candidate.kind != target.kind:
        return False
    if candidate.symbol_ids() != target.symbol_ids():
        return False
    return all(
        c.attribute == t.attribute
        for c, t in zip(candidate.symbols, target.symbols)
    )


def _find_rollup_source(
    group: SequenceGroup,
    template: PatternTemplate,
    schema: Schema,
    registry: IndexRegistry,
) -> Optional[InvertedIndex]:
    """A verified finer-level index the target can be merged from."""
    if not rollup_by_merge_is_valid(template):
        return None
    for index in registry.indices_for_group(group.key):
        source = index.template
        if not index.verified or not _positions_compatible(source, template):
            continue
        if source.has_restricted_symbols:
            continue
        strictly_finer = False
        ok = True
        for src_symbol, dst_symbol in zip(source.symbols, template.symbols):
            if dst_symbol.wildcard or src_symbol.wildcard:
                if dst_symbol.wildcard != src_symbol.wildcard:
                    ok = False
                    break
                continue
            hierarchy = schema.hierarchy(dst_symbol.attribute)
            if src_symbol.level == dst_symbol.level:
                continue
            if hierarchy.is_coarser(dst_symbol.level, src_symbol.level):
                strictly_finer = True
            else:
                ok = False
                break
        if ok and strictly_finer:
            return index
    return None


def _find_refine_source(
    group: SequenceGroup,
    template: PatternTemplate,
    schema: Schema,
    registry: IndexRegistry,
) -> Optional[InvertedIndex]:
    """A verified coarser-level index the target can be refined from."""
    for index in registry.indices_for_group(group.key):
        source = index.template
        if not index.verified or not _positions_compatible(source, template):
            continue
        if source.has_restricted_symbols:
            continue
        strictly_coarser = False
        ok = True
        for src_symbol, dst_symbol in zip(source.symbols, template.symbols):
            if dst_symbol.wildcard or src_symbol.wildcard:
                if dst_symbol.wildcard != src_symbol.wildcard:
                    ok = False
                    break
                continue
            hierarchy = schema.hierarchy(dst_symbol.attribute)
            if src_symbol.level == dst_symbol.level:
                continue
            if hierarchy.is_coarser(src_symbol.level, dst_symbol.level):
                strictly_coarser = True
            else:
                ok = False
                break
        if ok and strictly_coarser:
            return index
    return None


def acquire_index(
    group: SequenceGroup,
    template: PatternTemplate,
    schema: Schema,
    registry: IndexRegistry,
    stats: QueryStats,
) -> InvertedIndex:
    """Obtain a verified index for *template* over *group*.

    Strategy order (cheapest first):

    1. exact / base-filtered registry hit;
    2. P-ROLL-UP merge from a finer-level index (when valid);
    3. P-DRILL-DOWN refinement from a coarser-level index (restricted scan);
    4. the QueryIndices join chain from the longest available prefix;
    5. a from-scratch base build.
    """
    found = registry.find(group.key, template, schema)
    if found is not None and found.verified:
        stats.index_reused = True
        return found

    rollup_source = _find_rollup_source(group, template, schema, registry)
    if rollup_source is not None:
        with span("ii.rollup_merge") as merge_span:
            source_levels = {
                dst.name: src.level
                for src, dst in zip(
                    rollup_source.template.symbols, template.symbols
                )
            }
            fine_template = refine_template_to_levels(
                template, source_levels, schema
            )
            filtered = rollup_source.filter_for(fine_template, schema)
            position_levels = tuple(
                (symbol.attribute, symbol.level)
                for symbol in template.position_symbols()
            )
            merged = filtered.rollup(position_levels, schema, template, stats)
            merge_span.set("lists_out", len(merged))
        registry.put(merged)
        stats.index_reused = True
        return merged

    refine_source = _find_refine_source(group, template, schema, registry)
    if refine_source is not None:
        with span("ii.refine") as refine_span:
            coarse_levels = {
                dst.name: src.level
                for src, dst in zip(
                    refine_source.template.symbols, template.symbols
                )
            }
            coarsened = coarsen_template(template, coarse_levels, schema)
            try:
                filtered = refine_source.filter_for(coarsened, schema)
            except IndexError_:  # pragma: no cover - incompatible shapes
                filtered = refine_source
            refined = refine_index(filtered, template, group, schema, stats)
            refine_span.set("lists_out", len(refined))
        registry.put(refined)
        stats.index_reused = True
        return refined

    return _join_chain(group, template, schema, registry, stats)


def _join_chain(
    group: SequenceGroup,
    template: PatternTemplate,
    schema: Schema,
    registry: IndexRegistry,
    stats: QueryStats,
) -> InvertedIndex:
    """QueryIndices lines 5-9: extend the longest prefix index to length m."""
    m = template.length
    if m == 1:
        with span("ii.build_index", length=1):
            base = build_index(group, base_template(template), schema, stats)
        registry.put(base)
        return base.filter_for(template, schema)

    prefix_hit = registry.longest_prefix(group.key, template, schema)
    if prefix_hit is not None and prefix_hit[0] >= 2:
        current_length, current = prefix_hit
        stats.index_reused = True
    else:
        first_pair = prefix_template(template, 2)
        with span("ii.build_index", length=2):
            base = build_index(group, base_template(first_pair), schema, stats)
        registry.put(base)
        current = base.filter_for(first_pair, schema)
        current_length = 2

    while current_length < m:
        stats.checkpoint()  # cancellation point per join-chain step
        target_prefix = prefix_template(template, current_length + 1)
        pair = pair_template(template, current_length - 1)
        pair_index = registry.find(group.key, pair, schema)
        if pair_index is None:
            # Domain-restricted on-demand build: only candidate sequences
            # (those containing the current prefix) are scanned.
            with span("ii.build_index", length=2, restricted=True):
                pair_index = build_index(
                    group, pair, schema, stats, restrict_sids=current.all_sids()
                )
        with span("ii.join", target_length=current_length + 1):
            candidate = join_indices(
                current, pair_index, target_prefix, schema, stats
            )
        with span("ii.verify", target_length=current_length + 1) as verify_span:
            current = verify_index(candidate, group, schema, stats)
            verify_span.set("lists_out", len(current))
        registry.put(current)
        current_length += 1
    return current


# --------------------------------------------------------------------------
# Counting (QueryIndices lines 10-11)
# --------------------------------------------------------------------------


def count_index(
    index: InvertedIndex,
    group: SequenceGroup,
    spec: CuboidSpec,
    db: EventDatabase,
    stats: QueryStats,
) -> Dict[Tuple[object, ...], Dict[str, object]]:
    """Aggregate each index list into cuboid cell values for one group."""
    matcher = make_matcher(
        spec.template, db.schema, spec.restriction, spec.predicate,
        db=db, stats=stats,
    )
    fast_count = (
        not needs_contents(spec.aggregates)
        and spec.predicate is None
        and spec.restriction is not CellRestriction.ALL_MATCHED
    )
    cells: Dict[Tuple[object, ...], Dict[str, object]] = {}
    if fast_count:
        # Every listed sequence contains the pattern and there is nothing
        # further to verify: COUNT is the list length.
        count_name = spec.aggregates[0].name
        for values, sids in index.lists.items():
            if not sids:
                continue
            cell_key = matcher.cell_key(values)
            entry = cells.setdefault(cell_key, {count_name: 0})
            entry[count_name] += len(sids)  # type: ignore[operator]
        return cells

    # General path: scan each distinct listed sequence once and fold its
    # qualifying assignments, restricted to patterns present in the index.
    wanted = set(index.lists)
    accumulators: Dict[Tuple[object, ...], CellAccumulator] = {}
    for sid in sorted(index.all_sids()):
        sequence = group.by_sid(sid)
        stats.add_scan()
        for cell_key, contents in matcher.assignments(sequence).items():
            if matcher.positions_key(cell_key) not in wanted:
                continue
            accumulator = accumulators.get(cell_key)
            if accumulator is None:
                accumulator = CellAccumulator(spec.aggregates)
                accumulators[cell_key] = accumulator
            for content in contents:
                accumulator.add_assignment(db, sequence, content)
    return {key: acc.results() for key, acc in accumulators.items()}


# --------------------------------------------------------------------------
# Top-level strategy
# --------------------------------------------------------------------------


def inverted_index_cuboid(
    db: EventDatabase,
    groups: SequenceGroupSet,
    spec: CuboidSpec,
    registry: IndexRegistry,
    stats: Optional[QueryStats] = None,
) -> SCuboid:
    """Compute an S-cuboid with the inverted-index strategy."""
    stats = stats if stats is not None else QueryStats()
    stats.strategy = stats.strategy or "II"
    if registry is None:
        raise EngineError("inverted-index strategy requires an index registry")
    slices = spec.sliced_groups()
    cells: Dict[Tuple[Tuple[object, ...], Tuple[object, ...]], Dict[str, object]] = {}
    for group in groups:
        if not group_is_selected(group.key, slices):
            continue
        stats.checkpoint()  # cancellation point per sequence group
        with span("ii.group", key=group.key) as group_span:
            index = acquire_index(
                group, spec.template, db.schema, registry, stats
            )
            with span("ii.count") as count_span:
                group_cells = count_index(index, group, spec, db, stats)
                count_span.set("cells_out", len(group_cells))
            group_span.set("lists", len(index))
        for cell_key, values in group_cells.items():
            cells[(group.key, cell_key)] = values
    return SCuboid(spec, cells)


def precompute_indices(
    groups: SequenceGroupSet,
    templates: List[PatternTemplate],
    schema: Schema,
    registry: IndexRegistry,
) -> QueryStats:
    """Offline precomputation of base indices (the experiments' setup step).

    For each template, the all-distinct unrestricted base variant is built
    per sequence group and registered.  Returns the build statistics.
    """
    stats = QueryStats(strategy="precompute")
    for group in groups:
        for template in templates:
            base = base_template(template)
            if registry.get_exact(group.key, base) is None:
                registry.put(build_index(group, base, schema, stats))
    return stats
