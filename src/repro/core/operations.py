"""The S-OLAP operations (Section 3.3) as pure spec transformations.

Pattern operations:

* :func:`append` / :func:`prepend` — add a symbol at the tail / head of the
  pattern template (growing the S-cuboid's dimensionality when the symbol
  is new);
* :func:`de_tail` / :func:`de_head` — remove the tail / head symbol;
* :func:`p_roll_up` / :func:`p_drill_down` — move one pattern dimension a
  level up / down its concept hierarchy.

Classical operations on global dimensions:

* :func:`roll_up_global` / :func:`drill_down_global` — change a global
  dimension's abstraction level;
* :func:`slice_global` / :func:`dice_global` — fix a global dimension to
  one value / a value set;
* :func:`slice_pattern` (the paper's slice-on-a-cell / subcube selection) —
  fix a pattern dimension to one value.

All functions return a new :class:`CuboidSpec`; the originals are never
mutated, so a navigation session is a pure chain of specs.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Tuple

from repro.core.spec import (
    CuboidSpec,
    MatchingPredicate,
    PatternSymbol,
    PatternTemplate,
)
from repro.errors import OperationError
from repro.events.expression import And, Expr, TruePredicate, conjoin
from repro.events.schema import Schema


def _auto_placeholder(existing: Tuple[str, ...]) -> str:
    """A fresh placeholder name not colliding with existing ones."""
    i = len(existing) + 1
    while f"p{i}" in existing:
        i += 1
    return f"p{i}"


def _extend_predicate(
    predicate: Optional[MatchingPredicate],
    length: int,
    at_end: bool,
    placeholder: Optional[str],
    extra: Optional[Expr],
) -> Optional[MatchingPredicate]:
    """Grow a matching predicate's placeholder list by one position."""
    if predicate is None:
        if extra is None:
            return None
        # Synthesise placeholders for the whole (already grown) template;
        # the new position takes the caller-supplied name so that *extra*
        # can reference it.
        body = tuple(f"p{i + 1}" for i in range(length - 1))
        new_name = placeholder or _auto_placeholder(body)
        placeholders = body + (new_name,) if at_end else (new_name,) + body
        unknown = set(extra.placeholders()) - set(placeholders)
        if unknown:
            raise OperationError(
                f"extra predicate references unknown placeholders {sorted(unknown)}"
            )
        return MatchingPredicate(placeholders, extra)
    new_name = placeholder or _auto_placeholder(predicate.placeholders)
    if new_name in predicate.placeholders:
        raise OperationError(f"placeholder {new_name!r} already in use")
    if at_end:
        placeholders = predicate.placeholders + (new_name,)
    else:
        placeholders = (new_name,) + predicate.placeholders
    expr = predicate.expr if extra is None else conjoin(predicate.expr, extra)
    return MatchingPredicate(placeholders, expr)


def _shrink_predicate(
    predicate: Optional[MatchingPredicate], at_end: bool
) -> Optional[MatchingPredicate]:
    """Drop the tail/head placeholder, pruning conjuncts that reference it.

    Pruning only succeeds when the expression is a flat conjunction (or a
    single term); anything more entangled raises, because silently changing
    predicate semantics would corrupt results.
    """
    if predicate is None:
        return None
    dropped = predicate.placeholders[-1] if at_end else predicate.placeholders[0]
    placeholders = (
        predicate.placeholders[:-1] if at_end else predicate.placeholders[1:]
    )
    expr = predicate.expr
    if dropped not in expr.placeholders():
        return MatchingPredicate(placeholders, expr)
    terms = expr.terms if isinstance(expr, And) else (expr,)
    kept = tuple(t for t in terms if dropped not in t.placeholders())
    if any(
        dropped in t.placeholders() and len(set(t.placeholders())) > 1
        for t in terms
    ):
        raise OperationError(
            f"cannot drop placeholder {dropped!r}: it is entangled with other "
            "placeholders in the matching predicate"
        )
    if isinstance(expr, And) or len(terms) == 1:
        if not kept:
            return MatchingPredicate(placeholders, TruePredicate())
        return MatchingPredicate(placeholders, conjoin(*kept))
    raise OperationError(
        f"cannot automatically prune predicate terms referencing {dropped!r}"
    )


# --------------------------------------------------------------------------
# Pattern-length operations
# --------------------------------------------------------------------------


def _grow(
    spec: CuboidSpec,
    symbol: str,
    attribute: Optional[str],
    level: Optional[str],
    at_end: bool,
    placeholder: Optional[str],
    extra_predicate: Optional[Expr],
    wildcard: bool = False,
) -> CuboidSpec:
    template = spec.template
    known = {s.name for s in template.symbols}
    if symbol in known:
        if wildcard or template.symbol(symbol).wildcard:
            raise OperationError(
                f"wildcard symbol {symbol!r} cannot repeat; add a new one"
            )
        if attribute is not None or level is not None:
            existing = template.symbol(symbol)
            if (attribute or existing.attribute) != existing.attribute or (
                level or existing.level
            ) != existing.level:
                raise OperationError(
                    f"symbol {symbol!r} already bound to "
                    f"{existing.attribute}@{existing.level}"
                )
        symbols = template.symbols
    elif wildcard:
        symbols = template.symbols + (PatternSymbol.any(symbol),)
    else:
        if attribute is None or level is None:
            raise OperationError(
                f"new symbol {symbol!r} requires attribute and level"
            )
        new = PatternSymbol(symbol, attribute, level)
        symbols = template.symbols + (new,)
    positions = (
        template.positions + (symbol,) if at_end else (symbol,) + template.positions
    )
    # Re-derive first-appearance symbol order (PREPEND can change it).
    order: list = []
    for name in positions:
        if name not in order:
            order.append(name)
    by_name = {s.name: s for s in symbols}
    new_template = PatternTemplate(
        kind=template.kind,
        positions=positions,
        symbols=tuple(by_name[name] for name in order),
    )
    predicate = _extend_predicate(
        spec.predicate, new_template.length, at_end, placeholder, extra_predicate
    )
    return replace(spec, template=new_template, predicate=predicate)


def append(
    spec: CuboidSpec,
    symbol: str,
    attribute: Optional[str] = None,
    level: Optional[str] = None,
    placeholder: Optional[str] = None,
    extra_predicate: Optional[Expr] = None,
) -> CuboidSpec:
    """APPEND: add *symbol* to the end of the pattern template.

    An unknown symbol needs its (attribute, level) domain and becomes a new
    pattern dimension; a known symbol just repeats.  The matching
    predicate, if any, gains one placeholder (optionally named) and may be
    strengthened with *extra_predicate*.
    """
    return _grow(spec, symbol, attribute, level, True, placeholder, extra_predicate)


def prepend(
    spec: CuboidSpec,
    symbol: str,
    attribute: Optional[str] = None,
    level: Optional[str] = None,
    placeholder: Optional[str] = None,
    extra_predicate: Optional[Expr] = None,
) -> CuboidSpec:
    """PREPEND: add *symbol* to the front of the pattern template."""
    return _grow(spec, symbol, attribute, level, False, placeholder, extra_predicate)


def _fresh_wildcard_name(spec: CuboidSpec) -> str:
    existing = {s.name for s in spec.template.symbols}
    index = 1
    while f"_w{index}" in existing:
        index += 1
    return f"_w{index}"


def append_wildcard(
    spec: CuboidSpec,
    name: Optional[str] = None,
    placeholder: Optional[str] = None,
    extra_predicate: Optional[Expr] = None,
) -> CuboidSpec:
    """APPEND an ANY position: matches any event, adds no cuboid dimension.

    The wildcard's placeholder can still be constrained through
    *extra_predicate* (e.g. the appended event must be a logout click).
    """
    return _grow(
        spec,
        name or _fresh_wildcard_name(spec),
        None,
        None,
        True,
        placeholder,
        extra_predicate,
        wildcard=True,
    )


def prepend_wildcard(
    spec: CuboidSpec,
    name: Optional[str] = None,
    placeholder: Optional[str] = None,
    extra_predicate: Optional[Expr] = None,
) -> CuboidSpec:
    """PREPEND an ANY position (see :func:`append_wildcard`)."""
    return _grow(
        spec,
        name or _fresh_wildcard_name(spec),
        None,
        None,
        False,
        placeholder,
        extra_predicate,
        wildcard=True,
    )


def _shrink(spec: CuboidSpec, at_end: bool) -> CuboidSpec:
    template = spec.template
    if template.length == 1:
        raise OperationError("cannot shrink a length-1 pattern template")
    positions = template.positions[:-1] if at_end else template.positions[1:]
    order: list = []
    for name in positions:
        if name not in order:
            order.append(name)
    by_name = {s.name: s for s in template.symbols}
    new_template = PatternTemplate(
        kind=template.kind,
        positions=positions,
        symbols=tuple(by_name[name] for name in order),
    )
    predicate = _shrink_predicate(spec.predicate, at_end)
    if predicate is not None and isinstance(predicate.expr, TruePredicate):
        predicate = MatchingPredicate(predicate.placeholders, TruePredicate())
    return replace(spec, template=new_template, predicate=predicate)


def de_tail(spec: CuboidSpec) -> CuboidSpec:
    """DE-TAIL: remove the last symbol of the pattern template."""
    return _shrink(spec, at_end=True)


def de_head(spec: CuboidSpec) -> CuboidSpec:
    """DE-HEAD: remove the first symbol of the pattern template."""
    return _shrink(spec, at_end=False)


# --------------------------------------------------------------------------
# Pattern-level operations
# --------------------------------------------------------------------------


def p_roll_up(spec: CuboidSpec, symbol: str, schema: Schema) -> CuboidSpec:
    """P-ROLL-UP: move pattern dimension *symbol* one level up its hierarchy."""
    current = spec.template.symbol(symbol)
    if current.wildcard:
        raise OperationError(f"wildcard {symbol!r} has no abstraction levels")
    hierarchy = schema.hierarchy(current.attribute)
    coarser = hierarchy.coarser_level(current.level)
    if coarser is None:
        raise OperationError(
            f"symbol {symbol!r} is already at the top level "
            f"{current.level!r} of {current.attribute!r}"
        )
    fixed = None
    within = None
    if current.fixed is not None:
        fixed = hierarchy.translate(current.fixed, current.level, coarser)
    elif current.within is not None:
        anchor_level, anchor_value = current.within
        if anchor_level == coarser:
            fixed = anchor_value
        elif hierarchy.is_coarser(anchor_level, coarser):
            within = current.within
    new_symbol = PatternSymbol(symbol, current.attribute, coarser, fixed, within)
    return replace(spec, template=spec.template.replace_symbol(symbol, new_symbol))


def p_drill_down(spec: CuboidSpec, symbol: str, schema: Schema) -> CuboidSpec:
    """P-DRILL-DOWN: move pattern dimension *symbol* one level down.

    A sliced (fixed) symbol turns into an ancestor constraint: the finer
    values must roll up to the sliced value — e.g. slicing Y to "Legwear"
    at page-category and drilling down makes Y range over the Legwear raw
    pages (the paper's Qb).
    """
    current = spec.template.symbol(symbol)
    if current.wildcard:
        raise OperationError(f"wildcard {symbol!r} has no abstraction levels")
    hierarchy = schema.hierarchy(current.attribute)
    finer = hierarchy.finer_level(current.level)
    if finer is None:
        raise OperationError(
            f"symbol {symbol!r} is already at the base level "
            f"{current.level!r} of {current.attribute!r}"
        )
    fixed = None
    within = current.within
    if current.fixed is not None:
        within = (current.level, current.fixed)
    new_symbol = PatternSymbol(symbol, current.attribute, finer, fixed, within)
    return replace(spec, template=spec.template.replace_symbol(symbol, new_symbol))


def slice_pattern(spec: CuboidSpec, symbol: str, value: object) -> CuboidSpec:
    """Slice on a pattern dimension: fix *symbol* to *value* (subcube select)."""
    current = spec.template.symbol(symbol)
    if current.wildcard:
        raise OperationError(f"wildcard {symbol!r} cannot be sliced")
    new_symbol = PatternSymbol(
        symbol, current.attribute, current.level, fixed=value, within=None
    )
    return replace(spec, template=spec.template.replace_symbol(symbol, new_symbol))


def unslice_pattern(spec: CuboidSpec, symbol: str) -> CuboidSpec:
    """Remove a pattern-dimension slice (and any ancestor constraint)."""
    current = spec.template.symbol(symbol)
    new_symbol = PatternSymbol(symbol, current.attribute, current.level)
    return replace(spec, template=spec.template.replace_symbol(symbol, new_symbol))


# --------------------------------------------------------------------------
# Global-dimension operations
# --------------------------------------------------------------------------


def _global_index(spec: CuboidSpec, attribute: str) -> int:
    for index, (attr, __) in enumerate(spec.group_by):
        if attr == attribute:
            return index
    raise OperationError(f"{attribute!r} is not a global dimension")


def roll_up_global(spec: CuboidSpec, attribute: str, schema: Schema) -> CuboidSpec:
    """Roll-up: move global dimension *attribute* one level up."""
    index = _global_index(spec, attribute)
    attr, level = spec.group_by[index]
    hierarchy = schema.hierarchy(attr)
    coarser = hierarchy.coarser_level(level)
    if coarser is None:
        raise OperationError(f"{attribute!r} already at top level {level!r}")
    group_by = tuple(
        (attr, coarser) if i == index else pair
        for i, pair in enumerate(spec.group_by)
    )
    global_slice = []
    for slice_index, value in spec.global_slice:
        if slice_index == index:
            if isinstance(value, tuple):
                value = tuple(
                    hierarchy.translate(v, level, coarser) for v in value
                )
            else:
                value = hierarchy.translate(value, level, coarser)
        global_slice.append((slice_index, value))
    return replace(spec, group_by=group_by, global_slice=tuple(global_slice))


def drill_down_global(spec: CuboidSpec, attribute: str, schema: Schema) -> CuboidSpec:
    """Drill-down: move global dimension *attribute* one level down.

    A slice on that dimension cannot be refined automatically and raises;
    remove the slice first.
    """
    index = _global_index(spec, attribute)
    attr, level = spec.group_by[index]
    hierarchy = schema.hierarchy(attr)
    finer = hierarchy.finer_level(level)
    if finer is None:
        raise OperationError(f"{attribute!r} already at base level {level!r}")
    if any(slice_index == index for slice_index, __ in spec.global_slice):
        raise OperationError(
            f"global dimension {attribute!r} is sliced; remove the slice "
            "before drilling down"
        )
    group_by = tuple(
        (attr, finer) if i == index else pair
        for i, pair in enumerate(spec.group_by)
    )
    return replace(spec, group_by=group_by)


def slice_global(spec: CuboidSpec, attribute: str, value: object) -> CuboidSpec:
    """Slice: keep only sequence groups whose *attribute* equals *value*."""
    index = _global_index(spec, attribute)
    others = tuple(
        (i, v) for i, v in spec.global_slice if i != index
    )
    return replace(spec, global_slice=others + ((index, value),))


def dice_global(
    spec: CuboidSpec, attribute: str, values: Tuple[object, ...]
) -> CuboidSpec:
    """Dice: keep sequence groups whose *attribute* is in *values*."""
    index = _global_index(spec, attribute)
    others = tuple((i, v) for i, v in spec.global_slice if i != index)
    return replace(spec, global_slice=others + ((index, tuple(values)),))


def unslice_global(spec: CuboidSpec, attribute: str) -> CuboidSpec:
    """Remove a slice/dice on a global dimension."""
    index = _global_index(spec, attribute)
    return replace(
        spec,
        global_slice=tuple((i, v) for i, v in spec.global_slice if i != index),
    )
