"""The counter-based (CB) S-cuboid construction strategy (Section 4.2.1).

CB is the paper's baseline (procedure CounterBased, Figure 7): one pass over
every sequence of every selected sequence group, enumerating each sequence's
qualifying cell assignments and bumping per-cell accumulators.  It builds no
auxiliary structures, so every query — including each step of an iterative
session — rescans the whole dataset.  Its strength is simplicity and
single-pass behaviour when the counter space fits in memory.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.core.aggregates import CellAccumulator
from repro.core.cuboid import SCuboid
from repro.core.matcher import make_matcher
from repro.core.spec import CuboidSpec
from repro.core.stats import QueryStats
from repro.events.database import EventDatabase
from repro.events.sequence import Sequence, SequenceGroup, SequenceGroupSet
from repro.obs.spans import span

#: cells accumulator table: (group key, cell key) -> CellAccumulator
CellTable = Dict[Tuple[Tuple[object, ...], Tuple[object, ...]], CellAccumulator]


def group_is_selected(
    group_key: Tuple[object, ...], slices: Dict[int, object]
) -> bool:
    """Apply global-dimension slices/dices to a sequence-group key.

    A scalar slice value requires equality; a tuple (from dice) requires
    membership.
    """
    for index, value in slices.items():
        if isinstance(value, tuple):
            if group_key[index] not in value:
                return False
        elif group_key[index] != value:
            return False
    return True


def selected_sequences(
    groups: SequenceGroupSet, slices: Dict[int, object]
) -> Iterator[Tuple[SequenceGroup, Sequence]]:
    """The canonical scan order of the CB procedure: every sequence of every
    selected group, group-major.

    Both the serial scan below and the sharded parallel scan
    (:mod:`repro.service.parallel`) iterate exactly this order, which is what
    makes their results bit-identical — accumulator folds happen in the same
    sequence order either way.
    """
    for group in groups:
        if not group_is_selected(group.key, slices):
            continue
        for sequence in group:
            yield group, sequence


def fold_assignments(
    db: EventDatabase,
    spec: CuboidSpec,
    cells: CellTable,
    group: SequenceGroup,
    sequence: Sequence,
    assignments: Dict[Tuple[object, ...], list],
) -> None:
    """Fold one sequence's qualifying cell assignments into *cells*."""
    for cell_key, contents in assignments.items():
        accumulator = cells.get((group.key, cell_key))
        if accumulator is None:
            accumulator = CellAccumulator(spec.aggregates)
            cells[(group.key, cell_key)] = accumulator
        for content in contents:
            accumulator.add_assignment(db, sequence, content)


def finalize_cells(spec: CuboidSpec, cells: CellTable) -> SCuboid:
    """Materialise an :class:`SCuboid` from a finished accumulator table."""
    return SCuboid(
        spec,
        {key: accumulator.results() for key, accumulator in cells.items()},
    )


def counter_based_cuboid(
    db: EventDatabase,
    groups: SequenceGroupSet,
    spec: CuboidSpec,
    stats: Optional[QueryStats] = None,
) -> SCuboid:
    """Compute an S-cuboid by scanning every sequence (procedure Figure 7).

    The paper's procedure runs once per sequence group; here the group loop
    is internal so one call yields the full (q+n)-dimensional cuboid.
    """
    stats = stats if stats is not None else QueryStats()
    stats.strategy = stats.strategy or "CB"
    matcher = make_matcher(
        spec.template, db.schema, spec.restriction, spec.predicate,
        db=db, stats=stats,
    )
    slices = spec.sliced_groups()
    cells: CellTable = {}

    kernel = stats.extra.get("matcher", "legacy")
    match_span = "match.encoded" if kernel == "compiled" else "match.legacy"
    with span("cb.scan") as scan_span:
        scan_span.set("kernel", kernel)
        scanned_before = stats.sequences_scanned
        with span(match_span) as m_span:
            for group, sequence in selected_sequences(groups, slices):
                stats.add_scan()
                assignments = matcher.assignments(sequence)
                if assignments:
                    fold_assignments(db, spec, cells, group, sequence, assignments)
            m_span.set(
                "sequences_scanned", stats.sequences_scanned - scanned_before
            )
        scan_span.set(
            "sequences_scanned", stats.sequences_scanned - scanned_before
        )
        scan_span.set("cells_out", len(cells))

    stats.checkpoint()
    return finalize_cells(spec, cells)
