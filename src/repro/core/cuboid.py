"""The S-cuboid result object: a sparse (q+n)-dimensional array of cells.

A cell is addressed by ``(group_key, cell_key)`` where ``group_key`` holds
the q global-dimension values and ``cell_key`` the n pattern-dimension
values.  Cells with no assignment are simply absent (count 0), matching the
paper's observation that S-cuboids are typically very sparse.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.spec import CuboidSpec

GroupKey = Tuple[object, ...]
CellKey = Tuple[object, ...]
CellValues = Dict[str, object]


class SCuboid:
    """A computed sequence cuboid."""

    def __init__(
        self,
        spec: CuboidSpec,
        cells: Dict[Tuple[GroupKey, CellKey], CellValues],
    ):
        self.spec = spec
        self.cells = cells

    # ------------------------------------------------------------------
    # Basic access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of non-empty cells."""
        return len(self.cells)

    def __iter__(self) -> Iterator[Tuple[GroupKey, CellKey, CellValues]]:
        for (group_key, cell_key) in sorted(self.cells, key=repr):
            yield group_key, cell_key, self.cells[(group_key, cell_key)]

    def value(
        self,
        cell_key: CellKey,
        group_key: GroupKey = (),
        aggregate: Optional[str] = None,
    ) -> object:
        """One aggregate value of one cell (0/None for absent cells)."""
        aggregate = aggregate or self.spec.aggregates[0].name
        values = self.cells.get((group_key, cell_key))
        if values is None:
            return 0 if aggregate.startswith("COUNT") else None
        return values.get(aggregate)

    def count(self, cell_key: CellKey, group_key: GroupKey = ()) -> int:
        """COUNT(*) of one cell (0 for absent cells)."""
        return int(self.value(cell_key, group_key, "COUNT(*)") or 0)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def group_keys(self) -> Tuple[GroupKey, ...]:
        """Distinct global-dimension keys present in the cuboid."""
        return tuple(sorted({g for g, __ in self.cells}, key=repr))

    def cell_keys(self, group_key: Optional[GroupKey] = None) -> Tuple[CellKey, ...]:
        """Distinct pattern keys (optionally within one group)."""
        if group_key is None:
            keys = {c for __, c in self.cells}
        else:
            keys = {c for g, c in self.cells if g == group_key}
        return tuple(sorted(keys, key=repr))

    def total(self, aggregate: str = "COUNT(*)") -> float:
        """Sum of one aggregate over all cells."""
        return sum(
            values.get(aggregate) or 0 for values in self.cells.values()
        )  # type: ignore[arg-type]

    def top_cells(
        self, k: int = 10, aggregate: str = "COUNT(*)"
    ) -> List[Tuple[GroupKey, CellKey, object]]:
        """The k cells with the largest aggregate value, descending."""
        ranked = sorted(
            (
                (group_key, cell_key, values.get(aggregate) or 0)
                for (group_key, cell_key), values in self.cells.items()
            ),
            key=lambda item: (-float(item[2]), repr(item[:2])),  # type: ignore[arg-type]
        )
        return ranked[:k]

    def argmax(
        self, aggregate: str = "COUNT(*)"
    ) -> Optional[Tuple[GroupKey, CellKey, object]]:
        """The single heaviest cell, or None on an empty cuboid."""
        top = self.top_cells(1, aggregate)
        return top[0] if top else None

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def restrict(
        self,
        group_key: Optional[GroupKey] = None,
        cell_prefix: Optional[Tuple[object, ...]] = None,
    ) -> "SCuboid":
        """A sub-view: keep cells matching a group key and/or a cell prefix.

        This is a *display* convenience (the engine implements slice/dice by
        rewriting the spec); it does not change the spec of the view.
        """
        kept = {
            key: values
            for key, values in self.cells.items()
            if (group_key is None or key[0] == group_key)
            and (cell_prefix is None or key[1][: len(cell_prefix)] == cell_prefix)
        }
        return SCuboid(self.spec, kept)

    # ------------------------------------------------------------------
    # Tabulation
    # ------------------------------------------------------------------
    def rows(self) -> List[Tuple]:
        """Tabulated rows: (*group values, *pattern values, *aggregates)."""
        agg_names = [spec.name for spec in self.spec.aggregates]
        out = []
        for group_key, cell_key, values in self:
            out.append(
                tuple(group_key)
                + tuple(cell_key)
                + tuple(values.get(name) for name in agg_names)
            )
        return out

    def header(self) -> Tuple[str, ...]:
        """Column names matching :meth:`rows`."""
        globals_ = tuple(f"{attr}@{level}" for attr, level in self.spec.group_by)
        patterns = tuple(
            f"{symbol.name}({symbol.attribute}@{symbol.level})"
            for symbol in self.spec.pattern_dims
        )
        aggregates = tuple(spec.name for spec in self.spec.aggregates)
        return globals_ + patterns + aggregates

    def tabulate(self, limit: int = 20, sort_by_count: bool = True) -> str:
        """A fixed-width text table of the cuboid (like the paper's Fig. 2)."""
        header = self.header()
        agg_names = [spec.name for spec in self.spec.aggregates]
        if sort_by_count:
            keys = [
                (g, c) for g, c, __ in self.top_cells(limit or len(self.cells))
            ]
        else:
            keys = sorted(self.cells, key=repr)[: limit or None]
        body = [
            tuple(g) + tuple(c) + tuple(self.cells[(g, c)].get(n) for n in agg_names)
            for g, c in keys
        ]
        str_rows = [tuple(str(v) for v in row) for row in body]
        widths = [
            max([len(h)] + [len(row[i]) for row in str_rows])
            for i, h in enumerate(header)
        ]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in str_rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        omitted = len(self.cells) - len(str_rows)
        if omitted > 0:
            lines.append(f"... ({omitted} more cells)")
        return "\n".join(lines)

    def to_dict(self) -> Dict[Tuple[GroupKey, CellKey], CellValues]:
        """A plain-dict copy of the cell map (for comparisons in tests)."""
        return {key: dict(values) for key, values in self.cells.items()}

    def to_csv(self, path: str, sort_by_count: bool = True) -> int:
        """Write the tabulated cuboid to a CSV file; returns rows written."""
        import csv

        agg_names = [spec.name for spec in self.spec.aggregates]
        if sort_by_count:
            keys = [(g, c) for g, c, __ in self.top_cells(len(self.cells))]
        else:
            keys = sorted(self.cells, key=repr)
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.header())
            for g, c in keys:
                values = self.cells[(g, c)]
                writer.writerow(
                    list(g) + list(c) + [values.get(n) for n in agg_names]
                )
        return len(keys)

    def __repr__(self) -> str:
        return (
            f"SCuboid({len(self.cells)} cells, "
            f"{len(self.spec.group_by)} global dims, "
            f"{self.spec.template.n_dims} pattern dims)"
        )
