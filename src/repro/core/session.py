"""Interactive navigation sessions: iterative S-OLAP queries with history.

A :class:`Session` wraps an engine and a current spec, exposes the six
S-OLAP operations plus the classical ones as methods, executes after each
step, and keeps the full navigation history — the workflow of the paper's
transport-planning manager (Q1 → slice → APPEND → ...) and of the
experiments' query sets.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core import operations as ops
from repro.core.cuboid import SCuboid
from repro.core.engine import SOLAPEngine
from repro.core.spec import CuboidSpec
from repro.core.stats import QueryStats
from repro.errors import OperationError
from repro.events.expression import Expr


class Session:
    """One iterative exploration: a chain of (spec, cuboid, stats) steps."""

    def __init__(
        self, engine: SOLAPEngine, spec: CuboidSpec, strategy: str = "auto"
    ):
        self.engine = engine
        self.strategy = strategy
        self.history: List[Tuple[CuboidSpec, SCuboid, QueryStats]] = []
        self._spec = spec
        self._cuboid: Optional[SCuboid] = None

    # ------------------------------------------------------------------
    @property
    def spec(self) -> CuboidSpec:
        """The current specification."""
        return self._spec

    @property
    def cuboid(self) -> SCuboid:
        """The current result (executing first if needed)."""
        if self._cuboid is None:
            self.run()
        assert self._cuboid is not None
        return self._cuboid

    def run(self) -> Tuple[SCuboid, QueryStats]:
        """Execute the current spec and record it in the history."""
        cuboid, stats = self.engine.execute(self._spec, self.strategy)
        self._cuboid = cuboid
        self.history.append((self._spec, cuboid, stats))
        return cuboid, stats

    def _transform(self, new_spec: CuboidSpec) -> "Session":
        self._spec = new_spec
        self._cuboid = None
        return self

    def replace_spec(self, new_spec: CuboidSpec) -> "Session":
        """Swap in an externally built spec (escape hatch for transforms
        the operation methods do not cover, e.g. custom within-constraints)."""
        return self._transform(new_spec)

    # ------------------------------------------------------------------
    # The six S-OLAP operations
    # ------------------------------------------------------------------
    def append(
        self,
        symbol: str,
        attribute: Optional[str] = None,
        level: Optional[str] = None,
        placeholder: Optional[str] = None,
        extra_predicate: Optional[Expr] = None,
    ) -> "Session":
        return self._transform(
            ops.append(self._spec, symbol, attribute, level, placeholder, extra_predicate)
        )

    def prepend(
        self,
        symbol: str,
        attribute: Optional[str] = None,
        level: Optional[str] = None,
        placeholder: Optional[str] = None,
        extra_predicate: Optional[Expr] = None,
    ) -> "Session":
        return self._transform(
            ops.prepend(self._spec, symbol, attribute, level, placeholder, extra_predicate)
        )

    def de_tail(self) -> "Session":
        return self._transform(ops.de_tail(self._spec))

    def de_head(self) -> "Session":
        return self._transform(ops.de_head(self._spec))

    def p_roll_up(self, symbol: str) -> "Session":
        return self._transform(
            ops.p_roll_up(self._spec, symbol, self.engine.db.schema)
        )

    def p_drill_down(self, symbol: str) -> "Session":
        return self._transform(
            ops.p_drill_down(self._spec, symbol, self.engine.db.schema)
        )

    # ------------------------------------------------------------------
    # Classical operations
    # ------------------------------------------------------------------
    def slice_pattern(self, symbol: str, value: object) -> "Session":
        return self._transform(ops.slice_pattern(self._spec, symbol, value))

    def unslice_pattern(self, symbol: str) -> "Session":
        return self._transform(ops.unslice_pattern(self._spec, symbol))

    def slice_cell(self, cell_key: Tuple[object, ...]) -> "Session":
        """Slice every pattern dimension at once (select one cuboid cell)."""
        if len(cell_key) != self._spec.template.n_dims:
            raise OperationError(
                f"cell key has {len(cell_key)} values; template has "
                f"{self._spec.template.n_dims} pattern dimensions"
            )
        spec = self._spec
        for symbol, value in zip(self._spec.template.cell_symbols, cell_key):
            spec = ops.slice_pattern(spec, symbol.name, value)
        return self._transform(spec)

    def roll_up(self, attribute: str) -> "Session":
        return self._transform(
            ops.roll_up_global(self._spec, attribute, self.engine.db.schema)
        )

    def drill_down(self, attribute: str) -> "Session":
        return self._transform(
            ops.drill_down_global(self._spec, attribute, self.engine.db.schema)
        )

    def slice_global(self, attribute: str, value: object) -> "Session":
        return self._transform(ops.slice_global(self._spec, attribute, value))

    def dice_global(self, attribute: str, values: Tuple[object, ...]) -> "Session":
        return self._transform(ops.dice_global(self._spec, attribute, values))

    def unslice_global(self, attribute: str) -> "Session":
        return self._transform(ops.unslice_global(self._spec, attribute))

    # ------------------------------------------------------------------
    def explain(self):
        """The execution plan for the current spec (without executing)."""
        from repro.core.explain import explain as explain_fn

        return explain_fn(self.engine, self._spec)

    # ------------------------------------------------------------------
    def cumulative_stats(self) -> QueryStats:
        """Fold the stats of every executed step (Figure 16 reporting)."""
        total = QueryStats(strategy=self.strategy)
        for __, __unused, stats in self.history:
            total.merge(stats)
        return total

    def __repr__(self) -> str:
        return f"Session({len(self.history)} steps, strategy={self.strategy!r})"
