"""Pattern matching: occurrences, cell restrictions, matching predicates.

This module implements step 5 of S-cuboid construction (*pattern grouping*,
Section 3.2).  Given a data sequence and a pattern template it enumerates
*occurrences* — positions whose level-mapped symbol values instantiate the
template — and turns them into *cell assignments* under the three cell
restrictions:

* ``LEFT-MAXIMALITY`` (matched-go): per cell, only the first occurrence that
  matches the template **and** satisfies the matching predicate is assigned.
  This makes COUNT a per-cell sequence count and is the semantics both the
  counter-based and the inverted-index strategies must agree on.
* ``LEFT-MAXIMALITY-DATA`` (data-go): as above, but the assigned content is
  the whole data sequence.
* ``ALL-MATCHED``: every qualifying occurrence is assigned.

Occurrences are enumerated in left-to-right order: contiguous windows for
``SUBSTRING`` templates, depth-first index selection (lexicographic index
order) for ``SUBSEQUENCE`` templates.  Subsequence enumeration is
exponential in the worst case — the paper's prototype shares this property —
but template lengths in practice are small (≤ 6).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.spec import (
    CellRestriction,
    MatchingPredicate,
    PatternKind,
    PatternSymbol,
    PatternTemplate,
)
from repro.errors import MatchLimitExceeded
from repro.events.expression import BindingContext
from repro.events.schema import Schema
from repro.events.sequence import Sequence

#: process-wide default cap on occurrences enumerated per sequence
#: (None = unlimited).  Subsequence enumeration is combinatorial; set a
#: cap to fail fast on pathological data instead of hanging.
_default_occurrence_limit: Optional[int] = None


def set_default_occurrence_limit(limit: Optional[int]) -> Optional[int]:
    """Set the process-wide per-sequence occurrence cap; returns the old one."""
    global _default_occurrence_limit
    previous = _default_occurrence_limit
    _default_occurrence_limit = limit
    return previous


def get_default_occurrence_limit() -> Optional[int]:
    """The process-wide per-sequence occurrence cap (None = unlimited).

    Scan coordinators read this to replicate the cap on worker processes,
    which do not share this module's global (spawn starts fresh
    interpreters; fork freezes the value at pool-creation time).
    """
    return _default_occurrence_limit


class occurrence_limit:
    """Context manager scoping the default occurrence cap.

    >>> with occurrence_limit(10_000):
    ...     engine.execute(spec)
    """

    def __init__(self, limit: Optional[int]):
        self.limit = limit
        self._previous: Optional[int] = None

    def __enter__(self) -> "occurrence_limit":
        self._previous = set_default_occurrence_limit(self.limit)
        return self

    def __exit__(self, *exc_info) -> None:
        set_default_occurrence_limit(self._previous)

#: An occurrence: the instantiated value at each template position plus the
#: (0-based, increasing) event positions within the sequence it occupies.
Occurrence = Tuple[Tuple[object, ...], Tuple[int, ...]]

#: Assigned cell content: the database row indices of the assigned events.
Content = Tuple[int, ...]


def _symbol_value_ok(symbol: PatternSymbol, value: object, schema: Schema) -> bool:
    """Check a candidate symbol value against fixed / within restrictions."""
    if symbol.wildcard:
        return True
    if symbol.fixed is not None and value != symbol.fixed:
        return False
    if symbol.within is not None:
        ancestor_level, ancestor_value = symbol.within
        hierarchy = schema.hierarchy(symbol.attribute)
        # ``value`` is at symbol.level; map a representative base value up.
        # Levels map from the base, so we need a base value; here we rely on
        # symbol tuples being computed from base values, hence we re-map via
        # the hierarchy's children only when level == base.  For non-base
        # symbol levels we test by comparing the ancestor of the value's
        # children; in practice within-constraints are produced by
        # P-DRILL-DOWN, which always lands on a finer level, and the check
        # below covers the common dict-mapped case.
        if symbol.level == hierarchy.base_level:
            return hierarchy.map_value(value, ancestor_level) == ancestor_value
        children = hierarchy.children(symbol.level, value)
        if not children:
            return False
        return hierarchy.map_value(children[0], ancestor_level) == ancestor_value
    return True


class TemplateMatcher:
    """Occurrence enumeration and cell assignment for one template.

    A matcher is constructed once per (template, restriction, predicate)
    triple and reused across sequences; it precomputes per-position symbol
    metadata so the per-sequence work is a tight loop.
    """

    def __init__(
        self,
        template: PatternTemplate,
        schema: Schema,
        restriction: CellRestriction = CellRestriction.LEFT_MAXIMALITY,
        predicate: Optional[MatchingPredicate] = None,
        occurrence_cap: Optional[int] = None,
    ):
        self.template = template
        self.schema = schema
        self.restriction = restriction
        self.predicate = predicate
        #: per-sequence enumeration cap (falls back to the process default)
        self.occurrence_cap = occurrence_cap
        self._position_symbols = template.position_symbols()
        self._symbol_ids = template.symbol_ids()
        self._m = template.length
        #: number of distinct symbols (wildcards included; binding array size)
        self._n = len(template.symbols)
        #: first position at which each symbol appears, in symbol order
        self._first_position: List[int] = []
        seen: Dict[int, int] = {}
        for position, dim in enumerate(self._symbol_ids):
            if dim not in seen:
                seen[dim] = position
                self._first_position.append(position)
        #: first positions of the *cell* (non-wildcard) dimensions only
        self._cell_first_positions: List[int] = [
            self._first_position[dim]
            for dim, symbol in enumerate(template.symbols)
            if not symbol.wildcard
        ]

    # ------------------------------------------------------------------
    # Symbol extraction
    # ------------------------------------------------------------------
    def symbol_tuples(self, sequence: Sequence) -> List[Tuple[object, ...]]:
        """Level-mapped symbol values per template position for *sequence*.

        Wildcard positions yield ``None`` everywhere: they bind no value,
        so every comparison against them is vacuous by construction.
        """
        none_row: Optional[Tuple[object, ...]] = None
        rows: List[Tuple[object, ...]] = []
        for symbol in self._position_symbols:
            if symbol.wildcard:
                if none_row is None:
                    none_row = (None,) * len(sequence)
                rows.append(none_row)
            else:
                rows.append(sequence.symbols(symbol.attribute, symbol.level))
        return rows

    # ------------------------------------------------------------------
    # Occurrence enumeration
    # ------------------------------------------------------------------
    def iter_occurrences(self, sequence: Sequence) -> Iterator[Occurrence]:
        """All template occurrences in *sequence*, in left-to-right order.

        An occurrence satisfies symbol-equality (repeated symbols bind the
        same value) and every symbol restriction (fixed / within), but is
        **not** yet checked against the matching predicate.
        """
        if len(sequence) < self._m:
            return
        if self.template.kind is PatternKind.SUBSTRING:
            source = self._iter_substring(sequence)
        else:
            source = self._iter_subsequence(sequence)
        cap = (
            self.occurrence_cap
            if self.occurrence_cap is not None
            else _default_occurrence_limit
        )
        if cap is None:
            yield from source
            return
        count = 0
        for occurrence in source:
            count += 1
            if count > cap:
                raise MatchLimitExceeded(
                    f"sequence sid={sequence.sid} exceeded the occurrence cap "
                    f"of {cap} for template {self.template.positions} "
                    f"({self.template.kind.value}); raise the cap or use a "
                    "more selective template"
                )
            yield occurrence

    def _iter_substring(self, sequence: Sequence) -> Iterator[Occurrence]:
        symbol_tuples = self.symbol_tuples(sequence)
        m = self._m
        n_events = len(sequence)
        position_symbols = self._position_symbols
        symbol_ids = self._symbol_ids
        schema = self.schema
        for start in range(n_events - m + 1):
            bound: List[object] = [None] * self._n
            bound_set = [False] * self._n
            ok = True
            for offset in range(m):
                value = symbol_tuples[offset][start + offset]
                dim = symbol_ids[offset]
                if bound_set[dim]:
                    if bound[dim] != value:
                        ok = False
                        break
                else:
                    if not _symbol_value_ok(position_symbols[offset], value, schema):
                        ok = False
                        break
                    bound[dim] = value
                    bound_set[dim] = True
            if ok:
                values = tuple(
                    symbol_tuples[offset][start + offset] for offset in range(m)
                )
                yield values, tuple(range(start, start + m))

    def _iter_subsequence(self, sequence: Sequence) -> Iterator[Occurrence]:
        symbol_tuples = self.symbol_tuples(sequence)
        m = self._m
        n_events = len(sequence)
        symbol_ids = self._symbol_ids
        position_symbols = self._position_symbols
        schema = self.schema
        indices: List[int] = [0] * m
        values: List[object] = [None] * m

        def extend(offset: int, start: int) -> Iterator[Occurrence]:
            if offset == m:
                yield tuple(values), tuple(indices)
                return
            # Prune: not enough events left for the remaining positions.
            for index in range(start, n_events - (m - offset - 1)):
                value = symbol_tuples[offset][index]
                dim = symbol_ids[offset]
                earlier = self._first_occurrence_offset(offset, dim)
                if earlier is not None:
                    if values[earlier] != value:
                        continue
                elif not _symbol_value_ok(position_symbols[offset], value, schema):
                    continue
                indices[offset] = index
                values[offset] = value
                yield from extend(offset + 1, index + 1)

        yield from extend(0, 0)

    def _first_occurrence_offset(self, offset: int, dim: int) -> Optional[int]:
        """The earlier position binding *dim*, or None if *offset* is first."""
        first = self._first_position[dim]
        return first if first < offset else None

    # ------------------------------------------------------------------
    # Predicate evaluation
    # ------------------------------------------------------------------
    def occurrence_qualifies(self, sequence: Sequence, occurrence: Occurrence) -> bool:
        """Evaluate the matching predicate over the occurrence's events."""
        if self.predicate is None:
            return True
        __, indices = occurrence
        bindings = {
            placeholder: sequence.event(index)
            for placeholder, index in zip(self.predicate.placeholders, indices)
        }
        return self.predicate.expr.evaluate(BindingContext(bindings))

    # ------------------------------------------------------------------
    # Cell keys
    # ------------------------------------------------------------------
    def cell_key(self, values: Tuple[object, ...]) -> Tuple[object, ...]:
        """Pattern-dimension key (n values) from per-position values (m).

        Wildcard positions carry no dimension and are dropped.
        """
        return tuple(values[position] for position in self._cell_first_positions)

    def positions_key(self, cell_key: Tuple[object, ...]) -> Tuple[object, ...]:
        """Per-position values (m) from a pattern-dimension key (n).

        Wildcard positions reconstruct as ``None`` — exactly the value the
        matcher records for them, so keys round-trip.
        """
        dim_to_cell: Dict[int, int] = {}
        for dim, symbol in enumerate(self.template.symbols):
            if not symbol.wildcard:
                dim_to_cell[dim] = len(dim_to_cell)
        return tuple(
            None
            if self.template.symbols[dim].wildcard
            else cell_key[dim_to_cell[dim]]
            for dim in self._symbol_ids
        )

    # ------------------------------------------------------------------
    # Cell assignment under a restriction
    # ------------------------------------------------------------------
    def assignments(self, sequence: Sequence) -> Dict[Tuple[object, ...], List[Content]]:
        """Cell → assigned contents for *sequence* under the restriction.

        Keys are pattern-dimension tuples (length n); values are lists of
        assigned contents (database row tuples).  Under left-maximality the
        list has exactly one entry per cell.
        """
        result: Dict[Tuple[object, ...], List[Content]] = {}
        all_matched = self.restriction is CellRestriction.ALL_MATCHED
        data_go = self.restriction is CellRestriction.LEFT_MAXIMALITY_DATA
        for values, indices in self.iter_occurrences(sequence):
            key = self.cell_key(values)
            if not all_matched and key in result:
                continue
            if not self.occurrence_qualifies(sequence, (values, indices)):
                continue
            if data_go:
                content: Content = tuple(sequence.rows)
            else:
                content = tuple(sequence.rows[index] for index in indices)
            result.setdefault(key, []).append(content)
        return result

    def matched_cells(self, sequence: Sequence) -> List[Tuple[object, ...]]:
        """Distinct cell keys with at least one qualifying occurrence."""
        return list(self.assignments(sequence))

    # ------------------------------------------------------------------
    # Per-cell queries (used by the inverted-index strategy)
    # ------------------------------------------------------------------
    def contains_instantiation(
        self, sequence: Sequence, position_values: Tuple[object, ...]
    ) -> bool:
        """Template-only containment of a *specific* instantiation.

        Used by the join-verification step: the predicate is deliberately
        not applied here (the paper verifies σ and ρ only at counting time).
        """
        return self._first_pattern_occurrence(sequence, position_values) is not None

    def cell_contents(
        self, sequence: Sequence, position_values: Tuple[object, ...]
    ) -> List[Content]:
        """Assigned contents of *sequence* for one specific cell.

        Applies the matching predicate and the cell restriction, exactly as
        :meth:`assignments` does, but only for the given instantiation.
        """
        contents: List[Content] = []
        all_matched = self.restriction is CellRestriction.ALL_MATCHED
        data_go = self.restriction is CellRestriction.LEFT_MAXIMALITY_DATA
        for occurrence in self._iter_pattern_occurrences(sequence, position_values):
            if not self.occurrence_qualifies(sequence, occurrence):
                continue
            __, indices = occurrence
            if data_go:
                contents.append(tuple(sequence.rows))
            else:
                contents.append(tuple(sequence.rows[i] for i in indices))
            if not all_matched:
                break
        return contents

    def _iter_pattern_occurrences(
        self, sequence: Sequence, position_values: Tuple[object, ...]
    ) -> Iterator[Occurrence]:
        """Occurrences of one fixed instantiation, left-to-right."""
        if len(sequence) < self._m:
            return
        symbol_tuples = self.symbol_tuples(sequence)
        m = self._m
        n_events = len(sequence)
        if self.template.kind is PatternKind.SUBSTRING:
            for start in range(n_events - m + 1):
                if all(
                    symbol_tuples[offset][start + offset] == position_values[offset]
                    for offset in range(m)
                ):
                    yield position_values, tuple(range(start, start + m))
            return

        indices: List[int] = [0] * m

        def extend(offset: int, start: int) -> Iterator[Occurrence]:
            if offset == m:
                yield position_values, tuple(indices)
                return
            for index in range(start, n_events - (m - offset - 1)):
                if symbol_tuples[offset][index] != position_values[offset]:
                    continue
                indices[offset] = index
                yield from extend(offset + 1, index + 1)

        yield from extend(0, 0)

    def _first_pattern_occurrence(
        self, sequence: Sequence, position_values: Tuple[object, ...]
    ) -> Optional[Occurrence]:
        for occurrence in self._iter_pattern_occurrences(sequence, position_values):
            return occurrence
        return None

    # ------------------------------------------------------------------
    # Index support: unique instantiations (BuildIndex, Figure 9, line 4)
    # ------------------------------------------------------------------
    def unique_instantiations(self, sequence: Sequence) -> List[Tuple[object, ...]]:
        """Distinct per-position value tuples of template occurrences.

        This is the BuildIndex enumeration: template-only (no σ, no ρ).
        """
        seen: Dict[Tuple[object, ...], None] = {}
        for values, __ in self.iter_occurrences(sequence):
            seen.setdefault(values, None)
        return list(seen)
