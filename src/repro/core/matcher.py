"""Pattern matching: occurrences, cell restrictions, matching predicates.

This module implements step 5 of S-cuboid construction (*pattern grouping*,
Section 3.2).  Given a data sequence and a pattern template it enumerates
*occurrences* — positions whose level-mapped symbol values instantiate the
template — and turns them into *cell assignments* under the three cell
restrictions:

* ``LEFT-MAXIMALITY`` (matched-go): per cell, only the first occurrence that
  matches the template **and** satisfies the matching predicate is assigned.
  This makes COUNT a per-cell sequence count and is the semantics both the
  counter-based and the inverted-index strategies must agree on.
* ``LEFT-MAXIMALITY-DATA`` (data-go): as above, but the assigned content is
  the whole data sequence.
* ``ALL-MATCHED``: every qualifying occurrence is assigned.

Occurrences are enumerated in left-to-right order: contiguous windows for
``SUBSTRING`` templates, depth-first index selection (lexicographic index
order) for ``SUBSEQUENCE`` templates.  Subsequence enumeration is
exponential in the worst case — the paper's prototype shares this property —
but template lengths in practice are small (≤ 6).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.spec import (
    CellRestriction,
    MatchingPredicate,
    PatternKind,
    PatternSymbol,
    PatternTemplate,
)
from repro.errors import MatchLimitExceeded, SchemaError
from repro.events.expression import BindingContext
from repro.events.schema import Schema
from repro.events.sequence import Sequence
from repro.obs.spans import span

#: process-wide default cap on occurrences enumerated per sequence
#: (None = unlimited).  Subsequence enumeration is combinatorial; set a
#: cap to fail fast on pathological data instead of hanging.
_default_occurrence_limit: Optional[int] = None


def set_default_occurrence_limit(limit: Optional[int]) -> Optional[int]:
    """Set the process-wide per-sequence occurrence cap; returns the old one."""
    global _default_occurrence_limit
    previous = _default_occurrence_limit
    _default_occurrence_limit = limit
    return previous


def get_default_occurrence_limit() -> Optional[int]:
    """The process-wide per-sequence occurrence cap (None = unlimited).

    Scan coordinators read this to replicate the cap on worker processes,
    which do not share this module's global (spawn starts fresh
    interpreters; fork freezes the value at pool-creation time).
    """
    return _default_occurrence_limit


class occurrence_limit:
    """Context manager scoping the default occurrence cap.

    >>> with occurrence_limit(10_000):
    ...     engine.execute(spec)
    """

    def __init__(self, limit: Optional[int]):
        self.limit = limit
        self._previous: Optional[int] = None

    def __enter__(self) -> "occurrence_limit":
        self._previous = set_default_occurrence_limit(self.limit)
        return self

    def __exit__(self, *exc_info) -> None:
        set_default_occurrence_limit(self._previous)

#: An occurrence: the instantiated value at each template position plus the
#: (0-based, increasing) event positions within the sequence it occupies.
Occurrence = Tuple[Tuple[object, ...], Tuple[int, ...]]

#: Assigned cell content: the database row indices of the assigned events.
Content = Tuple[int, ...]


def _symbol_value_ok(symbol: PatternSymbol, value: object, schema: Schema) -> bool:
    """Check a candidate symbol value against fixed / within restrictions."""
    if symbol.wildcard:
        return True
    if symbol.fixed is not None and value != symbol.fixed:
        return False
    if symbol.within is not None:
        ancestor_level, ancestor_value = symbol.within
        hierarchy = schema.hierarchy(symbol.attribute)
        # ``value`` is at symbol.level; map a representative base value up.
        # Levels map from the base, so we need a base value; here we rely on
        # symbol tuples being computed from base values, hence we re-map via
        # the hierarchy's children only when level == base.  For non-base
        # symbol levels we test by comparing the ancestor of the value's
        # children; in practice within-constraints are produced by
        # P-DRILL-DOWN, which always lands on a finer level, and the check
        # below covers the common dict-mapped case.
        if symbol.level == hierarchy.base_level:
            return hierarchy.map_value(value, ancestor_level) == ancestor_value
        children = hierarchy.children(symbol.level, value)
        if not children:
            return False
        return hierarchy.map_value(children[0], ancestor_level) == ancestor_value
    return True


class TemplateMatcher:
    """Occurrence enumeration and cell assignment for one template.

    A matcher is constructed once per (template, restriction, predicate)
    triple and reused across sequences; it precomputes per-position symbol
    metadata so the per-sequence work is a tight loop.
    """

    def __init__(
        self,
        template: PatternTemplate,
        schema: Schema,
        restriction: CellRestriction = CellRestriction.LEFT_MAXIMALITY,
        predicate: Optional[MatchingPredicate] = None,
        occurrence_cap: Optional[int] = None,
    ):
        self.template = template
        self.schema = schema
        self.restriction = restriction
        self.predicate = predicate
        #: per-sequence enumeration cap (falls back to the process default)
        self.occurrence_cap = occurrence_cap
        self._position_symbols = template.position_symbols()
        self._symbol_ids = template.symbol_ids()
        self._m = template.length
        #: number of distinct symbols (wildcards included; binding array size)
        self._n = len(template.symbols)
        #: first position at which each symbol appears, in symbol order
        self._first_position: List[int] = []
        seen: Dict[int, int] = {}
        for position, dim in enumerate(self._symbol_ids):
            if dim not in seen:
                seen[dim] = position
                self._first_position.append(position)
        #: first positions of the *cell* (non-wildcard) dimensions only
        self._cell_first_positions: List[int] = [
            self._first_position[dim]
            for dim, symbol in enumerate(template.symbols)
            if not symbol.wildcard
        ]
        #: interned key tuples: equal cell / positions keys produced across
        #: sequences share one tuple object, cutting aggregation-dict
        #: hashing (hash cached per object) and key memory.  ``setdefault``
        #: is atomic under the GIL, so the shared-matcher thread backend is
        #: safe.
        self._interned_keys: Dict[Tuple[object, ...], Tuple[object, ...]] = {}
        #: per symbol dimension: the cell-key slot its value comes from, or
        #: None for wildcards (which reconstruct as None)
        dim_to_cell: Dict[int, int] = {}
        for dim, symbol in enumerate(template.symbols):
            if not symbol.wildcard:
                dim_to_cell[dim] = len(dim_to_cell)
        self._positions_plan: Tuple[Optional[int], ...] = tuple(
            None if template.symbols[dim].wildcard else dim_to_cell[dim]
            for dim in self._symbol_ids
        )

    # ------------------------------------------------------------------
    # Symbol extraction
    # ------------------------------------------------------------------
    def symbol_tuples(self, sequence: Sequence) -> List[Tuple[object, ...]]:
        """Level-mapped symbol values per template position for *sequence*.

        Wildcard positions yield ``None`` everywhere: they bind no value,
        so every comparison against them is vacuous by construction.
        """
        none_row: Optional[Tuple[object, ...]] = None
        rows: List[Tuple[object, ...]] = []
        for symbol in self._position_symbols:
            if symbol.wildcard:
                if none_row is None:
                    none_row = (None,) * len(sequence)
                rows.append(none_row)
            else:
                rows.append(sequence.symbols(symbol.attribute, symbol.level))
        return rows

    # ------------------------------------------------------------------
    # Occurrence enumeration
    # ------------------------------------------------------------------
    def iter_occurrences(self, sequence: Sequence) -> Iterator[Occurrence]:
        """All template occurrences in *sequence*, in left-to-right order.

        An occurrence satisfies symbol-equality (repeated symbols bind the
        same value) and every symbol restriction (fixed / within), but is
        **not** yet checked against the matching predicate.
        """
        if len(sequence) < self._m:
            return
        if self.template.kind is PatternKind.SUBSTRING:
            source = self._iter_substring(sequence)
        else:
            source = self._iter_subsequence(sequence)
        cap = (
            self.occurrence_cap
            if self.occurrence_cap is not None
            else _default_occurrence_limit
        )
        if cap is None:
            yield from source
            return
        count = 0
        for occurrence in source:
            count += 1
            if count > cap:
                raise MatchLimitExceeded(
                    f"sequence sid={sequence.sid} exceeded the occurrence cap "
                    f"of {cap} for template {self.template.positions} "
                    f"({self.template.kind.value}); raise the cap or use a "
                    "more selective template"
                )
            yield occurrence

    def _iter_substring(self, sequence: Sequence) -> Iterator[Occurrence]:
        symbol_tuples = self.symbol_tuples(sequence)
        m = self._m
        n_events = len(sequence)
        position_symbols = self._position_symbols
        symbol_ids = self._symbol_ids
        schema = self.schema
        for start in range(n_events - m + 1):
            bound: List[object] = [None] * self._n
            bound_set = [False] * self._n
            ok = True
            for offset in range(m):
                value = symbol_tuples[offset][start + offset]
                dim = symbol_ids[offset]
                if bound_set[dim]:
                    if bound[dim] != value:
                        ok = False
                        break
                else:
                    if not _symbol_value_ok(position_symbols[offset], value, schema):
                        ok = False
                        break
                    bound[dim] = value
                    bound_set[dim] = True
            if ok:
                values = tuple(
                    symbol_tuples[offset][start + offset] for offset in range(m)
                )
                yield values, tuple(range(start, start + m))

    def _iter_subsequence(self, sequence: Sequence) -> Iterator[Occurrence]:
        symbol_tuples = self.symbol_tuples(sequence)
        m = self._m
        n_events = len(sequence)
        symbol_ids = self._symbol_ids
        position_symbols = self._position_symbols
        schema = self.schema
        indices: List[int] = [0] * m
        values: List[object] = [None] * m

        def extend(offset: int, start: int) -> Iterator[Occurrence]:
            if offset == m:
                yield tuple(values), tuple(indices)
                return
            # Prune: not enough events left for the remaining positions.
            for index in range(start, n_events - (m - offset - 1)):
                value = symbol_tuples[offset][index]
                dim = symbol_ids[offset]
                earlier = self._first_occurrence_offset(offset, dim)
                if earlier is not None:
                    if values[earlier] != value:
                        continue
                elif not _symbol_value_ok(position_symbols[offset], value, schema):
                    continue
                indices[offset] = index
                values[offset] = value
                yield from extend(offset + 1, index + 1)

        yield from extend(0, 0)

    def _first_occurrence_offset(self, offset: int, dim: int) -> Optional[int]:
        """The earlier position binding *dim*, or None if *offset* is first."""
        first = self._first_position[dim]
        return first if first < offset else None

    # ------------------------------------------------------------------
    # Predicate evaluation
    # ------------------------------------------------------------------
    def occurrence_qualifies(self, sequence: Sequence, occurrence: Occurrence) -> bool:
        """Evaluate the matching predicate over the occurrence's events."""
        if self.predicate is None:
            return True
        __, indices = occurrence
        bindings = {
            placeholder: sequence.event(index)
            for placeholder, index in zip(self.predicate.placeholders, indices)
        }
        return self.predicate.expr.evaluate(BindingContext(bindings))

    # ------------------------------------------------------------------
    # Cell keys
    # ------------------------------------------------------------------
    def cell_key(self, values: Tuple[object, ...]) -> Tuple[object, ...]:
        """Pattern-dimension key (n values) from per-position values (m).

        Wildcard positions carry no dimension and are dropped.
        """
        key = tuple(values[position] for position in self._cell_first_positions)
        return self._interned_keys.setdefault(key, key)

    def positions_key(self, cell_key: Tuple[object, ...]) -> Tuple[object, ...]:
        """Per-position values (m) from a pattern-dimension key (n).

        Wildcard positions reconstruct as ``None`` — exactly the value the
        matcher records for them, so keys round-trip.
        """
        key = tuple(
            None if slot is None else cell_key[slot]
            for slot in self._positions_plan
        )
        return self._interned_keys.setdefault(key, key)

    # ------------------------------------------------------------------
    # Cell assignment under a restriction
    # ------------------------------------------------------------------
    def assignments(self, sequence: Sequence) -> Dict[Tuple[object, ...], List[Content]]:
        """Cell → assigned contents for *sequence* under the restriction.

        Keys are pattern-dimension tuples (length n); values are lists of
        assigned contents (database row tuples).  Under left-maximality the
        list has exactly one entry per cell.
        """
        result: Dict[Tuple[object, ...], List[Content]] = {}
        all_matched = self.restriction is CellRestriction.ALL_MATCHED
        data_go = self.restriction is CellRestriction.LEFT_MAXIMALITY_DATA
        for values, indices in self.iter_occurrences(sequence):
            key = self.cell_key(values)
            if not all_matched and key in result:
                continue
            if not self.occurrence_qualifies(sequence, (values, indices)):
                continue
            if data_go:
                content: Content = tuple(sequence.rows)
            else:
                content = tuple(sequence.rows[index] for index in indices)
            result.setdefault(key, []).append(content)
        return result

    def matched_cells(self, sequence: Sequence) -> List[Tuple[object, ...]]:
        """Distinct cell keys with at least one qualifying occurrence."""
        return list(self.assignments(sequence))

    # ------------------------------------------------------------------
    # Per-cell queries (used by the inverted-index strategy)
    # ------------------------------------------------------------------
    def contains_instantiation(
        self, sequence: Sequence, position_values: Tuple[object, ...]
    ) -> bool:
        """Template-only containment of a *specific* instantiation.

        Used by the join-verification step: the predicate is deliberately
        not applied here (the paper verifies σ and ρ only at counting time).
        """
        return self._first_pattern_occurrence(sequence, position_values) is not None

    def cell_contents(
        self, sequence: Sequence, position_values: Tuple[object, ...]
    ) -> List[Content]:
        """Assigned contents of *sequence* for one specific cell.

        Applies the matching predicate and the cell restriction, exactly as
        :meth:`assignments` does, but only for the given instantiation.
        """
        contents: List[Content] = []
        all_matched = self.restriction is CellRestriction.ALL_MATCHED
        data_go = self.restriction is CellRestriction.LEFT_MAXIMALITY_DATA
        for occurrence in self._iter_pattern_occurrences(sequence, position_values):
            if not self.occurrence_qualifies(sequence, occurrence):
                continue
            __, indices = occurrence
            if data_go:
                contents.append(tuple(sequence.rows))
            else:
                contents.append(tuple(sequence.rows[i] for i in indices))
            if not all_matched:
                break
        return contents

    def _iter_pattern_occurrences(
        self, sequence: Sequence, position_values: Tuple[object, ...]
    ) -> Iterator[Occurrence]:
        """Occurrences of one fixed instantiation, left-to-right."""
        if len(sequence) < self._m:
            return
        symbol_tuples = self.symbol_tuples(sequence)
        m = self._m
        n_events = len(sequence)
        if self.template.kind is PatternKind.SUBSTRING:
            for start in range(n_events - m + 1):
                if all(
                    symbol_tuples[offset][start + offset] == position_values[offset]
                    for offset in range(m)
                ):
                    yield position_values, tuple(range(start, start + m))
            return

        indices: List[int] = [0] * m

        def extend(offset: int, start: int) -> Iterator[Occurrence]:
            if offset == m:
                yield position_values, tuple(indices)
                return
            for index in range(start, n_events - (m - offset - 1)):
                if symbol_tuples[offset][index] != position_values[offset]:
                    continue
                indices[offset] = index
                yield from extend(offset + 1, index + 1)

        yield from extend(0, 0)

    def _first_pattern_occurrence(
        self, sequence: Sequence, position_values: Tuple[object, ...]
    ) -> Optional[Occurrence]:
        for occurrence in self._iter_pattern_occurrences(sequence, position_values):
            return occurrence
        return None

    # ------------------------------------------------------------------
    # Index support: unique instantiations (BuildIndex, Figure 9, line 4)
    # ------------------------------------------------------------------
    def unique_instantiations(self, sequence: Sequence) -> List[Tuple[object, ...]]:
        """Distinct per-position value tuples of template occurrences.

        This is the BuildIndex enumeration: template-only (no σ, no ρ).
        """
        seen: Dict[Tuple[object, ...], None] = {}
        for values, __ in self.iter_occurrences(sequence):
            seen.setdefault(values, None)
        return list(seen)


class CompiledMatcher(TemplateMatcher):
    """A :class:`TemplateMatcher` running over dictionary-encoded code rows.

    Built by :meth:`compile` from a template plus a database: every symbol
    restriction (fixed / within) is translated once into an *accept-set* of
    integer codes, placeholder equality becomes an int compare, and the
    substring / subsequence automaton runs over flat ``array('I')`` rows
    from the database's :class:`~repro.events.encoding.EncodedSequenceStore`.
    Cell keys are aggregated in code space and decoded (then interned) once
    per distinct cell, so results — cells, contents, enumeration order, and
    the occurrence-cap behaviour — are bit-identical to the object matcher.

    Only the hot entry points (:meth:`assignments`,
    :meth:`unique_instantiations`) are overridden; the per-cell methods used
    by index counting inherit the object implementations.  The matcher holds
    no per-sequence scratch state, so one instance may be shared across the
    thread backend's pool.
    """

    def __init__(
        self,
        template: PatternTemplate,
        schema: Schema,
        restriction: CellRestriction,
        predicate: Optional[MatchingPredicate],
        occurrence_cap: Optional[int],
        *,
        store,
        row_domains: Tuple[Optional[Tuple[str, str]], ...],
        accepts: Tuple[Optional[frozenset], ...],
    ):
        super().__init__(template, schema, restriction, predicate, occurrence_cap)
        self._store = store
        #: per template position: the (attribute, level) domain of its code
        #: row, or None for wildcard positions (which match any event)
        self._row_domains = row_domains
        #: per template position: frozenset of accepted codes for restricted
        #: symbols, or None when every code is acceptable
        self._accepts = accepts
        #: live code → value decode list per cell-key component
        self._cell_decoders = [
            store.dictionary.decoder(row_domains[position])
            for position in self._cell_first_positions
        ]
        #: code cell key → interned decoded key, shared across sequences so
        #: recurring patterns decode exactly once per query
        self._decoded_codes: Dict[Tuple[int, ...], Tuple[object, ...]] = {}
        #: code cell key → interned positions key (decode + wildcard
        #: expansion fused), for the instantiation-listing path
        self._positions_by_code: Dict[Tuple[int, ...], Tuple[object, ...]] = {}
        #: the dominant template shape — substring, all symbols distinct,
        #: no wildcards, no predicate — admits a windowed ``zip``
        #: enumeration with no per-position Python loop; when accept-sets
        #: are present the windows are filtered by per-position membership
        simple_shape = (
            template.kind is PatternKind.SUBSTRING
            and predicate is None
            and all(domain is not None for domain in row_domains)
            and list(self._cell_first_positions) == list(range(self._m))
            and len(self._symbol_ids) == len(set(self._symbol_ids))
        )
        self._accept_checks = [
            (offset, accept)
            for offset, accept in enumerate(accepts)
            if accept is not None
        ]
        self._simple_substring = simple_shape and not self._accept_checks
        self._filtered_substring = simple_shape and bool(self._accept_checks)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    @classmethod
    def compile(
        cls,
        template: PatternTemplate,
        db,
        restriction: CellRestriction = CellRestriction.LEFT_MAXIMALITY,
        predicate: Optional[MatchingPredicate] = None,
        occurrence_cap: Optional[int] = None,
    ) -> "CompiledMatcher":
        """Translate *template* into code space against *db*'s dictionary.

        Raises (typically :class:`~repro.errors.SchemaError` for unmappable
        values or callable-mapping ``within`` checks, ``TypeError`` for
        unhashable dimension values) when the template cannot be compiled;
        callers fall back to the object matcher.
        """
        schema = db.schema
        store = db.encoding_store()
        row_domains: List[Optional[Tuple[str, str]]] = []
        accepts: List[Optional[frozenset]] = []
        for symbol in template.position_symbols():
            if symbol.wildcard:
                row_domains.append(None)
                accepts.append(None)
                continue
            schema.check_level(symbol.attribute, symbol.level)
            domain = (symbol.attribute, symbol.level)
            # Interning the full base-data domain up front makes the
            # accept-sets sound (no value can appear later and bypass them)
            # and surfaces any encoding problem at compile time.
            store.ensure_domain_complete(db, symbol.attribute, symbol.level)
            row_domains.append(domain)
            if symbol.fixed is None and symbol.within is None:
                accepts.append(None)
            else:
                accepts.append(store.accept_codes(db, symbol))
        return cls(
            template,
            schema,
            restriction,
            predicate,
            occurrence_cap,
            store=store,
            row_domains=tuple(row_domains),
            accepts=tuple(accepts),
        )

    # ------------------------------------------------------------------
    # Code-space enumeration
    # ------------------------------------------------------------------
    def _code_rows(self, sequence: Sequence) -> List[Optional[object]]:
        store = self._store
        return [
            None if domain is None else store.row(sequence, domain[0], domain[1])
            for domain in self._row_domains
        ]

    def _iter_code_occurrences(
        self, sequence: Sequence
    ) -> Iterator[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
        """(code cell key, event indices) per occurrence, left-to-right.

        Enumeration order, the set of occurrences and the occurrence-cap
        accounting are exactly those of :meth:`iter_occurrences`; only the
        value representation differs (codes instead of objects).
        """
        if len(sequence) < self._m:
            return
        if self.template.kind is PatternKind.SUBSTRING:
            source = self._iter_code_substring(sequence)
        else:
            source = self._iter_code_subsequence(sequence)
        cap = (
            self.occurrence_cap
            if self.occurrence_cap is not None
            else _default_occurrence_limit
        )
        if cap is None:
            yield from source
            return
        count = 0
        for occurrence in source:
            count += 1
            if count > cap:
                raise MatchLimitExceeded(
                    f"sequence sid={sequence.sid} exceeded the occurrence cap "
                    f"of {cap} for template {self.template.positions} "
                    f"({self.template.kind.value}); raise the cap or use a "
                    "more selective template"
                )
            yield occurrence

    def _iter_code_substring(self, sequence: Sequence):
        rows = self._code_rows(sequence)
        m = self._m
        n = self._n
        n_events = len(sequence)
        symbol_ids = self._symbol_ids
        accepts = self._accepts
        cell_positions = self._cell_first_positions
        for start in range(n_events - m + 1):
            bound = [-1] * n
            ok = True
            codes_at = [0] * m
            for offset in range(m):
                row = rows[offset]
                if row is None:
                    continue
                code = row[start + offset]
                dim = symbol_ids[offset]
                prev = bound[dim]
                if prev >= 0:
                    if prev != code:
                        ok = False
                        break
                else:
                    accept = accepts[offset]
                    if accept is not None and code not in accept:
                        ok = False
                        break
                    bound[dim] = code
                codes_at[offset] = code
            if ok:
                yield (
                    tuple(codes_at[position] for position in cell_positions),
                    tuple(range(start, start + m)),
                )

    def _iter_code_subsequence(self, sequence: Sequence):
        rows = self._code_rows(sequence)
        m = self._m
        n_events = len(sequence)
        symbol_ids = self._symbol_ids
        first_position = self._first_position
        accepts = self._accepts
        cell_positions = self._cell_first_positions
        # Per-call scratch keeps the shared-matcher thread backend safe.
        indices: List[int] = [0] * m
        codes_at: List[int] = [0] * m

        def extend(offset: int, start: int):
            if offset == m:
                yield (
                    tuple(codes_at[position] for position in cell_positions),
                    tuple(indices),
                )
                return
            row = rows[offset]
            dim = symbol_ids[offset]
            first = first_position[dim]
            earlier = first if first < offset else -1
            accept = accepts[offset]
            for index in range(start, n_events - (m - offset - 1)):
                if row is None:
                    code = 0
                else:
                    code = row[index]
                    if earlier >= 0:
                        if codes_at[earlier] != code:
                            continue
                    elif accept is not None and code not in accept:
                        continue
                indices[offset] = index
                codes_at[offset] = code
                yield from extend(offset + 1, index + 1)

        yield from extend(0, 0)

    def _decode_cell_key(self, key: Tuple[int, ...]) -> Tuple[object, ...]:
        found = self._decoded_codes.get(key)
        if found is not None:
            return found
        decoded = tuple(
            decoder[code] for decoder, code in zip(self._cell_decoders, key)
        )
        decoded = self._interned_keys.setdefault(decoded, decoded)
        self._decoded_codes[key] = decoded
        return decoded

    # ------------------------------------------------------------------
    # Simple-substring fast path: windowed zip over the code rows
    # ------------------------------------------------------------------
    def _window_keys(self, sequence: Sequence):
        """Code cell keys of every window, as a C-speed ``zip`` iterator.

        Valid only for ``_simple_substring`` templates: the cell key of the
        window at *start* is exactly ``(row_0[start], row_1[start+1], ...)``
        and every window matches, so zipping the position rows at their
        offsets enumerates all occurrences in legacy order with no
        per-position Python loop.
        """
        store = self._store
        rows = [
            store.row(sequence, attribute, level)
            for attribute, level in self._row_domains
        ]
        return zip(*(row[offset:] if offset else row for offset, row in enumerate(rows)))

    def _effective_cap(self) -> Optional[int]:
        return (
            self.occurrence_cap
            if self.occurrence_cap is not None
            else _default_occurrence_limit
        )

    def _raise_cap(self, sequence: Sequence, cap: int) -> None:
        raise MatchLimitExceeded(
            f"sequence sid={sequence.sid} exceeded the occurrence cap "
            f"of {cap} for template {self.template.positions} "
            f"({self.template.kind.value}); raise the cap or use a "
            "more selective template"
        )

    def _check_window_cap(self, sequence: Sequence, n_windows: int) -> None:
        """The occurrence cap, applied to the (pre-known) window count.

        On the simple-substring path every window is an occurrence, so the
        cap can be tested before enumeration; the error is the one the
        generic path raises at the (cap+1)-th occurrence.
        """
        cap = self._effective_cap()
        if cap is not None and n_windows > cap:
            self._raise_cap(sequence, cap)

    # ------------------------------------------------------------------
    # Hot entry points, re-run over codes
    # ------------------------------------------------------------------
    def assignments(self, sequence: Sequence) -> Dict[Tuple[object, ...], List[Content]]:
        all_matched = self.restriction is CellRestriction.ALL_MATCHED
        data_go = self.restriction is CellRestriction.LEFT_MAXIMALITY_DATA
        predicate = self.predicate
        rows = sequence.rows
        by_code: Dict[Tuple[int, ...], List[Content]] = {}
        if self._simple_substring:
            m = self._m
            n_windows = len(sequence) - m + 1
            if n_windows <= 0:
                return {}
            self._check_window_cap(sequence, n_windows)
            if all_matched:
                for start, key in enumerate(self._window_keys(sequence)):
                    bucket = by_code.get(key)
                    if bucket is None:
                        bucket = by_code[key] = []
                    bucket.append(rows[start : start + m])
            elif data_go:
                for key in self._window_keys(sequence):
                    if key not in by_code:
                        by_code[key] = [rows]
            else:
                for start, key in enumerate(self._window_keys(sequence)):
                    if key not in by_code:
                        by_code[key] = [rows[start : start + m]]
            decode = self._decode_cell_key
            return {decode(key): contents for key, contents in by_code.items()}
        if self._filtered_substring:
            m = self._m
            if len(sequence) < m:
                return {}
            cap = self._effective_cap()
            count = 0
            checks = self._accept_checks
            for start, key in enumerate(self._window_keys(sequence)):
                matched = True
                for offset, accept in checks:
                    if key[offset] not in accept:
                        matched = False
                        break
                if not matched:
                    continue
                count += 1
                if cap is not None and count > cap:
                    self._raise_cap(sequence, cap)
                if all_matched:
                    bucket = by_code.get(key)
                    if bucket is None:
                        bucket = by_code[key] = []
                    bucket.append(rows[start : start + m])
                elif key not in by_code:
                    by_code[key] = [rows] if data_go else [rows[start : start + m]]
            decode = self._decode_cell_key
            return {decode(key): contents for key, contents in by_code.items()}
        for key, indices in self._iter_code_occurrences(sequence):
            if not all_matched and key in by_code:
                continue
            if predicate is not None and not self.occurrence_qualifies(
                sequence, ((), indices)
            ):
                continue
            if data_go:
                content: Content = rows
            else:
                content = tuple(rows[index] for index in indices)
            by_code.setdefault(key, []).append(content)
        if not by_code:
            return {}
        decode = self._decode_cell_key
        return {decode(key): contents for key, contents in by_code.items()}

    def _positions_for_code(self, key: Tuple[int, ...]) -> Tuple[object, ...]:
        """Interned positions key for a code cell key (decode fused in)."""
        found = self._positions_by_code.get(key)
        if found is None:
            found = self._positions_by_code[key] = self.positions_key(
                self._decode_cell_key(key)
            )
        return found

    def unique_instantiations(self, sequence: Sequence) -> List[Tuple[object, ...]]:
        if self._simple_substring:
            n_windows = len(sequence) - self._m + 1
            if n_windows <= 0:
                return []
            self._check_window_cap(sequence, n_windows)
            positions = self._positions_for_code
            return [
                positions(key)
                for key in dict.fromkeys(self._window_keys(sequence))
            ]
        if self._filtered_substring:
            if len(sequence) < self._m:
                return []
            cap = self._effective_cap()
            count = 0
            checks = self._accept_checks
            seen_keys: Dict[Tuple[int, ...], None] = {}
            for key in self._window_keys(sequence):
                matched = True
                for offset, accept in checks:
                    if key[offset] not in accept:
                        matched = False
                        break
                if not matched:
                    continue
                count += 1
                if cap is not None and count > cap:
                    self._raise_cap(sequence, cap)
                if key not in seen_keys:
                    seen_keys[key] = None
            positions = self._positions_for_code
            return [positions(key) for key in seen_keys]
        seen: Dict[Tuple[int, ...], None] = {}
        for key, __ in self._iter_code_occurrences(sequence):
            if key not in seen:
                seen[key] = None
        # The full per-position tuple is a function of the cell key (repeated
        # symbols share one binding; wildcards are always None), so deduping
        # on cell keys preserves both the set and the first-seen order.
        positions = self._positions_for_code
        return [positions(key) for key in seen]


# --------------------------------------------------------------------------
# Kernel dispatch: compiled when possible, object matcher otherwise
# --------------------------------------------------------------------------

#: which matcher kernel make_matcher selects: "auto" compiles when it can,
#: "legacy" forces the object matcher (used by A/B tests and benchmarks)
_kernel_mode = "auto"

_dispatch_lock = threading.Lock()
#: process-local counts of make_matcher outcomes, exported as the
#: ``solap_matcher_dispatch_total{kind}`` metric family
_dispatch_counts: Dict[str, int] = {"compiled": 0, "legacy": 0, "fallback": 0}

#: exceptions that mean "this template cannot be compiled", not "bug":
#: unmappable values / callable-mapping children (SchemaError), unhashable
#: dimension values (TypeError), malformed codes (ValueError, OverflowError)
_COMPILE_ERRORS = (SchemaError, TypeError, ValueError, OverflowError)


def set_kernel_mode(mode: str) -> str:
    """Set the matcher kernel mode ("auto" / "legacy"); returns the old one."""
    global _kernel_mode
    if mode not in ("auto", "legacy"):
        raise ValueError(f"unknown kernel mode {mode!r}; use 'auto' or 'legacy'")
    previous = _kernel_mode
    _kernel_mode = mode
    return previous


def get_kernel_mode() -> str:
    return _kernel_mode


class kernel_mode:
    """Context manager scoping the matcher kernel mode.

    >>> with kernel_mode("legacy"):
    ...     engine.execute(spec)   # forces the object matcher
    """

    def __init__(self, mode: str):
        self.mode = mode
        self._previous: Optional[str] = None

    def __enter__(self) -> "kernel_mode":
        self._previous = set_kernel_mode(self.mode)
        return self

    def __exit__(self, *exc_info) -> None:
        set_kernel_mode(self._previous)


def matcher_dispatch_counts() -> Dict[str, int]:
    """Snapshot of make_matcher outcome counts (process-local, monotonic)."""
    with _dispatch_lock:
        return dict(_dispatch_counts)


def _record_dispatch(kind: str, stats=None) -> None:
    with _dispatch_lock:
        _dispatch_counts[kind] = _dispatch_counts.get(kind, 0) + 1
    if stats is not None:
        stats.extra["matcher"] = kind


def make_matcher(
    template: PatternTemplate,
    schema: Schema,
    restriction: CellRestriction = CellRestriction.LEFT_MAXIMALITY,
    predicate: Optional[MatchingPredicate] = None,
    occurrence_cap: Optional[int] = None,
    *,
    db=None,
    stats=None,
) -> TemplateMatcher:
    """The matcher for a template: compiled when possible, legacy otherwise.

    Passing the event database enables compilation (the dictionary lives on
    it); without a database — or under ``kernel_mode("legacy")`` — the
    object matcher is returned.  A failed compile falls back transparently;
    the chosen kind is recorded in the dispatch counters and, when *stats*
    is given, in ``QueryStats.extra["matcher"]``.
    """
    if db is not None and _kernel_mode == "auto":
        with span("match.compile") as sp:
            try:
                matcher = CompiledMatcher.compile(
                    template, db, restriction, predicate, occurrence_cap
                )
            except _COMPILE_ERRORS as exc:
                sp.set("kind", "fallback")
                sp.set("reason", type(exc).__name__)
                _record_dispatch("fallback", stats)
            else:
                sp.set("kind", "compiled")
                _record_dispatch("compiled", stats)
                return matcher
    else:
        _record_dispatch("legacy", stats)
    return TemplateMatcher(template, schema, restriction, predicate, occurrence_cap)


def can_compile(template: PatternTemplate, db) -> bool:
    """Whether make_matcher would return a compiled matcher for *template*.

    Used by scan coordinators to report the kernel that worker processes
    (whose dispatch counters are invisible here) will run.  Compilation
    work is memoized on the database's encoding store, so probing is cheap.
    """
    if db is None or _kernel_mode != "auto":
        return False
    try:
        CompiledMatcher.compile(template, db)
    except _COMPILE_ERRORS:
        return False
    return True
