"""Telemetry HTTP endpoint: ``/metrics``, ``/healthz`` and ``/varz``.

A tiny stdlib :mod:`http.server` exporter so any scraper (Prometheus,
curl, a load balancer's health check) can observe a running process with
zero third-party dependencies:

* ``GET /metrics`` — the registry in Prometheus text exposition format;
* ``GET /healthz`` — ``200 {"status": "ok"}`` while the health callback
  reports healthy, ``503`` otherwise (liveness/readiness probes);
* ``GET /varz``    — a JSON snapshot of every metric series (plus
  whatever richer document the owner's callback provides);
* ``GET /debug/traces`` — newest-first summaries from the service's
  flight recorder (``?limit=N`` with ``N >= 1``; a non-numeric, zero or
  negative limit is a 400), and ``GET /debug/traces/<id>`` for one full
  recorded trace — 404 when no recorder is attached.

The server runs on a daemon thread (`ThreadingHTTPServer`, one handler
thread per request) and binds to loopback by default.  Port 0 binds an
ephemeral port — ``server.port`` reports the real one, which is how
tests avoid collisions.

Usage::

    server = MetricsServer(registry, port=9464).start()
    ...
    server.stop()

or let the service own it::

    service = QueryService(db, ServiceConfig(expose_metrics_port=9464))
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.obs.metrics import MetricsRegistry

#: content type of the Prometheus text exposition format
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: errors meaning "the client hung up mid-response": nothing can be sent
#: back on that socket, so handlers drop the response instead of crashing
#: the handler thread (and never try to write a 500 to the dead socket)
CLIENT_DISCONNECT_ERRORS = (BrokenPipeError, ConnectionResetError)


class MetricsServer:
    """Serves one registry (and optional health/varz callbacks) over HTTP."""

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        health_callback: Optional[Callable[[], bool]] = None,
        varz_callback: Optional[Callable[[], dict]] = None,
        recorder=None,
    ):
        self.registry = registry
        self.host = host
        self.port = port
        self.health_callback = health_callback
        self.varz_callback = varz_callback
        #: the owning service's FlightRecorder (None = /debug/traces 404s)
        self.recorder = recorder
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start(self) -> "MetricsServer":
        """Bind and serve on a daemon thread; returns self (idempotent)."""
        if self._httpd is not None:
            return self
        owner = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib naming
                owner._handle(self)

            def log_message(self, *args) -> None:
                pass  # scrapes every few seconds would spam stderr

        self._httpd = ThreadingHTTPServer((self.host, self.port), Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="solap-metrics-httpd",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and release the port (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._httpd is not None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        path = request.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = self.registry.render_prometheus().encode("utf-8")
                self._respond(request, 200, PROMETHEUS_CONTENT_TYPE, body)
            elif path == "/healthz":
                healthy = (
                    self.health_callback() if self.health_callback else True
                )
                status = 200 if healthy else 503
                body = json.dumps(
                    {"status": "ok" if healthy else "unhealthy"}
                ).encode("utf-8")
                self._respond(request, status, "application/json", body)
            elif path == "/varz":
                doc = (
                    self.varz_callback()
                    if self.varz_callback
                    else self.registry.snapshot()
                )
                body = json.dumps(doc, default=repr).encode("utf-8")
                self._respond(request, 200, "application/json", body)
            elif path == "/debug/traces" or path.startswith("/debug/traces/"):
                self._handle_traces(request, path)
            else:
                body = json.dumps(
                    {"error": f"unknown path {path!r}",
                     "paths": ["/metrics", "/healthz", "/varz",
                               "/debug/traces", "/debug/traces/<id>"]}
                ).encode("utf-8")
                self._respond(request, 404, "application/json", body)
        except CLIENT_DISCONNECT_ERRORS:
            # The client went away mid-write; there is no socket left to
            # answer on, so drop the response silently.
            return
        except Exception as error:  # noqa: BLE001 - keep the server alive
            body = json.dumps(
                {"error": f"{type(error).__name__}: {error}"}
            ).encode("utf-8")
            self._respond(request, 500, "application/json", body)

    def _handle_traces(
        self, request: BaseHTTPRequestHandler, path: str
    ) -> None:
        """Serve the flight-recorder routes (summaries or one entry)."""
        if self.recorder is None:
            body = json.dumps(
                {"error": "flight recorder not enabled"}
            ).encode("utf-8")
            self._respond(request, 404, "application/json", body)
            return
        if path == "/debug/traces":
            query = request.path.split("?", 1)
            limit = 20
            if len(query) == 2:
                for pair in query[1].split("&"):
                    key, __, value = pair.partition("=")
                    if key == "limit":
                        try:
                            limit = int(value)
                        except ValueError:
                            body = json.dumps(
                                {"error": f"bad limit {value!r}"}
                            ).encode("utf-8")
                            self._respond(
                                request, 400, "application/json", body
                            )
                            return
            if limit < 1:
                # limit=0 / negative limits used to be silently clamped to
                # 1; they are requests the caller never meant, so reject
                # them like any other malformed limit.
                body = json.dumps(
                    {"error": f"bad limit {limit!r}: must be >= 1"}
                ).encode("utf-8")
                self._respond(request, 400, "application/json", body)
                return
            doc = {"traces": self.recorder.recent(limit=limit)}
            body = json.dumps(doc, default=repr).encode("utf-8")
            self._respond(request, 200, "application/json", body)
            return
        entry_id = path[len("/debug/traces/"):]
        entry = self.recorder.get(entry_id) if entry_id else None
        if entry is None:
            body = json.dumps(
                {"error": f"no recorded trace {entry_id!r}"}
            ).encode("utf-8")
            self._respond(request, 404, "application/json", body)
            return
        body = json.dumps(entry, default=repr).encode("utf-8")
        self._respond(request, 200, "application/json", body)

    @staticmethod
    def _respond(
        request: BaseHTTPRequestHandler,
        status: int,
        content_type: str,
        body: bytes,
    ) -> None:
        try:
            request.send_response(status)
            request.send_header("Content-Type", content_type)
            request.send_header("Content-Length", str(len(body)))
            request.end_headers()
            request.wfile.write(body)
        except CLIENT_DISCONNECT_ERRORS:
            # The client closed the connection before (or while) the
            # response was written; drop it — retrying on the dead socket
            # would only re-raise and kill the handler thread.
            pass

    def __repr__(self) -> str:
        state = "serving" if self.running else "stopped"
        return f"MetricsServer({self.url}, {state})"
