"""Hierarchical tracing spans with near-zero disabled overhead.

Instrumentation sites (the five pipeline stages, the CB scan loop, the II
build/join/verify chain, service admission) call::

    with span("pipeline.selection") as sp:
        rows = ...
        sp.set("rows_out", len(rows))

When no tracer is active in the current context the call returns a shared
:data:`NULL_SPAN` whose methods are all no-ops, so the cost is one
``ContextVar.get`` plus an identity check — cheap enough to leave in hot
*stage* boundaries permanently (per-sequence work is deliberately not
instrumented; spans sit at stage/group/join-step granularity).

Tracers are held in a :class:`contextvars.ContextVar`, so traces nest and
never leak across threads: worker threads of the parallel CB scanner do
not inherit the tracer and their shard work is accounted to the enclosing
``aggregation`` span of the coordinating thread.
"""

from __future__ import annotations

import contextvars
import json
import time
from typing import Dict, Iterator, List, Optional

_TRACER: contextvars.ContextVar[Optional["Tracer"]] = contextvars.ContextVar(
    "solap_tracer", default=None
)


class Span:
    """One timed, attributed node of a trace tree."""

    __slots__ = ("name", "start", "end", "attrs", "children")

    def __init__(self, name: str):
        self.name = name
        self.start: float = 0.0
        self.end: float = 0.0
        self.attrs: Dict[str, object] = {}
        self.children: List["Span"] = []

    @property
    def duration_seconds(self) -> float:
        return max(self.end - self.start, 0.0)

    def set(self, key: str, value: object) -> None:
        """Attach one attribute (counters, labels) to the span."""
        self.attrs[key] = value

    def update(self, **attrs: object) -> None:
        self.attrs.update(attrs)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, in start order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (or self) with *name*, depth-first."""
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def find_all(self, name: str) -> List["Span"]:
        return [node for node in self.walk() if node.name == name]

    def to_dict(self) -> dict:
        """JSON-serialisable form (durations in milliseconds)."""
        out: dict = {
            "name": self.name,
            "duration_ms": round(self.duration_seconds * 1000.0, 6),
        }
        if self.attrs:
            out["attrs"] = {key: _jsonable(val) for key, val in self.attrs.items()}
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    # -- context-manager protocol (used via Tracer.start) ---------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        tracer = _TRACER.get()
        if tracer is not None:
            tracer.finish(self)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration_seconds * 1000:.3f} ms, "
            f"{len(self.children)} children)"
        )


class _NullSpan:
    """The shared disabled span: every operation is a no-op."""

    __slots__ = ()

    def set(self, key: str, value: object) -> None:
        pass

    def update(self, **attrs: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def __repr__(self) -> str:
        return "NullSpan()"


#: the singleton returned by :func:`span` while tracing is disabled
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects one trace tree for the current execution context.

    Used as a context manager::

        with Tracer("query") as tracer:
            engine.execute(spec)
        print(json.dumps(trace_to_dict(tracer.root), indent=2))

    Entering activates the tracer in the current context (nesting is
    allowed — the innermost tracer wins); exiting restores the previous
    one and closes the root span.
    """

    def __init__(self, name: str = "trace"):
        self.root = Span(name)
        self._stack: List[Span] = [self.root]
        self._token: Optional[contextvars.Token] = None

    def start(self, name: str, attrs: Optional[Dict[str, object]] = None) -> Span:
        child = Span(name)
        child.start = time.perf_counter()
        if attrs:
            child.attrs.update(attrs)
        self._stack[-1].children.append(child)
        self._stack.append(child)
        return child

    def finish(self, node: Span) -> None:
        node.end = time.perf_counter()
        # Tolerate out-of-order exits (an exception unwinding several
        # spans finishes them innermost-first, which pops cleanly; a
        # finish for a node no longer on the stack is ignored).
        if any(entry is node for entry in self._stack):
            while len(self._stack) > 1:
                top = self._stack.pop()
                if top is node:
                    break

    def __enter__(self) -> "Tracer":
        self.root.start = time.perf_counter()
        self._token = _TRACER.set(self)
        return self

    def __exit__(self, *exc_info) -> None:
        self.root.end = time.perf_counter()
        if self._token is not None:
            _TRACER.reset(self._token)
            self._token = None

    def __repr__(self) -> str:
        return f"Tracer(root={self.root!r})"


def span(name: str, **attrs: object):
    """Open a child span of the active trace (or a no-op when disabled)."""
    tracer = _TRACER.get()
    if tracer is None:
        return NULL_SPAN
    return tracer.start(name, attrs or None)


def tracing_active() -> bool:
    """True when a tracer is active in the current context."""
    return _TRACER.get() is not None


def current_span(name: str, default: object = NULL_SPAN):
    """The innermost open span (rarely needed; spans are usually local)."""
    tracer = _TRACER.get()
    if tracer is None or len(tracer._stack) <= 1:
        return default
    return tracer._stack[-1]


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    return repr(value)


def trace_to_dict(root: Span, stats: Optional[object] = None) -> dict:
    """One JSON-serialisable trace document (schema under ``trace_schema``).

    *stats* (a :class:`~repro.core.stats.QueryStats`) adds the query's
    counter totals next to the span tree.
    """
    doc: dict = {"trace_schema": 1, "root": root.to_dict()}
    if stats is not None:
        doc["stats"] = {
            "strategy": getattr(stats, "strategy", ""),
            "runtime_ms": getattr(stats, "runtime_seconds", 0.0) * 1000.0,
            "sequences_scanned": getattr(stats, "sequences_scanned", 0),
            "indices_built": getattr(stats, "indices_built", 0),
            "index_bytes_built": getattr(stats, "index_bytes_built", 0),
            "index_joins": getattr(stats, "index_joins", 0),
            "cuboid_cache_hit": getattr(stats, "cuboid_cache_hit", False),
            "sequence_cache_hit": getattr(stats, "sequence_cache_hit", False),
            "index_reused": getattr(stats, "index_reused", False),
        }
    return doc


def trace_to_json(root: Span, stats: Optional[object] = None, indent: int = 2) -> str:
    return json.dumps(trace_to_dict(root, stats), indent=indent, sort_keys=False)
