"""Hierarchical tracing spans with near-zero disabled overhead.

Instrumentation sites (the five pipeline stages, the CB scan loop, the II
build/join/verify chain, service admission) call::

    with span("pipeline.selection") as sp:
        rows = ...
        sp.set("rows_out", len(rows))

When no tracer is active in the current context the call returns a shared
:data:`NULL_SPAN` whose methods are all no-ops, so the cost is one
``ContextVar.get`` plus an identity check — cheap enough to leave in hot
*stage* boundaries permanently (per-sequence work is deliberately not
instrumented; spans sit at stage/group/join-step granularity).

Tracers are held in a :class:`contextvars.ContextVar`, so traces nest and
never leak across threads.  Worker threads and processes do **not**
inherit the coordinator's tracer; they participate in a query-wide trace
through explicit *trace-context propagation* instead:

* :func:`current_context` captures a picklable :class:`SpanContext`
  (``trace_id`` + parent ``span_id``) on the coordinator;
* the context rides inside each task payload to the worker, where a
  :class:`RemoteSpanCollector` activates a worker-local tracer (so the
  existing ``span(...)`` instrumentation in the kernels records
  automatically) and serialises the finished subtree with *relative*
  offsets — worker and coordinator ``perf_counter`` clocks never mix;
* the coordinator grafts the returned payload under its own scan span
  with :func:`graft_payload`, marking the grafted root with its
  ``origin`` (worker pid, shard, backend) so EXPLAIN ANALYZE can render
  per-worker breakdowns without double-counting remote stage time.

Exported trace documents carry ``trace_schema`` 2 (span ids plus remote
``origin`` provenance); :func:`trace_from_dict` still parses version-1
documents produced by earlier releases.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

_TRACER: contextvars.ContextVar[Optional["Tracer"]] = contextvars.ContextVar(
    "solap_tracer", default=None
)

#: schema version of exported trace documents (2 added ``trace_id``,
#: per-span ``span_id`` and remote ``origin`` provenance for grafted
#: worker subtrees; 1 had only name/duration/attrs/children)
TRACE_SCHEMA_VERSION = 2

_id_lock = threading.Lock()
_id_counter = itertools.count(1)


def _new_trace_id() -> str:
    """A process-unique trace id, stable for the trace's lifetime.

    ``pid`` + a monotone counter keeps ids unique across the coordinator
    and its pool workers without any shared state or randomness.
    """
    with _id_lock:
        serial = next(_id_counter)
    return f"{os.getpid():x}-{serial:x}"


class Span:
    """One timed, attributed node of a trace tree."""

    __slots__ = ("name", "start", "end", "attrs", "children", "span_id",
                 "origin", "_tracer")

    def __init__(self, name: str):
        self.name = name
        self.start: float = 0.0
        self.end: float = 0.0
        self.attrs: Dict[str, object] = {}
        self.children: List["Span"] = []
        #: stable id within the owning trace ("" until a tracer assigns one)
        self.span_id: str = ""
        #: provenance of a grafted remote subtree's root (worker pid,
        #: shard, backend); None for locally recorded spans
        self.origin: Optional[Dict[str, object]] = None
        #: the tracer that started this span — finishing must go to the
        #: owner even if a different (nested) tracer is active by the
        #: time the span body unwinds
        self._tracer: Optional["Tracer"] = None

    @property
    def duration_seconds(self) -> float:
        return max(self.end - self.start, 0.0)

    def set(self, key: str, value: object) -> None:
        """Attach one attribute (counters, labels) to the span."""
        self.attrs[key] = value

    def update(self, **attrs: object) -> None:
        self.attrs.update(attrs)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, in start order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (or self) with *name*, depth-first."""
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def find_all(self, name: str) -> List["Span"]:
        return [node for node in self.walk() if node.name == name]

    def to_dict(self) -> dict:
        """JSON-serialisable form (durations in milliseconds)."""
        out: dict = {
            "name": self.name,
            "duration_ms": round(self.duration_seconds * 1000.0, 6),
        }
        if self.span_id:
            out["span_id"] = self.span_id
        if self.origin is not None:
            out["origin"] = {
                key: _jsonable(val) for key, val in self.origin.items()
            }
        if self.attrs:
            out["attrs"] = {key: _jsonable(val) for key, val in self.attrs.items()}
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    # -- context-manager protocol (used via Tracer.start) ---------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        # Finish against the tracer that *started* this span.  Resolving
        # the ContextVar here instead would misroute the finish whenever
        # a nested tracer is active while an outer span's body unwinds
        # (the span would silently never close).
        tracer = self._tracer if self._tracer is not None else _TRACER.get()
        if tracer is not None:
            tracer.finish(self)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration_seconds * 1000:.3f} ms, "
            f"{len(self.children)} children)"
        )


class _NullSpan:
    """The shared disabled span: every operation is a no-op."""

    __slots__ = ()

    def set(self, key: str, value: object) -> None:
        pass

    def update(self, **attrs: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def __repr__(self) -> str:
        return "NullSpan()"


#: the singleton returned by :func:`span` while tracing is disabled
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects one trace tree for the current execution context.

    Used as a context manager::

        with Tracer("query") as tracer:
            engine.execute(spec)
        print(json.dumps(trace_to_dict(tracer.root), indent=2))

    Entering activates the tracer in the current context (nesting is
    allowed — the innermost tracer wins); exiting restores the previous
    one and closes the root span.  Every entry pushes its own restore
    token, so re-entrant use and exception unwinding always put the
    ContextVar back exactly where it was.
    """

    def __init__(self, name: str = "trace", trace_id: Optional[str] = None):
        self.trace_id = trace_id or _new_trace_id()
        self._span_ids = itertools.count(1)
        self.root = Span(name)
        self.root.span_id = self._next_span_id()
        self.root._tracer = self
        self._stack: List[Span] = [self.root]
        self._tokens: List[contextvars.Token] = []

    def _next_span_id(self) -> str:
        return f"s{next(self._span_ids):03d}"

    def start(self, name: str, attrs: Optional[Dict[str, object]] = None) -> Span:
        child = Span(name)
        child.start = time.perf_counter()
        child.span_id = self._next_span_id()
        child._tracer = self
        if attrs:
            child.attrs.update(attrs)
        self._stack[-1].children.append(child)
        self._stack.append(child)
        return child

    def finish(self, node: Span) -> None:
        node.end = time.perf_counter()
        # Tolerate out-of-order exits (an exception unwinding several
        # spans finishes them innermost-first, which pops cleanly; a
        # finish for a node no longer on the stack is ignored).
        if any(entry is node for entry in self._stack):
            while len(self._stack) > 1:
                top = self._stack.pop()
                if top is node:
                    break

    def __enter__(self) -> "Tracer":
        if not self._tokens:
            self.root.start = time.perf_counter()
        self._tokens.append(_TRACER.set(self))
        return self

    def __exit__(self, *exc_info) -> None:
        self.root.end = time.perf_counter()
        if self._tokens:
            _TRACER.reset(self._tokens.pop())

    def __repr__(self) -> str:
        return f"Tracer(root={self.root!r})"


def span(name: str, **attrs: object):
    """Open a child span of the active trace (or a no-op when disabled)."""
    tracer = _TRACER.get()
    if tracer is None:
        return NULL_SPAN
    return tracer.start(name, attrs or None)


def tracing_active() -> bool:
    """True when a tracer is active in the current context."""
    return _TRACER.get() is not None


def current_span(name: str, default: object = NULL_SPAN):
    """The innermost open span (rarely needed; spans are usually local)."""
    tracer = _TRACER.get()
    if tracer is None or len(tracer._stack) <= 1:
        return default
    return tracer._stack[-1]


# ---------------------------------------------------------------------------
# Trace-context propagation across workers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SpanContext:
    """The picklable identity of one open span: rides in task payloads.

    A worker receiving a SpanContext records its own spans under a
    :class:`RemoteSpanCollector` and ships them back; the coordinator
    grafts the subtree under the span identified here.
    """

    trace_id: str
    span_id: str


def current_context() -> Optional[SpanContext]:
    """The SpanContext of the innermost open span (None when untraced)."""
    tracer = _TRACER.get()
    if tracer is None:
        return None
    return SpanContext(tracer.trace_id, tracer._stack[-1].span_id)


def _span_to_payload(node: Span, base: float) -> dict:
    """Serialise one span subtree with offsets relative to *base*.

    Relative offsets are the whole trick: worker and coordinator
    ``perf_counter`` clocks share no epoch, so absolute times would be
    meaningless after the payload crosses the process boundary.
    """
    out: dict = {
        "name": node.name,
        "span_id": node.span_id,
        "offset_s": round(node.start - base, 9),
        "duration_s": round(node.duration_seconds, 9),
    }
    if node.attrs:
        out["attrs"] = {key: _jsonable(val) for key, val in node.attrs.items()}
    if node.children:
        out["children"] = [
            _span_to_payload(child, base) for child in node.children
        ]
    return out


def _payload_to_span(data: dict, anchor: float) -> Span:
    node = Span(str(data.get("name", "remote")))
    node.span_id = str(data.get("span_id", ""))
    node.start = anchor + float(data.get("offset_s", 0.0))
    node.end = node.start + float(data.get("duration_s", 0.0))
    node.attrs.update(data.get("attrs") or {})
    for child in data.get("children", ()):
        node.children.append(_payload_to_span(child, anchor))
    return node


class RemoteSpanCollector:
    """Records spans worker-side and serialises them for the trip home.

    Constructed with the task's :class:`SpanContext` (or None, in which
    case the collector is a complete no-op and worker instrumentation
    stays on the :data:`NULL_SPAN` fast path).  Used as a context
    manager around the task body; :meth:`payload` afterwards returns the
    picklable span payload (or None) to attach to the task result::

        collector = RemoteSpanCollector(task.trace_ctx, shard=3)
        with collector:
            ... run the kernel; span(...) records into the collector ...
        return result, collector.payload()
    """

    def __init__(
        self,
        context: Optional[SpanContext],
        name: str = "worker",
        **origin: object,
    ):
        self.context = context
        self.origin: Dict[str, object] = {"pid": os.getpid()}
        self.origin.update(origin)
        self.tracer: Optional[Tracer] = (
            Tracer(name, trace_id=context.trace_id)
            if context is not None
            else None
        )

    @property
    def root(self) -> Optional[Span]:
        return self.tracer.root if self.tracer is not None else None

    def __enter__(self) -> "RemoteSpanCollector":
        if self.tracer is not None:
            self.tracer.__enter__()
        return self

    def __exit__(self, *exc_info) -> None:
        if self.tracer is not None:
            self.tracer.__exit__(*exc_info)

    def payload(self) -> Optional[dict]:
        """The picklable span payload (None when collection is disabled)."""
        if self.tracer is None or self.context is None:
            return None
        root = self.tracer.root
        if root.end < root.start:  # still open: snapshot defensively
            root.end = time.perf_counter()
        return {
            "ctx": [self.context.trace_id, self.context.span_id],
            "origin": dict(self.origin),
            "spans": _span_to_payload(root, root.start),
        }


def graft_payload(parent: Span, payload: Optional[dict]) -> Optional[Span]:
    """Attach a worker's serialised span subtree under *parent*.

    The grafted root keeps the worker's relative timing (anchored at the
    parent span's start — queueing delay between submit and worker start
    is not observable across clocks) and carries ``origin`` provenance so
    consumers can tell remote stage time from the coordinator's own.
    Returns the grafted root span, or None for an empty payload.
    """
    if not payload:
        return None
    node = _payload_to_span(payload.get("spans") or {}, parent.start)
    node.origin = dict(payload.get("origin") or {}) or {"remote": True}
    parent.children.append(node)
    return node


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(val) for key, val in value.items()}
    return repr(value)


def trace_to_dict(root: Span, stats: Optional[object] = None) -> dict:
    """One JSON-serialisable trace document (schema under ``trace_schema``).

    *stats* (a :class:`~repro.core.stats.QueryStats`) adds the query's
    counter totals next to the span tree.
    """
    doc: dict = {"trace_schema": TRACE_SCHEMA_VERSION, "root": root.to_dict()}
    tracer = root._tracer
    if tracer is not None:
        doc["trace_id"] = tracer.trace_id
    if stats is not None:
        doc["stats"] = {
            "strategy": getattr(stats, "strategy", ""),
            "runtime_ms": getattr(stats, "runtime_seconds", 0.0) * 1000.0,
            "sequences_scanned": getattr(stats, "sequences_scanned", 0),
            "indices_built": getattr(stats, "indices_built", 0),
            "index_bytes_built": getattr(stats, "index_bytes_built", 0),
            "index_joins": getattr(stats, "index_joins", 0),
            "cuboid_cache_hit": getattr(stats, "cuboid_cache_hit", False),
            "sequence_cache_hit": getattr(stats, "sequence_cache_hit", False),
            "index_reused": getattr(stats, "index_reused", False),
        }
    return doc


def _span_from_dict(data: dict) -> Span:
    node = Span(str(data.get("name", "?")))
    node.start = 0.0
    node.end = float(data.get("duration_ms", 0.0)) / 1000.0
    node.span_id = str(data.get("span_id", ""))
    origin = data.get("origin")
    if origin is not None:
        node.origin = dict(origin)
    node.attrs.update(data.get("attrs") or {})
    for child in data.get("children", ()):
        node.children.append(_span_from_dict(child))
    return node


def trace_from_dict(doc: dict) -> Span:
    """Rebuild the span tree of an exported trace document.

    Accepts both ``trace_schema`` 1 (name/duration/attrs/children only)
    and 2 (adds span ids and remote ``origin`` provenance).  Absolute
    start times are not exported, so rebuilt spans sit at offset 0 with
    their recorded durations — structure, names, attributes and
    provenance round-trip; the timeline does not.
    """
    schema = doc.get("trace_schema")
    if schema not in (1, 2):
        raise ValueError(
            f"unsupported trace_schema {schema!r}; this reader handles 1 and 2"
        )
    root_doc = doc.get("root")
    if not isinstance(root_doc, dict):
        raise ValueError("trace document has no 'root' span")
    return _span_from_dict(root_doc)


def trace_to_json(root: Span, stats: Optional[object] = None, indent: int = 2) -> str:
    return json.dumps(trace_to_dict(root, stats), indent=indent, sort_keys=False)
