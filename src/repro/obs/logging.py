"""Structured JSON logging for query-lifecycle events.

Built on stdlib :mod:`logging`: the service emits one record per
lifecycle event (admitted, started, finished, timed out, rejected, cache
hit, index built, session evicted) through a :class:`QueryLogger`, and
:class:`JsonLineFormatter` renders each record as a single JSON line —
machine-parseable, greppable, and shippable to any log pipeline.

The emission path is cheap when nobody is listening: every event goes
through ``Logger.isEnabledFor`` first, so with logging unconfigured (the
default — the ``solap`` logger has no handlers and the root level is
WARNING) an event costs one level check and returns.

Slow-query capture: :class:`QueryLogger` takes a threshold in seconds;
any query whose wall time crosses it additionally emits a ``slow_query``
record at WARNING with the query's EXPLAIN ANALYZE plan embedded as JSON
(when the query ran under tracing — the service turns tracing on
automatically whenever a slow-query threshold is configured).

Usage::

    from repro.obs.logging import configure_logging

    configure_logging()                      # JSON lines on stderr
    service = QueryService(db, ServiceConfig(slow_query_seconds=0.5))

Every line round-trips through ``json.loads``::

    {"ts": "2026-08-06T12:00:00.123+00:00", "level": "INFO",
     "logger": "solap.query", "event": "query_finished",
     "log_schema": 2, "query_id": "q000001", "strategy": "CB",
     "wall_ms": 12.3, ...}
"""

from __future__ import annotations

import hashlib
import json
import logging
from datetime import datetime, timezone
from typing import IO, Optional


def spec_digest(spec) -> str:
    """Stable short digest of a spec's cache key, for log correlation.

    ``query_ql`` text is lossy (global slices are emitted as comments), so
    the digest is the canonical join key for workload mining.
    """
    return hashlib.sha1(repr(spec.cache_key()).encode("utf-8")).hexdigest()[:12]

#: bump when the shape of emitted documents changes incompatibly
LOG_SCHEMA = 2  # 2: query identity fields (query_ql, spec_digest, cache_answer, cells)

#: parent logger every repro component logs under
ROOT_LOGGER_NAME = "solap"

#: the query-lifecycle event stream
QUERY_LOGGER_NAME = "solap.query"

# Library logging convention: a NullHandler on the package root stops
# logging.lastResort from dumping bare event names to stderr when the
# application never configured logging, while leaving propagation to
# application handlers intact.
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())


class JsonLineFormatter(logging.Formatter):
    """Render each record as one JSON object per line.

    Structured fields travel on the record as the ``solap`` attribute (a
    dict passed via ``extra={"solap": {...}}``); the event name is the
    log message itself.  Non-serialisable values fall back to ``repr``.
    """

    def format(self, record: logging.LogRecord) -> str:
        doc = {
            "ts": datetime.fromtimestamp(
                record.created, tz=timezone.utc
            ).isoformat(timespec="milliseconds"),
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
            "log_schema": LOG_SCHEMA,
        }
        fields = getattr(record, "solap", None)
        if isinstance(fields, dict):
            doc.update(fields)
        if record.exc_info:
            doc["exception"] = self.formatException(record.exc_info)
        return json.dumps(doc, default=repr)


def configure_logging(
    stream: Optional[IO[str]] = None,
    level: int = logging.INFO,
    logger_name: str = ROOT_LOGGER_NAME,
) -> logging.Logger:
    """Attach a JSON-lines handler to the ``solap`` logger tree.

    Idempotent per stream: calling twice with the same stream does not
    duplicate handlers.  Returns the configured logger.  *stream*
    defaults to stderr (the stdlib StreamHandler default).
    """
    logger = logging.getLogger(logger_name)
    for handler in logger.handlers:
        if (
            isinstance(handler, logging.StreamHandler)
            and isinstance(handler.formatter, JsonLineFormatter)
            and (stream is None or handler.stream is stream)
        ):
            break
    else:
        handler = logging.StreamHandler(stream)
        handler.setFormatter(JsonLineFormatter())
        logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger


class QueryLogger:
    """Emits query-lifecycle events as structured records.

    All emission methods are no-ops (one ``isEnabledFor`` check) when the
    target logger's effective level filters the event out, so the logger
    can stay permanently wired into the service.
    """

    def __init__(
        self,
        logger: Optional[logging.Logger] = None,
        slow_query_seconds: Optional[float] = None,
    ):
        self.logger = logger or logging.getLogger(QUERY_LOGGER_NAME)
        self.slow_query_seconds = slow_query_seconds

    def event(self, name: str, level: int = logging.INFO, **fields) -> None:
        """Emit one structured event (fields become top-level JSON keys)."""
        if not self.logger.isEnabledFor(level):
            return
        payload = {
            key: value for key, value in fields.items() if value is not None
        }
        self.logger.log(level, name, extra={"solap": payload})

    # -- lifecycle events ----------------------------------------------
    def query_admitted(
        self,
        query_id: str,
        wait_seconds: float,
        session_id: Optional[str] = None,
    ) -> None:
        self.event(
            "query_admitted",
            query_id=query_id,
            wait_ms=round(wait_seconds * 1000.0, 3),
            session_id=session_id,
        )

    def query_started(
        self,
        query_id: str,
        strategy: str,
        session_id: Optional[str] = None,
    ) -> None:
        self.event(
            "query_started",
            query_id=query_id,
            strategy=strategy,
            session_id=session_id,
        )

    def query_finished(
        self,
        query_id: str,
        stats,
        wall_seconds: float,
        session_id: Optional[str] = None,
        spec=None,
        cells: Optional[int] = None,
    ) -> None:
        """One record per answered query; a second one when it was slow.

        When *spec* is given the record carries the query's identity
        (``query_ql`` text and a stable ``spec_digest``) plus the result
        size, which is what the workload miner
        (:mod:`repro.optimizer.workload`) keys its frequency/latency
        statistics on.
        """
        fields = {
            "query_id": query_id,
            "session_id": session_id,
            "strategy": getattr(stats, "strategy", ""),
            "wall_ms": round(wall_seconds * 1000.0, 3),
            "engine_ms": round(
                getattr(stats, "runtime_seconds", 0.0) * 1000.0, 3
            ),
            "sequences_scanned": getattr(stats, "sequences_scanned", 0),
            "indices_built": getattr(stats, "indices_built", 0),
            "index_bytes_built": getattr(stats, "index_bytes_built", 0),
            "cuboid_cache_hit": getattr(stats, "cuboid_cache_hit", False),
            "sequence_cache_hit": getattr(stats, "sequence_cache_hit", False),
            "cache_answer": getattr(stats, "extra", {}).get("cache_answer"),
            "cells": cells,
        }
        if spec is not None and self.logger.isEnabledFor(logging.INFO):
            fields["spec_digest"] = spec_digest(spec)
            try:
                from repro.ql.formatter import format_spec

                fields["query_ql"] = format_spec(spec)
            except Exception:  # pragma: no cover — formatting must not kill logging
                fields["query_ql"] = None
        self.event("query_finished", **fields)
        if getattr(stats, "cuboid_cache_hit", False):
            self.event(
                "cuboid_cache_hit", query_id=query_id, session_id=session_id
            )
        if getattr(stats, "indices_built", 0):
            self.event(
                "index_built",
                query_id=query_id,
                indices_built=stats.indices_built,
                index_bytes_built=stats.index_bytes_built,
            )
        threshold = self.slow_query_seconds
        if threshold is not None and wall_seconds >= threshold:
            slow_fields = dict(fields)
            slow_fields["threshold_ms"] = round(threshold * 1000.0, 3)
            plan = getattr(stats, "plan", None)
            if plan is not None:
                slow_fields["plan"] = plan.to_dict()
            self.event("slow_query", logging.WARNING, **slow_fields)

    def query_timed_out(
        self,
        query_id: str,
        budget_seconds: Optional[float],
        elapsed_seconds: float,
        session_id: Optional[str] = None,
    ) -> None:
        self.event(
            "query_timed_out",
            logging.WARNING,
            query_id=query_id,
            session_id=session_id,
            budget_ms=(
                round(budget_seconds * 1000.0, 3)
                if budget_seconds is not None
                else None
            ),
            elapsed_ms=round(elapsed_seconds * 1000.0, 3),
        )

    def query_cancelled(
        self, query_id: str, session_id: Optional[str] = None
    ) -> None:
        """The client cancelled (or disconnected from) a running query."""
        self.event(
            "query_cancelled",
            query_id=query_id,
            session_id=session_id,
        )

    def stream_started(
        self,
        query_id: str,
        chunk_size: int,
        session_id: Optional[str] = None,
    ) -> None:
        self.event(
            "stream_started",
            query_id=query_id,
            chunk_size=chunk_size,
            session_id=session_id,
        )

    def stream_finished(
        self,
        query_id: str,
        estimates: int,
        sequences: int,
        wall_seconds: float,
        session_id: Optional[str] = None,
    ) -> None:
        self.event(
            "stream_finished",
            query_id=query_id,
            estimates=estimates,
            sequences=sequences,
            wall_ms=round(wall_seconds * 1000.0, 3),
            session_id=session_id,
        )

    def query_rejected(
        self, query_id: str, inflight: int, limit: int
    ) -> None:
        self.event(
            "query_rejected",
            logging.WARNING,
            query_id=query_id,
            inflight=inflight,
            limit=limit,
        )

    def query_failed(
        self,
        query_id: str,
        error: BaseException,
        session_id: Optional[str] = None,
    ) -> None:
        self.event(
            "query_failed",
            logging.ERROR,
            query_id=query_id,
            session_id=session_id,
            error_type=type(error).__name__,
            error=str(error),
        )

    def session_evicted(self, session_id: str, steps_executed: int) -> None:
        self.event(
            "session_evicted",
            session_id=session_id,
            steps_executed=steps_executed,
        )
