"""Per-query resource profiles: who scanned what, where, for how long.

A :class:`ResourceProfile` summarises one distributed query execution —
sequences/rows/approximate bytes scanned, cells produced and merged,
attach/rebuild/match/fold wall time per worker, and the planner's shard
skew.  Coordinators build one from the workers' grafted span trees plus
their :class:`~repro.shard.executor.ShardPartial` counters, store its
``to_dict()`` form in ``stats.extra["resource_profile"]``, and EXPLAIN
ANALYZE / the flight recorder / the ``solap_trace_*`` metric families all
read that one dict.

Everything here is dependency-free plain data so worker processes can
import it without dragging in the service layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.spans import Span

#: the worker-side stage spans a collector records per task (see
#: :mod:`repro.shard.executor`): attach is reported (it happened at
#: worker init, before any task), the other three are measured live
WORKER_STAGES = ("attach", "rebuild", "match", "fold")


@dataclass
class WorkerProfile:
    """One worker task's resource accounting (a shard, or a scan chunk)."""

    shard: int
    pid: int = 0
    backend: str = "serial"
    attach_s: float = 0.0
    rebuild_s: float = 0.0
    match_s: float = 0.0
    fold_s: float = 0.0
    sequences_scanned: int = 0
    rows_scanned: int = 0
    cells_out: int = 0
    index_bytes_built: int = 0

    def to_dict(self) -> dict:
        return {
            "shard": self.shard,
            "pid": self.pid,
            "backend": self.backend,
            "attach_s": round(self.attach_s, 6),
            "rebuild_s": round(self.rebuild_s, 6),
            "match_s": round(self.match_s, 6),
            "fold_s": round(self.fold_s, 6),
            "sequences_scanned": self.sequences_scanned,
            "rows_scanned": self.rows_scanned,
            "cells_out": self.cells_out,
            "index_bytes_built": self.index_bytes_built,
        }


@dataclass
class ResourceProfile:
    """Query-wide resource accounting across every worker and the merge."""

    backend: str = "serial"
    fanout: int = 0
    skew: float = 1.0
    sequences_scanned: int = 0
    rows_scanned: int = 0
    #: approximate encoded bytes read: rows x dims x 4 (uint32 codes);
    #: an estimate for capacity planning, not a measured byte count
    bytes_scanned: int = 0
    cells_merged: int = 0
    merge_seconds: float = 0.0
    workers: List[WorkerProfile] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "fanout": self.fanout,
            "skew": round(self.skew, 3),
            "sequences_scanned": self.sequences_scanned,
            "rows_scanned": self.rows_scanned,
            "bytes_scanned": self.bytes_scanned,
            "cells_merged": self.cells_merged,
            "merge_seconds": round(self.merge_seconds, 6),
            "workers": [worker.to_dict() for worker in self.workers],
        }


def stage_seconds_from_root(root: Optional[Span]) -> Dict[str, float]:
    """``worker.<stage>`` wall seconds recorded under one collector root.

    ``worker.attach`` is a zero-length marker whose real cost rides in
    its ``seconds`` attribute (the attach happened at worker start-up,
    before any task tracer existed), so the attribute wins over the
    span's own duration.
    """
    out: Dict[str, float] = {}
    if root is None:
        return out
    for stage in WORKER_STAGES:
        node = root.find(f"worker.{stage}")
        if node is None:
            continue
        if stage == "attach" and "seconds" in node.attrs:
            out[stage] = float(node.attrs["seconds"])  # type: ignore[arg-type]
        else:
            out[stage] = node.duration_seconds
    return out


def worker_profile_from_spans(
    root: Optional[Span],
    *,
    shard: int,
    backend: str,
    pid: int = 0,
    sequences_scanned: int = 0,
    rows_scanned: int = 0,
    cells_out: int = 0,
    index_bytes_built: int = 0,
) -> WorkerProfile:
    """Fold one collector's stage spans and counters into a WorkerProfile."""
    stages = stage_seconds_from_root(root)
    return WorkerProfile(
        shard=shard,
        pid=pid,
        backend=backend,
        attach_s=stages.get("attach", 0.0),
        rebuild_s=stages.get("rebuild", 0.0),
        match_s=stages.get("match", 0.0),
        fold_s=stages.get("fold", 0.0),
        sequences_scanned=sequences_scanned,
        rows_scanned=rows_scanned,
        cells_out=cells_out,
        index_bytes_built=index_bytes_built,
    )
