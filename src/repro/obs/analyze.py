"""EXPLAIN ANALYZE: annotate an executed query's plan with measured cost.

Where :func:`repro.core.explain.explain` predicts what the engine *would*
do, :func:`explain_analyze` reports what it *did*: per-stage wall time
for the five S-cuboid construction stages (selection, clustering,
sequence formation, grouping, aggregation), rows/sequences flowing
between them, cache outcomes, the II build/join/verify chain, and the
strategy actually chosen next to the cost model's prediction.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.explain import QueryPlan
from repro.core.spec import CuboidSpec
from repro.core.stats import QueryStats
from repro.obs.spans import Span

#: canonical display order of the construction stages (paper Section 3.2
#: steps 1-4 plus the strategy's aggregation pass)
STAGE_NAMES: Tuple[str, ...] = (
    "selection",
    "clustering",
    "sequence_formation",
    "grouping",
    "aggregation",
)


def stage_timings(
    root: Span, include_remote: bool = False
) -> List[Tuple[str, float, float]]:
    """Per-stage ``(name, start_offset_seconds, duration_seconds)`` records.

    Stages are returned in execution order (by start time).  A cached
    sequence pipeline contributes no selection/clustering/... stages —
    only the stages that actually ran appear.  Grafted worker subtrees
    (nodes carrying an ``origin``) are skipped unless *include_remote*:
    their wall time already lives inside the coordinator-side stage that
    scattered them, so counting both would double-book ``accounted``.
    """
    found: List[Tuple[str, float, float]] = []

    def visit(node: Span) -> None:
        if not include_remote and node.origin is not None:
            return
        if node.name in STAGE_NAMES:
            found.append(
                (node.name, node.start - root.start, node.duration_seconds)
            )
        for child in node.children:
            visit(child)

    visit(root)
    found.sort(key=lambda item: item[1])
    return found


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.3f} ms"


def _stage_detail(root: Span, name: str) -> str:
    node = root.find(name)
    if node is None:
        return ""
    parts = []
    for key in (
        "rows_in",
        "rows_out",
        "clusters_out",
        "sequences_out",
        "groups_out",
        "sequences_scanned",
        "cells_out",
        "strategy",
    ):
        if key in node.attrs:
            parts.append(f"{key.replace('_', ' ')}={node.attrs[key]}")
    return ", ".join(parts)


def _cost_prediction(engine, spec: CuboidSpec) -> Optional[Tuple[str, float, float]]:
    """(predicted strategy, cb scan-eq, ii scan-eq), or None on any failure."""
    try:
        from repro.optimizer.cost_model import CostModel, profile_groups

        groups = engine.sequence_groups(spec)
        key = spec.pipeline_key()
        profile = engine._profiles.get(key)
        if profile is None:
            domains = tuple(
                (symbol.attribute, symbol.level)
                for symbol in spec.template.symbols
                if not symbol.wildcard
            )
            profile = profile_groups(engine.db, groups, domains)
            engine._profiles[key] = profile
        model = CostModel(profile)
        group_key = next(iter(groups)).key if len(groups) else ()
        choice, cb, ii = model.choose(
            spec, engine.registry_for(spec), group_key, engine.db.schema
        )
        return choice, cb.scan_equivalents, ii.scan_equivalents
    except Exception:  # noqa: BLE001 - analysis must never fail the query
        return None


def explain_analyze(
    engine,
    spec: CuboidSpec,
    stats: QueryStats,
    root: Span,
) -> QueryPlan:
    """Build the annotated (measured) plan for one executed query."""
    plan = QueryPlan()
    template = spec.template
    total = root.duration_seconds or stats.runtime_seconds

    plan.add("EXPLAIN ANALYZE — S-OLAP query")
    plan.add(
        f"template: {template.kind.value}({', '.join(template.positions)}) "
        f"[m={template.length}, n={template.n_dims}]",
        1,
    )
    plan.add(f"total: {_fmt_ms(total)}", 1)

    if stats.cuboid_cache_hit:
        plan.add("cuboid repository: HIT — returned without computation", 1)
        return plan
    cache_answer = stats.extra.get("cache_answer", "")
    if isinstance(cache_answer, str) and cache_answer.startswith("derived:"):
        plan.add(
            "cuboid repository: semantic HIT — derived via "
            f"{cache_answer[len('derived:'):]} (no scan, no aggregation)",
            1,
        )
        for step in stats.extra.get("derivation_chain", ()):
            plan.add(f"derive: {step}", 2)
        return plan
    plan.add("cuboid repository: miss", 1)

    # -- strategy: chosen vs cost-model prediction -----------------------
    chosen = (stats.strategy or "?").upper()
    prediction = _cost_prediction(engine, spec)
    if prediction is not None:
        predicted, cb_cost, ii_cost = prediction
        verdict = "agrees" if predicted.upper() == chosen else "disagrees"
        plan.add(
            f"strategy: {chosen} (cost model predicts {predicted.upper()} "
            f"[CB {cb_cost:.0f} vs II {ii_cost:.0f} scan-eq] — {verdict})",
            1,
        )
    else:
        plan.add(f"strategy: {chosen}", 1)

    # -- matcher / join kernels actually used -----------------------------
    kernel = stats.extra.get("matcher")
    if kernel is not None:
        label = {
            "compiled": "compiled (dictionary-encoded)",
            "legacy": "legacy (value-space)",
            "fallback": "legacy (value-space; compile fell back)",
        }.get(kernel, kernel)
        plan.add(f"matcher kernel: {label}", 1)
    join_kernel = stats.extra.get("join_kernel")
    if join_kernel is not None:
        plan.add(f"join intersection kernel: {join_kernel}", 1)

    # -- scatter-gather shard fan-out -------------------------------------
    fanout = stats.extra.get("shard_fanout")
    if fanout is not None:
        backend = stats.extra.get("scan_backend", "serial")
        skew = stats.extra.get("shard_skew")
        skew_text = f", skew {skew:.2f}" if skew is not None else ""
        plan.add(
            f"shard fan-out: {fanout} shard(s) on {backend} backend"
            f"{skew_text} — partial S-cuboids merged",
            1,
        )

    # -- distributed execution: per-worker stage breakdown -----------------
    profile = stats.extra.get("resource_profile")
    if profile:
        plan.extra["resource_profile"] = profile
        plan.add("distributed execution:", 1)
        plan.add(
            f"backend {profile.get('backend', '?')}, "
            f"fanout {profile.get('fanout', 0)}, "
            f"skew {profile.get('skew', 1.0):.2f}, "
            f"{profile.get('sequences_scanned', 0)} sequences / "
            f"{profile.get('rows_scanned', 0)} rows scanned "
            f"(~{profile.get('bytes_scanned', 0) / 1e6:.2f} MB encoded)",
            2,
        )
        plan.add(
            f"merge: {profile.get('cells_merged', 0)} partial cells in "
            f"{_fmt_ms(profile.get('merge_seconds', 0.0))}",
            2,
        )
        for worker in profile.get("workers", ()):
            plan.add(
                f"shard {worker.get('shard', '?')} "
                f"(pid {worker.get('pid', 0)}): "
                f"attach {_fmt_ms(worker.get('attach_s', 0.0))}, "
                f"rebuild {_fmt_ms(worker.get('rebuild_s', 0.0))}, "
                f"match {_fmt_ms(worker.get('match_s', 0.0))}, "
                f"fold {_fmt_ms(worker.get('fold_s', 0.0))} — "
                f"{worker.get('sequences_scanned', 0)} seq, "
                f"{worker.get('cells_out', 0)} cells",
                2,
            )
    remote_roots = [node for node in root.walk() if node.origin is not None]
    if remote_roots and not profile:
        plan.add(
            f"distributed execution: {len(remote_roots)} worker span "
            "subtree(s) grafted (see trace export for stage detail)",
            1,
        )

    # -- the five stages, measured ---------------------------------------
    stages = stage_timings(root)
    plan.add("stages:", 1)
    if stats.sequence_cache_hit:
        plan.add(
            "selection/clustering/sequence formation/grouping: "
            "SKIPPED (sequence-cache hit)",
            2,
        )
    for name, __, duration in stages:
        detail = _stage_detail(root, name)
        label = name.replace("_", " ")
        plan.add(
            f"{label}: {_fmt_ms(duration)}" + (f" — {detail}" if detail else ""),
            2,
        )
    if stages:
        accounted = sum(duration for __, __unused, duration in stages)
        plan.add(
            f"accounted: {_fmt_ms(accounted)} of {_fmt_ms(total)} "
            f"({100.0 * accounted / total if total else 0.0:.1f}%)",
            2,
        )

    # -- II chain ---------------------------------------------------------
    builds = root.find_all("ii.build_index")
    joins = root.find_all("ii.join")
    verifies = root.find_all("ii.verify")
    transforms = root.find_all("ii.rollup_merge") + root.find_all("ii.refine")
    if builds or joins or verifies or transforms:
        plan.add("inverted-index chain:", 1)
        for label, nodes in (
            ("BuildIndex", builds),
            ("join", joins),
            ("verify", verifies),
            ("merge/refine", transforms),
        ):
            if nodes:
                spent = sum(node.duration_seconds for node in nodes)
                plan.add(f"{label}: {len(nodes)} step(s), {_fmt_ms(spent)}", 2)

    # -- caches and counters ----------------------------------------------
    plan.add(
        "caches: "
        f"sequence-cache hit={stats.sequence_cache_hit}, "
        f"index reused={stats.index_reused}",
        1,
    )
    plan.add(
        "counters: "
        f"{stats.sequences_scanned} sequences scanned, "
        f"{stats.indices_built} indices built "
        f"({stats.index_bytes_built / 1e6:.3f} MB), "
        f"{stats.index_joins} joins",
        1,
    )

    # -- service-side waits (present when traced through the service) -----
    admission = root.find("service.admission")
    if admission is not None:
        plan.add(
            f"service admission wait: {_fmt_ms(admission.duration_seconds)}", 1
        )
    return plan
