"""The flight recorder: a bounded ring of recent completed query traces.

Always on, sampling-capped.  The :class:`~repro.service.service.QueryService`
owns one :class:`FlightRecorder`; queries the caller did not ask to
analyze are promoted to tracing at a token-bucket-limited rate (so a
busy service still records a steady trickle of full traces without
paying span overhead on every query), and every completed trace —
sampled or explicitly requested — lands in a thread-safe ring buffer of
``capacity`` entries.

Entries are browsable three ways:

* ``GET /debug/traces`` on the metrics exporter — newest-first summary
  list (``?limit=N``);
* ``GET /debug/traces/<id>`` — one full entry: the ``trace_schema`` 2
  span tree, the query's stats, the resource profile, and the rendered
  EXPLAIN ANALYZE plan when one was built;
* ``solap trace --recent`` / ``solap trace --id <id>`` over the same
  HTTP routes.

Recording also feeds the ``solap_trace_*`` metric families: recorded /
sampled / dropped counters and per-stage worker span counts and wall
seconds aggregated from the grafted subtrees.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from typing import Callable, List, Optional

from repro.obs.spans import Span, trace_to_dict


class TraceMetrics:
    """The ``solap_trace_*`` family bundle (no-op without a registry)."""

    def __init__(self, registry=None):
        self.registry = registry
        if registry is None:
            return
        self.recorded = registry.counter(
            "solap_trace_recorded_total",
            "Query traces recorded in the flight recorder",
        )
        self.sampled = registry.counter(
            "solap_trace_sampled_total",
            "Queries promoted to tracing by the flight recorder's sampler",
        )
        self.dropped = registry.counter(
            "solap_trace_dropped_total",
            "Queries not traced because the sampling cap was exhausted",
        )
        self.worker_spans = registry.counter(
            "solap_trace_worker_spans_total",
            "Worker-side stage spans grafted into recorded traces",
            labels=("stage",),
        )
        self.worker_seconds = registry.counter(
            "solap_trace_worker_stage_seconds_total",
            "Worker-side wall seconds by stage across recorded traces",
            labels=("stage",),
        )

    def observe_sampled(self) -> None:
        if self.registry is not None:
            self.sampled.inc()

    def observe_dropped(self) -> None:
        if self.registry is not None:
            self.dropped.inc()

    def observe_recorded(self, root: Optional[Span]) -> None:
        if self.registry is None:
            return
        self.recorded.inc()
        if root is None:
            return
        from repro.obs.profile import WORKER_STAGES, stage_seconds_from_root

        for node in root.walk():
            if node.origin is None:
                continue
            stages = stage_seconds_from_root(node)
            for stage in WORKER_STAGES:
                if stage in stages:
                    self.worker_spans.labels(stage).inc()
                    self.worker_seconds.labels(stage).inc(stages[stage])


class FlightRecorder:
    """Thread-safe bounded ring buffer of recent completed query traces."""

    def __init__(
        self,
        capacity: int = 64,
        sample_per_second: float = 2.0,
        sample_burst: int = 4,
        registry=None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if sample_per_second < 0:
            raise ValueError("sample_per_second must be >= 0")
        self.capacity = capacity
        self.sample_per_second = sample_per_second
        self.sample_burst = max(sample_burst, 1)
        self.metrics = TraceMetrics(registry)
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self._ids = itertools.count(1)
        # token bucket driving should_sample(): starts full so the first
        # queries after start-up are always traced
        self._tokens = float(self.sample_burst)
        self._refilled_at = clock()

    # ------------------------------------------------------------------
    def should_sample(self) -> bool:
        """Consume one sampling token; False once the cap is exhausted.

        Callers promote an untraced query to ``analyze=True`` when this
        returns True — that is what keeps the recorder "always on"
        without tracing every query under load.
        """
        with self._lock:
            now = self._clock()
            self._tokens = min(
                float(self.sample_burst),
                self._tokens + (now - self._refilled_at) * self.sample_per_second,
            )
            self._refilled_at = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self.metrics.observe_sampled()
                return True
            self.metrics.observe_dropped()
            return False

    # ------------------------------------------------------------------
    def record(
        self,
        *,
        stats,
        query_id: str = "",
        spec=None,
        wall_seconds: float = 0.0,
        sampled: bool = False,
    ) -> Optional[str]:
        """Store one completed query's trace; returns its recorder id.

        Needs ``stats.trace`` (queries that ran untraced return None).
        The stored entry is entirely plain data — safe to serve over
        HTTP and immune to later mutation of the live objects.
        """
        root = getattr(stats, "trace", None)
        if root is None:
            return None
        template = getattr(spec, "template", None)
        summary = {
            "query_id": query_id,
            "trace_id": trace_to_dict(root).get("trace_id", ""),
            "template": (
                f"{template.kind.value}({', '.join(template.positions)})"
                if template is not None
                else ""
            ),
            "strategy": getattr(stats, "strategy", ""),
            "wall_ms": round(wall_seconds * 1000.0, 3),
            "sequences_scanned": getattr(stats, "sequences_scanned", 0),
            "shard_fanout": stats.extra.get("shard_fanout", 0),
            "backend": stats.extra.get("scan_backend", "serial"),
            "sampled": sampled,
            "recorded_unix": round(time.time(), 3),
        }
        plan = getattr(stats, "plan", None)
        entry = {
            "summary": summary,
            "trace": trace_to_dict(root, stats),
            "profile": stats.extra.get("resource_profile"),
            "plan": plan.to_dict() if plan is not None else None,
        }
        with self._lock:
            entry_id = f"t{next(self._ids):06d}"
            summary["id"] = entry_id
            self._entries[entry_id] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        self.metrics.observe_recorded(root)
        return entry_id

    # ------------------------------------------------------------------
    def recent(self, limit: int = 20) -> List[dict]:
        """Newest-first summaries of the recorded traces."""
        with self._lock:
            entries = list(self._entries.values())
        return [dict(entry["summary"]) for entry in reversed(entries[-limit:])]

    def get(self, entry_id: str) -> Optional[dict]:
        """One full recorded entry by recorder id (or trace id); else None."""
        with self._lock:
            entry = self._entries.get(entry_id)
            if entry is None:
                for candidate in self._entries.values():
                    if candidate["summary"].get("trace_id") == entry_id:
                        entry = candidate
                        break
        return entry

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "recorded": len(self._entries),
                "capacity": self.capacity,
                "sample_per_second": self.sample_per_second,
            }

    def __repr__(self) -> str:
        return (
            f"FlightRecorder({len(self)}/{self.capacity} traces, "
            f"{self.sample_per_second}/s sampling)"
        )
