"""Observability: hierarchical tracing spans and EXPLAIN ANALYZE.

The package has two layers:

* :mod:`repro.obs.spans` — context-var based tracing.  Instrumented code
  calls :func:`span` at stage boundaries; when no :class:`Tracer` is
  active the call returns a shared no-op and costs one context-var read.
  Activating a tracer (``with Tracer("query") as t: ...``) collects a
  tree of timed :class:`Span` records, exportable as JSON.
* :mod:`repro.obs.analyze` — turns a finished trace plus the query's
  :class:`~repro.core.stats.QueryStats` into an annotated
  :class:`~repro.core.explain.QueryPlan` (per-stage wall time, rows and
  sequences in/out, cache hits, strategy chosen vs cost-model
  prediction): the EXPLAIN ANALYZE output of
  ``engine.execute(spec, analyze=True)`` and ``solap query --analyze``.
"""

from repro.obs.spans import (
    NULL_SPAN,
    Span,
    Tracer,
    current_span,
    span,
    trace_to_dict,
    trace_to_json,
    tracing_active,
)


def __getattr__(name: str):
    # ``analyze`` depends on repro.core, which itself imports the span
    # primitives above — importing it lazily keeps the package free of
    # circular imports while ``repro.obs.explain_analyze`` still works.
    if name in ("explain_analyze", "stage_timings"):
        from repro.obs import analyze

        return getattr(analyze, name)
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")

__all__ = [
    "NULL_SPAN",
    "Span",
    "Tracer",
    "current_span",
    "explain_analyze",
    "span",
    "stage_timings",
    "trace_to_dict",
    "trace_to_json",
    "tracing_active",
]
