"""Observability: tracing, EXPLAIN ANALYZE, metrics, logs, and /metrics.

The package has two per-query layers and three fleet-level ones:

* :mod:`repro.obs.spans` — context-var based tracing.  Instrumented code
  calls :func:`span` at stage boundaries; when no :class:`Tracer` is
  active the call returns a shared no-op and costs one context-var read.
  Activating a tracer (``with Tracer("query") as t: ...``) collects a
  tree of timed :class:`Span` records, exportable as JSON.
* :mod:`repro.obs.analyze` — turns a finished trace plus the query's
  :class:`~repro.core.stats.QueryStats` into an annotated
  :class:`~repro.core.explain.QueryPlan` (per-stage wall time, rows and
  sequences in/out, cache hits, strategy chosen vs cost-model
  prediction): the EXPLAIN ANALYZE output of
  ``engine.execute(spec, analyze=True)`` and ``solap query --analyze``.
* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry` of
  labelled counters, gauges and fixed-bucket histograms with Prometheus
  text exposition; :func:`register_engine_metrics` exposes an engine's
  caches through pull-based callback instruments.
* :mod:`repro.obs.logging` — structured JSON logging of query-lifecycle
  events (stdlib :mod:`logging` underneath) with slow-query capture that
  embeds the EXPLAIN ANALYZE plan.
* :mod:`repro.obs.httpd` — a stdlib HTTP exporter serving ``/metrics``
  (Prometheus text), ``/healthz``, ``/varz`` (JSON snapshot) and the
  flight recorder's ``/debug/traces`` routes.
* :mod:`repro.obs.profile` / :mod:`repro.obs.recorder` — per-query
  resource profiles aggregated from worker span trees, and the bounded
  ring buffer of recent completed query traces behind ``solap trace``.
"""

from repro.obs.httpd import MetricsServer
from repro.obs.logging import JsonLineFormatter, QueryLogger, configure_logging
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    GLOBAL_REGISTRY,
    BucketHistogram,
    MetricsRegistry,
    register_engine_metrics,
)
from repro.obs.profile import ResourceProfile, WorkerProfile
from repro.obs.recorder import FlightRecorder
from repro.obs.spans import (
    NULL_SPAN,
    TRACE_SCHEMA_VERSION,
    RemoteSpanCollector,
    Span,
    SpanContext,
    Tracer,
    current_context,
    current_span,
    graft_payload,
    span,
    trace_from_dict,
    trace_to_dict,
    trace_to_json,
    tracing_active,
)


def __getattr__(name: str):
    # ``analyze`` depends on repro.core, which itself imports the span
    # primitives above — importing it lazily keeps the package free of
    # circular imports while ``repro.obs.explain_analyze`` still works.
    if name in ("explain_analyze", "stage_timings"):
        from repro.obs import analyze

        return getattr(analyze, name)
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")

__all__ = [
    "BucketHistogram",
    "DEFAULT_LATENCY_BUCKETS",
    "FlightRecorder",
    "GLOBAL_REGISTRY",
    "JsonLineFormatter",
    "MetricsRegistry",
    "MetricsServer",
    "NULL_SPAN",
    "QueryLogger",
    "RemoteSpanCollector",
    "ResourceProfile",
    "Span",
    "SpanContext",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "WorkerProfile",
    "configure_logging",
    "current_context",
    "current_span",
    "explain_analyze",
    "graft_payload",
    "register_engine_metrics",
    "span",
    "stage_timings",
    "trace_from_dict",
    "trace_to_dict",
    "trace_to_json",
    "tracing_active",
]
