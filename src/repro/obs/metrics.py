"""Process-wide metrics: a typed registry with Prometheus exposition.

Complements the per-query layers of :mod:`repro.obs` (spans trace ONE
query, EXPLAIN ANALYZE annotates ONE plan) with *fleet-level* telemetry:
monotone counters, point-in-time gauges and fixed-bucket latency
histograms that describe every query the process has answered.  The
paper's evaluation reasons about aggregate behaviour over query streams
(CB-vs-II crossover, cache reuse across a session); a registry makes
those aggregates continuously observable in production.

Design rules:

* **Cheap on the hot path.**  Incrementing a counter is one lock-guarded
  integer add; nothing here does per-event-row work.  Expensive state
  (cache entry counts, index bytes) is *pulled* at scrape time through
  callback instruments instead of being pushed on every mutation.
* **Prometheus-compatible.**  :meth:`MetricsRegistry.render_prometheus`
  emits the text exposition format (``# HELP`` / ``# TYPE`` headers,
  labelled samples, cumulative ``_bucket``/``_sum``/``_count`` triples
  for histograms) so any scraper can consume ``/metrics`` directly.
* **No third-party client.**  Everything is stdlib.

Typical use::

    registry = MetricsRegistry()
    queries = registry.counter(
        "solap_engine_queries_total", "Queries answered", labels=("strategy",)
    )
    queries.labels("cb").inc()

    latency = registry.histogram(
        "solap_service_query_latency_seconds", "Query wall time"
    )
    latency.observe(0.0123)

    print(registry.render_prometheus())
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Tuple

#: default histogram bucket upper bounds in seconds (log-ish spacing,
#: +inf last) — also exported as LATENCY_BUCKETS from repro.service.metrics
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, float("inf"),
)

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelValues = Tuple[str, ...]


class BucketHistogram:
    """Fixed-bucket histogram of durations in seconds.

    The canonical implementation behind both the registry's histogram
    instruments and the service layer's ``LatencyHistogram`` alias.
    """

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS):
        if not buckets or buckets[-1] != float("inf"):
            raise ValueError("last histogram bucket must be +inf")
        if list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted ascending")
        self.buckets = tuple(buckets)
        self.counts = [0] * len(buckets)
        self.total = 0.0
        self.count = 0
        self.max_observed = 0.0

    def observe(self, seconds: float) -> None:
        index = bisect_left(self.buckets, seconds)
        self.counts[min(index, len(self.buckets) - 1)] += 1
        self.total += seconds
        self.count += 1
        if seconds > self.max_observed:
            self.max_observed = seconds

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile: the upper bound of the bucket holding it.

        The +inf bucket reports the maximum ever observed instead, so p99
        stays finite and meaningful.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for bound, count in zip(self.buckets, self.counts):
            cumulative += count
            if cumulative >= target:
                return self.max_observed if bound == float("inf") else bound
        return self.max_observed

    def merge(self, other: "BucketHistogram") -> None:
        """Fold *other* into this histogram (bucket-wise sum).

        Lets per-session or per-worker histograms aggregate into a
        registry-level one.  Both histograms must share the exact bucket
        layout — summing mismatched buckets would silently misreport
        latencies.
        """
        if self.buckets != other.buckets:
            raise ValueError(
                "cannot merge histograms with different buckets: "
                f"{self.buckets} vs {other.buckets}"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.count += other.count
        if other.max_observed > self.max_observed:
            self.max_observed = other.max_observed

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_seconds": self.mean(),
            "p50_seconds": self.quantile(0.50),
            "p95_seconds": self.quantile(0.95),
            "p99_seconds": self.quantile(0.99),
            "max_seconds": self.max_observed,
        }

    def __repr__(self) -> str:
        return (
            f"BucketHistogram(n={self.count}, "
            f"mean={self.mean() * 1000:.2f}ms, "
            f"max={self.max_observed * 1000:.2f}ms)"
        )


class Counter:
    """A monotone counter child (one label combination of a family).

    With a *callback* the value is pulled at collect time instead of
    being pushed by ``inc`` — used to expose counters an object already
    keeps (cache hits, eviction totals) without double bookkeeping.
    """

    __slots__ = ("_lock", "_value", "_callback")

    def __init__(self, callback: Optional[Callable[[], float]] = None):
        self._lock = threading.Lock()
        self._value = 0.0
        self._callback = callback

    def inc(self, amount: float = 1.0) -> None:
        if self._callback is not None:
            raise ValueError("cannot inc() a callback-backed counter")
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        if self._callback is not None:
            return float(self._callback())
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value child; may be callback-backed."""

    __slots__ = ("_lock", "_value", "_callback")

    def __init__(self, callback: Optional[Callable[[], float]] = None):
        self._lock = threading.Lock()
        self._value = 0.0
        self._callback = callback

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            self._callback = None

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, callback: Callable[[], float]) -> None:
        """Pull the gauge's value from *callback* at collect time."""
        with self._lock:
            self._callback = callback

    @property
    def value(self) -> float:
        if self._callback is not None:
            return float(self._callback())
        with self._lock:
            return self._value


class Histogram:
    """A histogram child: a locked wrapper over :class:`BucketHistogram`."""

    __slots__ = ("_lock", "hist")

    def __init__(self, buckets: Tuple[float, ...]):
        self._lock = threading.Lock()
        self.hist = BucketHistogram(buckets)

    def observe(self, seconds: float) -> None:
        with self._lock:
            self.hist.observe(seconds)

    def merge(self, other: BucketHistogram) -> None:
        with self._lock:
            self.hist.merge(other)

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return self.hist.snapshot()


_CHILD_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric with a fixed label set and typed children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str = "",
        label_names: Tuple[str, ...] = (),
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ):
        if not _METRIC_NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        if kind not in _CHILD_TYPES:
            raise ValueError(f"unknown metric kind: {kind!r}")
        for label in label_names:
            if not _LABEL_NAME_RE.match(label):
                raise ValueError(f"invalid label name: {label!r}")
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.label_names = tuple(label_names)
        self.buckets = tuple(buckets)
        self._lock = threading.Lock()
        self._children: Dict[LabelValues, object] = {}
        if not self.label_names:
            # Unlabelled families have exactly one child, created eagerly
            # so the metric appears in scrapes before its first use.
            self._children[()] = self._new_child()

    def _new_child(self, callback: Optional[Callable[[], float]] = None):
        if self.kind == "histogram":
            if callback is not None:
                raise ValueError("histograms cannot be callback-backed")
            return Histogram(self.buckets)
        return _CHILD_TYPES[self.kind](callback)

    def labels(self, *values: object, **kwvalues: object):
        """The child for one label-value combination (created on demand)."""
        if kwvalues:
            if values:
                raise ValueError("pass labels positionally or by name, not both")
            try:
                values = tuple(kwvalues[name] for name in self.label_names)
            except KeyError as missing:
                raise ValueError(
                    f"missing label {missing} for metric {self.name!r}"
                ) from None
            if len(kwvalues) != len(self.label_names):
                raise ValueError(
                    f"unexpected labels for metric {self.name!r}: "
                    f"{sorted(set(kwvalues) - set(self.label_names))}"
                )
        if len(values) != len(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes {len(self.label_names)} "
                f"label(s) {self.label_names}, got {len(values)}"
            )
        key = tuple(str(value) for value in values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._new_child()
                self._children[key] = child
            return child

    def attach_callback(
        self, callback: Callable[[], float], *values: object
    ):
        """Register a callback-backed child for one label combination."""
        key = tuple(str(value) for value in values)
        if len(key) != len(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes {len(self.label_names)} "
                f"label(s), got {len(key)}"
            )
        with self._lock:
            child = self._new_child(callback)
            self._children[key] = child
            return child

    # -- convenience for unlabelled families ---------------------------
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def set_function(self, callback: Callable[[], float]) -> None:
        self.labels().set_function(callback)

    def observe(self, seconds: float) -> None:
        self.labels().observe(seconds)

    @property
    def value(self) -> float:
        return self.labels().value

    def children(self) -> List[Tuple[LabelValues, object]]:
        """Stable (label values, child) pairs for collection."""
        with self._lock:
            return sorted(self._children.items(), key=lambda item: item[0])

    def __repr__(self) -> str:
        return (
            f"MetricFamily({self.name!r}, {self.kind}, "
            f"labels={self.label_names}, {len(self._children)} series)"
        )


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(names: Iterable[str], values: Iterable[str]) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    return "{" + ",".join(pairs) + "}" if pairs else ""


class MetricsRegistry:
    """Thread-safe collection of metric families with text exposition.

    Registration is idempotent: asking for an existing name with the same
    kind and label set returns the existing family (so several components
    can share one registry without coordination); a mismatch raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    # -- registration ---------------------------------------------------
    def _register(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Tuple[str, ...],
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        labels = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != labels:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind} with labels {family.label_names}; "
                        f"cannot re-register as {kind} with labels {labels}"
                    )
                return family
            family = MetricFamily(name, kind, help_text, labels, buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labels: Tuple[str, ...] = ()
    ) -> MetricFamily:
        return self._register(name, "counter", help_text, labels)

    def gauge(
        self, name: str, help_text: str = "", labels: Tuple[str, ...] = ()
    ) -> MetricFamily:
        return self._register(name, "gauge", help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Tuple[str, ...] = (),
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        return self._register(name, "histogram", help_text, labels, buckets)

    def unregister(self, name: str) -> bool:
        with self._lock:
            return self._families.pop(name, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._families.clear()

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._families

    def __len__(self) -> int:
        with self._lock:
            return len(self._families)

    # -- exposition -----------------------------------------------------
    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (v0.0.4)."""
        lines: List[str] = []
        for family in self.families():
            if family.help_text:
                lines.append(f"# HELP {family.name} {family.help_text}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for label_values, child in family.children():
                if family.kind == "histogram":
                    lines.extend(
                        self._histogram_lines(family, label_values, child)
                    )
                else:
                    labels = _format_labels(family.label_names, label_values)
                    lines.append(
                        f"{family.name}{labels} "
                        f"{_format_value(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    @staticmethod
    def _histogram_lines(
        family: MetricFamily, label_values: LabelValues, child: Histogram
    ) -> List[str]:
        hist = child.hist
        lines: List[str] = []
        cumulative = 0
        for bound, count in zip(hist.buckets, hist.counts):
            cumulative += count
            labels = _format_labels(
                tuple(family.label_names) + ("le",),
                tuple(label_values) + (_format_value(bound),),
            )
            lines.append(f"{family.name}_bucket{labels} {cumulative}")
        labels = _format_labels(family.label_names, label_values)
        lines.append(f"{family.name}_sum{labels} {_format_value(hist.total)}")
        lines.append(f"{family.name}_count{labels} {hist.count}")
        return lines

    def snapshot(self) -> dict:
        """JSON-serialisable dump of every series (the ``/varz`` payload)."""
        out: dict = {}
        for family in self.families():
            series: dict = {}
            for label_values, child in family.children():
                key = (
                    ",".join(
                        f"{name}={value}"
                        for name, value in zip(family.label_names, label_values)
                    )
                    or ""
                )
                if family.kind == "histogram":
                    series[key] = child.snapshot()
                else:
                    series[key] = child.value
            out[family.name] = {"type": family.kind, "series": series}
        return out

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self)} families)"


#: the process-wide default registry (components may opt into sharing it;
#: QueryService creates a private one per instance by default so tests
#: and multi-service processes never collide)
GLOBAL_REGISTRY = MetricsRegistry()


def register_engine_metrics(registry: MetricsRegistry, engine) -> None:
    """Expose an engine's caches and counters on *registry* (pull-based).

    Everything here reads state the engine already maintains — cache
    hit/miss/eviction counts, entry counts, index bytes, per-strategy
    query totals — through callbacks evaluated at scrape time, so query
    execution pays nothing for being observable.
    """
    queries = registry.counter(
        "solap_engine_queries_total",
        "Queries answered by the engine, by construction strategy",
        labels=("strategy",),
    )
    for strategy in ("cb", "ii", "cache", "derived"):
        queries.attach_callback(
            lambda s=strategy: engine.strategy_counts.get(s, 0), strategy
        )
    registry.counter(
        "solap_engine_sequences_scanned_total",
        "Total sequence accesses across all queries",
    ).attach_callback(lambda: engine.sequences_scanned_total)

    from repro.optimizer.semantic_cache import REJECT_LABELS, SEMANTIC_OPS

    semantic_hits = registry.counter(
        "solap_cuboid_semantic_hits_total",
        "Queries answered by deriving from a cached cuboid, by ops in the "
        "derivation chain",
        labels=("op",),
    )
    semantic_derivations = registry.counter(
        "solap_cuboid_semantic_derivations_total",
        "Derivation steps executed on cached cells, by op",
        labels=("op",),
    )
    for op in SEMANTIC_OPS:
        semantic_hits.attach_callback(
            lambda o=op: engine.semantic_hits.get(o, 0), op
        )
        semantic_derivations.attach_callback(
            lambda o=op: engine.semantic_derivations.get(o, 0), op
        )
    semantic_rejects = registry.counter(
        "solap_cuboid_semantic_rejects_total",
        "Cached cuboids found unusable for an incoming query, by the op "
        "(or gate) separating them",
        labels=("op",),
    )
    for op in REJECT_LABELS:
        semantic_rejects.attach_callback(
            lambda o=op: engine.semantic_rejects.get(o, 0), op
        )

    from repro.core.matcher import matcher_dispatch_counts

    dispatch = registry.counter(
        "solap_matcher_dispatch_total",
        "Matchers constructed, by kernel outcome (compiled / legacy / "
        "fallback); process-local — worker processes keep their own counts",
        labels=("kind",),
    )
    for kind in ("compiled", "legacy", "fallback"):
        dispatch.attach_callback(
            lambda k=kind: matcher_dispatch_counts().get(k, 0), kind
        )
    registry.counter(
        "solap_engine_rows_aggregated_total",
        "Total result cells aggregated across all queries",
    ).attach_callback(lambda: engine.rows_aggregated_total)

    cache = engine.sequence_cache
    registry.gauge(
        "solap_sequence_cache_entries",
        "Sequence-cache entries currently resident",
    ).set_function(lambda: len(cache))
    lookups = registry.counter(
        "solap_sequence_cache_lookups_total",
        "Sequence-cache lookups by outcome",
        labels=("outcome",),
    )
    lookups.attach_callback(lambda: cache.hits, "hit")
    lookups.attach_callback(lambda: cache.misses, "miss")
    registry.counter(
        "solap_sequence_cache_evictions_total",
        "Sequence-cache entries evicted by the LRU policy",
    ).attach_callback(lambda: cache.evictions)

    repo = engine.repository
    registry.gauge(
        "solap_cuboid_repository_entries",
        "Cuboids currently cached in the repository",
    ).set_function(lambda: len(repo))
    registry.gauge(
        "solap_cuboid_repository_bytes",
        "Estimated bytes of cached cuboids",
    ).set_function(lambda: repo.bytes_used)
    repo_lookups = registry.counter(
        "solap_cuboid_repository_lookups_total",
        "Cuboid-repository lookups by outcome",
        labels=("outcome",),
    )
    repo_lookups.attach_callback(lambda: repo.hits, "hit")
    repo_lookups.attach_callback(lambda: repo.misses, "miss")
    registry.counter(
        "solap_cuboid_repository_evictions_total",
        "Cuboids evicted from the repository",
    ).attach_callback(lambda: repo.evictions)

    registry.gauge(
        "solap_index_registry_indices",
        "Materialised inverted indices currently registered",
    ).set_function(lambda: len(engine.registry))
    registry.gauge(
        "solap_index_registry_pipelines",
        "Sequence-formation pipelines with at least one index",
    ).set_function(lambda: len(engine._registries))
    registry.gauge(
        "solap_index_registry_bytes",
        "Estimated bytes of materialised inverted indices",
    ).set_function(lambda: engine.registry.total_bytes())
    registry.counter(
        "solap_index_registry_evictions_total",
        "Indices evicted to fit the index byte budget",
    ).attach_callback(lambda: engine.index_evictions_total)
