"""Intermediate representation of a parsed S-OLAP query.

The parser first builds a :class:`ParsedQuery` — a faithful, purely
syntactic record of every clause — and :meth:`ParsedQuery.to_spec` then
lowers it to a semantic :class:`~repro.core.spec.CuboidSpec`.  Keeping the
two stages separate lets tests assert on parse structure without a schema
and keeps the formatter round-trip honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.spec import (
    AggregateScope,
    AggregateSpec,
    CellRestriction,
    CuboidSpec,
    MatchingPredicate,
    PatternKind,
    PatternSymbol,
    PatternTemplate,
)
from repro.errors import SpecError
from repro.events.expression import Expr


@dataclass
class SymbolBinding:
    """``X AS location AT station [= "Pentagon"] [WITHIN district = "D10"]``."""

    name: str
    attribute: str
    level: str
    fixed: Optional[object] = None
    within: Optional[Tuple[str, object]] = None

    def to_symbol(self) -> PatternSymbol:
        return PatternSymbol(
            self.name, self.attribute, self.level, self.fixed, self.within
        )


@dataclass
class AggregateClause:
    """One SELECT-list entry, e.g. ``SUM(amount) OVER SEQUENCE``."""

    func: str
    argument: Optional[str]
    scope: str = "MATCHED"

    def to_spec(self) -> AggregateSpec:
        return AggregateSpec(
            self.func, self.argument, AggregateScope(self.scope)
        )


@dataclass
class ParsedQuery:
    """All clauses of one S-OLAP query, pre-semantic-lowering."""

    aggregates: List[AggregateClause]
    source: str
    where: Optional[Expr]
    cluster_by: List[Tuple[str, str]]
    sequence_by: List[Tuple[str, bool]]
    group_by: List[Tuple[str, str]]
    pattern_kind: str
    positions: List[str]
    bindings: List[SymbolBinding]
    restriction: str
    placeholders: List[str] = field(default_factory=list)
    matching_predicate: Optional[Expr] = None
    #: auto-named ANY positions (wildcard symbols, no bindings needed)
    wildcards: List[str] = field(default_factory=list)
    #: iceberg condition from HAVING COUNT(*) >= n
    min_support: Optional[int] = None

    def to_spec(self) -> CuboidSpec:
        """Lower to a :class:`CuboidSpec` (raises SpecError on bad shape)."""
        by_name = {binding.name: binding for binding in self.bindings}
        wildcard_names = set(self.wildcards)
        missing = [
            name
            for name in self.positions
            if name not in by_name and name not in wildcard_names
        ]
        if missing:
            raise SpecError(f"symbols without WITH bindings: {missing}")
        order: List[str] = []
        for name in self.positions:
            if name not in order:
                order.append(name)

        def symbol_for(name: str) -> PatternSymbol:
            if name in wildcard_names:
                return PatternSymbol.any(name)
            return by_name[name].to_symbol()

        template = PatternTemplate(
            kind=PatternKind(self.pattern_kind),
            positions=tuple(self.positions),
            symbols=tuple(symbol_for(name) for name in order),
        )
        predicate = None
        if self.placeholders:
            if self.matching_predicate is not None:
                predicate = MatchingPredicate(
                    tuple(self.placeholders), self.matching_predicate
                )
            # Placeholders without a WITH expression carry no constraint:
            # the paper still writes them (they name the matched events),
            # so they parse fine but lower to "no predicate".
        return CuboidSpec(
            template=template,
            cluster_by=tuple(self.cluster_by),
            sequence_by=tuple(self.sequence_by),
            group_by=tuple(self.group_by),
            where=self.where,
            restriction=CellRestriction(self.restriction),
            predicate=predicate,
            aggregates=tuple(a.to_spec() for a in self.aggregates),
            min_support=self.min_support,
        )
