"""Lexer for the S-OLAP query language (Figures 3, 5 and 11 of the paper).

The language is line-oriented SQL-style text such as::

    SELECT COUNT(*) FROM Event
    WHERE time >= "2007-10-01T00:00" AND time < "2007-12-31T24:00"
    CLUSTER BY card-id AT individual, time AT day
    SEQUENCE BY time ASCENDING
    SEQUENCE GROUP BY card-id AT fare-group, time AT day
    CUBOID BY SUBSTRING (X, Y, Y, X)
      WITH X AS location AT station, Y AS location AT station
    LEFT-MAXIMALITY (x1, y1, y2, x2)
      WITH x1.action = "in" AND y1.action = "out"

Identifiers may contain hyphens (``card-id``, ``fare-group``), matching the
paper's attribute names; keywords are case-insensitive.  Timestamps and any
other non-numeric literals must be quoted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import QueryLanguageError


class TokenType(enum.Enum):
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OP = "OP"  # = != < <= > >=
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    COMMA = "COMMA"
    DOT = "DOT"
    STAR = "STAR"
    EOF = "EOF"


#: Keywords, uppercased.  Hyphenated keywords lex as single IDENT tokens
#: because identifiers admit interior hyphens.
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "CLUSTER", "SEQUENCE", "GROUP", "BY",
        "CUBOID", "SUBSTRING", "SUBSEQUENCE", "WITH", "AS", "AT", "WITHIN",
        "ANY", "HAVING",
        "AND", "OR", "NOT", "IN", "BETWEEN",
        "ASCENDING", "DESCENDING", "ASC", "DESC",
        "OVER", "MATCHED", "FIRST-EVENT",
        "LEFT-MAXIMALITY", "LEFT-MAXIMALITY-DATA", "ALL-MATCHED",
        "COUNT", "SUM", "AVG", "MIN", "MAX",
    }
)

_OPERATOR_CHARS = {"=", "!", "<", ">"}
_TWO_CHAR_OPS = {"!=", "<=", ">="}


@dataclass(frozen=True)
class Token:
    """One lexical token with source position (1-based line/column)."""

    type: TokenType
    value: str
    line: int
    column: int

    @property
    def keyword(self) -> str:
        """The uppercased value (for keyword comparisons)."""
        return self.value.upper()

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.IDENT and self.keyword == word

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_-"


def tokenize(text: str) -> List[Token]:
    """Tokenise a full query; raises :class:`QueryLanguageError` on garbage."""
    return list(iter_tokens(text))


def iter_tokens(text: str) -> Iterator[Token]:
    line = 1
    column = 1
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            column += 1
            continue
        if ch == "-" and i + 1 < n and text[i + 1] == "-":
            # SQL-style line comment
            while i < n and text[i] != "\n":
                i += 1
            continue
        start_col = column
        if ch == '"' or ch == "'":
            quote = ch
            j = i + 1
            buf = []
            while j < n and text[j] != quote:
                if text[j] == "\n":
                    raise QueryLanguageError("unterminated string", line, start_col)
                buf.append(text[j])
                j += 1
            if j >= n:
                raise QueryLanguageError("unterminated string", line, start_col)
            value = "".join(buf)
            yield Token(TokenType.STRING, value, line, start_col)
            column += j + 1 - i
            i = j + 1
            continue
        if ch.isdigit() or (
            ch == "-" and i + 1 < n and text[i + 1].isdigit()
        ):
            j = i + 1
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # Only treat as decimal point when followed by a digit.
                    if j + 1 < n and text[j + 1].isdigit():
                        seen_dot = True
                    else:
                        break
                j += 1
            value = text[i:j]
            yield Token(TokenType.NUMBER, value, line, start_col)
            column += j - i
            i = j
            continue
        if _is_ident_start(ch):
            j = i + 1
            while j < n and _is_ident_char(text[j]):
                j += 1
            value = text[i:j]
            yield Token(TokenType.IDENT, value, line, start_col)
            column += j - i
            i = j
            continue
        if ch in _OPERATOR_CHARS:
            two = text[i : i + 2]
            if two in _TWO_CHAR_OPS:
                yield Token(TokenType.OP, two, line, start_col)
                i += 2
                column += 2
                continue
            if ch == "!":
                raise QueryLanguageError("expected '!=' operator", line, start_col)
            yield Token(TokenType.OP, ch, line, start_col)
            i += 1
            column += 1
            continue
        simple = {
            "(": TokenType.LPAREN,
            ")": TokenType.RPAREN,
            ",": TokenType.COMMA,
            ".": TokenType.DOT,
            "*": TokenType.STAR,
        }.get(ch)
        if simple is not None:
            yield Token(simple, ch, line, start_col)
            i += 1
            column += 1
            continue
        raise QueryLanguageError(f"unexpected character {ch!r}", line, start_col)
    yield Token(TokenType.EOF, "", line, column)
