"""Formatter: turn a :class:`CuboidSpec` back into query-language text.

``parse_query(format_spec(spec))`` round-trips to an equal spec for every
construct the language covers (global slices/dices are session state, not
language constructs, and are emitted as a trailing comment).
"""

from __future__ import annotations

from repro.core.spec import AggregateScope, CuboidSpec
from repro.events.expression import (
    And,
    Between,
    Comparison,
    EventField,
    Expr,
    InSet,
    Literal,
    Not,
    Or,
    PlaceholderField,
    TruePredicate,
)


def format_literal(value: object) -> str:
    """Render a literal: numbers bare, everything else double-quoted."""
    if isinstance(value, bool):
        return f'"{value}"'
    if isinstance(value, (int, float)):
        return repr(value)
    return '"' + str(value) + '"'


def _format_operand(operand: object) -> str:
    if isinstance(operand, Literal):
        return format_literal(operand.value)
    if isinstance(operand, EventField):
        return operand.attribute
    if isinstance(operand, PlaceholderField):
        return f"{operand.placeholder}.{operand.attribute}"
    raise TypeError(f"cannot format operand {operand!r}")


def format_expr(expr: Expr) -> str:
    """Render a predicate expression as query-language text."""
    if isinstance(expr, Comparison):
        return (
            f"{_format_operand(expr.left)} {expr.op} "
            f"{_format_operand(expr.right)}"
        )
    if isinstance(expr, InSet):
        inner = ", ".join(format_literal(v) for v in expr.values)
        return f"{_format_operand(expr.operand)} IN ({inner})"
    if isinstance(expr, Between):
        return (
            f"{_format_operand(expr.operand)} BETWEEN "
            f"{format_literal(expr.low)} AND {format_literal(expr.high)}"
        )
    if isinstance(expr, And):
        return " AND ".join(_wrap(term) for term in expr.terms)
    if isinstance(expr, Or):
        return " OR ".join(_wrap(term) for term in expr.terms)
    if isinstance(expr, Not):
        return f"NOT {_wrap(expr.term)}"
    if isinstance(expr, TruePredicate):
        return '"" = ""'  # degenerate but parseable always-true comparison
    raise TypeError(f"cannot format expression {expr!r}")


def _wrap(expr: Expr) -> str:
    text = format_expr(expr)
    if isinstance(expr, (And, Or)):
        return f"({text})"
    return text


def format_spec(spec: CuboidSpec, source: str = "Event") -> str:
    """Render a full S-cuboid specification as query text."""
    lines = []
    select = []
    for aggregate in spec.aggregates:
        text = aggregate.name
        if aggregate.func != "COUNT" and aggregate.scope is not AggregateScope.MATCHED:
            text += f" OVER {aggregate.scope.value}"
        select.append(text)
    lines.append(f"SELECT {', '.join(select)} FROM {source}")
    if spec.where is not None:
        lines.append(f"WHERE {format_expr(spec.where)}")
    lines.append(
        "CLUSTER BY "
        + ", ".join(f"{attr} AT {level}" for attr, level in spec.cluster_by)
    )
    lines.append(
        "SEQUENCE BY "
        + ", ".join(
            f"{attr} {'ASCENDING' if ascending else 'DESCENDING'}"
            for attr, ascending in spec.sequence_by
        )
    )
    if spec.group_by:
        lines.append(
            "SEQUENCE GROUP BY "
            + ", ".join(f"{attr} AT {level}" for attr, level in spec.group_by)
        )
    template = spec.template
    wildcard_names = {s.name for s in template.symbols if s.wildcard}
    rendered_positions = [
        "ANY" if name in wildcard_names else name for name in template.positions
    ]
    lines.append(
        f"CUBOID BY {template.kind.value} ({', '.join(rendered_positions)})"
    )
    bindings = []
    for symbol in template.symbols:
        if symbol.wildcard:
            continue
        text = f"{symbol.name} AS {symbol.attribute} AT {symbol.level}"
        if symbol.fixed is not None:
            text += f" = {format_literal(symbol.fixed)}"
        if symbol.within is not None:
            anchor_level, anchor_value = symbol.within
            text += f" WITHIN {anchor_level} = {format_literal(anchor_value)}"
        bindings.append(text)
    if bindings:
        lines.append("  WITH " + ", ".join(bindings))
    if spec.predicate is not None:
        placeholders = spec.predicate.placeholders
    else:
        placeholders = tuple(f"p{i + 1}" for i in range(template.length))
    lines.append(f"{spec.restriction.value} ({', '.join(placeholders)})")
    if spec.predicate is not None and not isinstance(
        spec.predicate.expr, TruePredicate
    ):
        lines.append(f"  WITH {format_expr(spec.predicate.expr)}")
    if spec.min_support is not None:
        lines.append(f"HAVING COUNT(*) >= {spec.min_support}")
    if spec.global_slice:
        lines.append(
            "-- global slice: "
            + ", ".join(f"dim{index}={value!r}" for index, value in spec.global_slice)
        )
    return "\n".join(lines)
