"""Recursive-descent parser for the S-OLAP query language.

Entry points:

* :func:`parse` — text → :class:`~repro.ql.ast.ParsedQuery`;
* :func:`parse_query` — text → :class:`~repro.core.spec.CuboidSpec`
  (optionally validated against a schema).

The grammar follows the paper's Figures 3/5/11 plus the natural extras the
running text mentions (SUBSEQUENCE templates, other aggregates, the two
additional cell restrictions, slicing with ``= literal`` and drill-down
``WITHIN level = literal`` annotations on symbol bindings).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.spec import CuboidSpec
from repro.errors import QueryLanguageError
from repro.events.expression import (
    And,
    Between,
    Comparison,
    EventField,
    Expr,
    InSet,
    Literal,
    Not,
    Or,
    PlaceholderField,
)
from repro.events.schema import Schema
from repro.ql.ast import AggregateClause, ParsedQuery, SymbolBinding
from repro.ql.lexer import Token, TokenType, tokenize

_RESTRICTIONS = ("LEFT-MAXIMALITY", "LEFT-MAXIMALITY-DATA", "ALL-MATCHED")
_AGG_FUNCS = ("COUNT", "SUM", "AVG", "MIN", "MAX")
_SCOPES = ("MATCHED", "SEQUENCE", "FIRST-EVENT")


class _Parser:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token plumbing ----------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def error(self, message: str) -> QueryLanguageError:
        token = self.current
        return QueryLanguageError(
            f"{message}, found {token.value!r}", token.line, token.column
        )

    def expect(self, token_type: TokenType, value: Optional[str] = None) -> Token:
        token = self.current
        if token.type is not token_type:
            raise self.error(f"expected {value or token_type.name}")
        if value is not None and token.keyword != value.upper():
            raise self.error(f"expected {value!r}")
        return self.advance()

    def expect_keyword(self, *words: str) -> None:
        for word in words:
            token = self.current
            if not token.is_keyword(word):
                raise self.error(f"expected keyword {word!r}")
            self.advance()

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def peek_keyword(self, word: str) -> bool:
        return self.current.is_keyword(word)

    def ident(self, what: str = "identifier") -> str:
        token = self.current
        if token.type is not TokenType.IDENT:
            raise self.error(f"expected {what}")
        return self.advance().value

    # -- query -------------------------------------------------------------
    def parse_query(self) -> ParsedQuery:
        self.expect_keyword("SELECT")
        aggregates = self.aggregate_list()
        self.expect_keyword("FROM")
        source = self.ident("source name")

        where = None
        if self.accept_keyword("WHERE"):
            where = self.expression(context="where")

        self.expect_keyword("CLUSTER", "BY")
        cluster_by = self.attr_level_list()

        self.expect_keyword("SEQUENCE", "BY")
        sequence_by = self.order_list()

        group_by: List[Tuple[str, str]] = []
        if self.peek_keyword("SEQUENCE"):
            self.expect_keyword("SEQUENCE", "GROUP", "BY")
            group_by = self.attr_level_list()

        self.expect_keyword("CUBOID", "BY")
        kind_token = self.current
        if kind_token.is_keyword("SUBSTRING"):
            pattern_kind = "SUBSTRING"
        elif kind_token.is_keyword("SUBSEQUENCE"):
            pattern_kind = "SUBSEQUENCE"
        else:
            raise self.error("expected SUBSTRING or SUBSEQUENCE")
        self.advance()
        positions, wildcards = self.position_list()
        if self.accept_keyword("WITH"):
            bindings = self.binding_list()
        else:
            bindings = []
        if not bindings and any(name not in wildcards for name in positions):
            raise self.error("expected WITH symbol bindings")

        restriction_token = self.current
        restriction = None
        for candidate in _RESTRICTIONS:
            if restriction_token.is_keyword(candidate):
                restriction = candidate
                break
        if restriction is None:
            raise self.error(
                "expected a cell restriction "
                "(LEFT-MAXIMALITY / LEFT-MAXIMALITY-DATA / ALL-MATCHED)"
            )
        self.advance()
        placeholders = self.name_list()
        if len(placeholders) != len(positions):
            raise QueryLanguageError(
                f"{len(placeholders)} placeholders for a length-"
                f"{len(positions)} template",
                restriction_token.line,
                restriction_token.column,
            )

        matching = None
        if self.accept_keyword("WITH"):
            matching = self.expression(context="match")

        min_support = None
        if self.accept_keyword("HAVING"):
            self.expect_keyword("COUNT")
            self.expect(TokenType.LPAREN, "(")
            self.expect(TokenType.STAR, "*")
            self.expect(TokenType.RPAREN, ")")
            token = self.current
            if not (token.type is TokenType.OP and token.value == ">="):
                raise self.error("expected '>=' in HAVING COUNT(*)")
            self.advance()
            value = self.literal_value()
            if not isinstance(value, int):
                raise QueryLanguageError(
                    "HAVING COUNT(*) >= requires an integer",
                    token.line,
                    token.column,
                )
            min_support = value

        self.expect(TokenType.EOF)
        return ParsedQuery(
            aggregates=aggregates,
            source=source,
            where=where,
            cluster_by=cluster_by,
            sequence_by=sequence_by,
            group_by=group_by,
            pattern_kind=pattern_kind,
            positions=positions,
            bindings=bindings,
            restriction=restriction,
            placeholders=placeholders,
            matching_predicate=matching,
            wildcards=wildcards,
            min_support=min_support,
        )

    # -- clauses -----------------------------------------------------------
    def aggregate_list(self) -> List[AggregateClause]:
        aggregates = [self.aggregate()]
        while self.current.type is TokenType.COMMA:
            self.advance()
            aggregates.append(self.aggregate())
        return aggregates

    def aggregate(self) -> AggregateClause:
        token = self.current
        func = token.keyword
        if func not in _AGG_FUNCS:
            raise self.error("expected an aggregate function")
        self.advance()
        self.expect(TokenType.LPAREN, "(")
        if func == "COUNT":
            self.expect(TokenType.STAR, "*")
            argument = None
        else:
            argument = self.ident("measure name")
        self.expect(TokenType.RPAREN, ")")
        scope = "MATCHED"
        if self.accept_keyword("OVER"):
            scope_token = self.current
            scope = scope_token.keyword
            if scope not in _SCOPES:
                raise self.error("expected MATCHED, SEQUENCE or FIRST-EVENT")
            self.advance()
        return AggregateClause(func, argument, scope)

    def attr_level_list(self) -> List[Tuple[str, str]]:
        pairs = [self.attr_level()]
        while self.current.type is TokenType.COMMA:
            self.advance()
            pairs.append(self.attr_level())
        return pairs

    def attr_level(self) -> Tuple[str, str]:
        attribute = self.ident("attribute name")
        self.expect_keyword("AT")
        level = self.ident("level name")
        return attribute, level

    def order_list(self) -> List[Tuple[str, bool]]:
        orders = [self.order_key()]
        while self.current.type is TokenType.COMMA:
            self.advance()
            orders.append(self.order_key())
        return orders

    def order_key(self) -> Tuple[str, bool]:
        attribute = self.ident("ordering attribute")
        if self.accept_keyword("ASCENDING") or self.accept_keyword("ASC"):
            return attribute, True
        if self.accept_keyword("DESCENDING") or self.accept_keyword("DESC"):
            return attribute, False
        return attribute, True

    def name_list(self) -> List[str]:
        self.expect(TokenType.LPAREN, "(")
        names = [self.ident("name")]
        while self.current.type is TokenType.COMMA:
            self.advance()
            names.append(self.ident("name"))
        self.expect(TokenType.RPAREN, ")")
        return names

    def position_list(self) -> tuple:
        """Template positions: symbol names plus ANY wildcards.

        Each ANY keyword becomes a fresh ``_wN`` wildcard symbol name;
        returns (positions, wildcard_names).
        """
        self.expect(TokenType.LPAREN, "(")
        positions: List[str] = []
        wildcards: List[str] = []

        def one() -> None:
            if self.current.is_keyword("ANY"):
                self.advance()
                name = f"_w{len(wildcards) + 1}"
                wildcards.append(name)
                positions.append(name)
            else:
                positions.append(self.ident("symbol name or ANY"))

        one()
        while self.current.type is TokenType.COMMA:
            self.advance()
            one()
        self.expect(TokenType.RPAREN, ")")
        return positions, wildcards

    def binding_list(self) -> List[SymbolBinding]:
        bindings = [self.binding()]
        while self.current.type is TokenType.COMMA:
            self.advance()
            bindings.append(self.binding())
        return bindings

    def binding(self) -> SymbolBinding:
        name = self.ident("symbol name")
        self.expect_keyword("AS")
        attribute = self.ident("attribute name")
        self.expect_keyword("AT")
        level = self.ident("level name")
        fixed = None
        within = None
        if self.current.type is TokenType.OP and self.current.value == "=":
            self.advance()
            fixed = self.literal_value()
        if self.accept_keyword("WITHIN"):
            anchor_level = self.ident("level name")
            if not (self.current.type is TokenType.OP and self.current.value == "="):
                raise self.error("expected '=' in WITHIN constraint")
            self.advance()
            within = (anchor_level, self.literal_value())
        return SymbolBinding(name, attribute, level, fixed, within)

    # -- expressions ---------------------------------------------------------
    def expression(self, context: str) -> Expr:
        return self.or_expr(context)

    def or_expr(self, context: str) -> Expr:
        terms = [self.and_expr(context)]
        while self.accept_keyword("OR"):
            terms.append(self.and_expr(context))
        return terms[0] if len(terms) == 1 else Or(tuple(terms))

    def and_expr(self, context: str) -> Expr:
        terms = [self.not_expr(context)]
        while self.accept_keyword("AND"):
            terms.append(self.not_expr(context))
        return terms[0] if len(terms) == 1 else And(tuple(terms))

    def not_expr(self, context: str) -> Expr:
        if self.accept_keyword("NOT"):
            return Not(self.not_expr(context))
        return self.primary(context)

    def primary(self, context: str) -> Expr:
        if self.current.type is TokenType.LPAREN:
            self.advance()
            inner = self.expression(context)
            self.expect(TokenType.RPAREN, ")")
            return inner
        left = self.operand(context)
        if self.accept_keyword("IN"):
            self.expect(TokenType.LPAREN, "(")
            values = [self.literal_value()]
            while self.current.type is TokenType.COMMA:
                self.advance()
                values.append(self.literal_value())
            self.expect(TokenType.RPAREN, ")")
            return InSet(left, tuple(values))
        if self.accept_keyword("BETWEEN"):
            low = self.literal_value()
            self.expect_keyword("AND")
            high = self.literal_value()
            return Between(left, low, high)
        if self.current.type is not TokenType.OP:
            raise self.error("expected a comparison operator")
        op = self.advance().value
        right = self.operand(context)
        return Comparison(left, op, right)

    def operand(self, context: str):
        token = self.current
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.type is TokenType.NUMBER:
            self.advance()
            return Literal(_to_number(token.value))
        if token.type is TokenType.IDENT:
            name = self.advance().value
            if self.current.type is TokenType.DOT:
                self.advance()
                attribute = self.ident("attribute name")
                if context != "match":
                    raise QueryLanguageError(
                        "placeholder references are only valid in matching "
                        "predicates",
                        token.line,
                        token.column,
                    )
                return PlaceholderField(name, attribute)
            if context == "match":
                raise QueryLanguageError(
                    "matching predicates must reference placeholders as "
                    "'placeholder.attribute'",
                    token.line,
                    token.column,
                )
            return EventField(name)
        raise self.error("expected a field or literal")

    def literal_value(self) -> object:
        token = self.current
        if token.type is TokenType.STRING:
            self.advance()
            return token.value
        if token.type is TokenType.NUMBER:
            self.advance()
            return _to_number(token.value)
        raise self.error("expected a literal")


def _to_number(text: str) -> object:
    if "." in text:
        return float(text)
    return int(text)


def parse(text: str) -> ParsedQuery:
    """Parse query text into a :class:`ParsedQuery` (no schema needed)."""
    return _Parser(text).parse_query()


def parse_query(text: str, schema: Optional[Schema] = None) -> CuboidSpec:
    """Parse query text into a :class:`CuboidSpec`, validating if a schema
    is provided."""
    spec = parse(text).to_spec()
    if schema is not None:
        spec.validate(schema)
    return spec
