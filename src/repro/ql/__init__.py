"""The S-OLAP query language: lexer, parser, formatter."""

from repro.ql.ast import AggregateClause, ParsedQuery, SymbolBinding
from repro.ql.formatter import format_expr, format_spec
from repro.ql.lexer import Token, TokenType, tokenize
from repro.ql.parser import parse, parse_query

__all__ = [
    "AggregateClause",
    "ParsedQuery",
    "SymbolBinding",
    "Token",
    "TokenType",
    "format_expr",
    "format_spec",
    "parse",
    "parse_query",
    "tokenize",
]
