"""Inverted indices over sequence groups (Section 4.2.2, Figures 9/13/14).

A size-m inverted index ``L_m`` maps a length-m pattern ``(v1, ..., vm)`` —
values at fixed (attribute, level) domains per position — to the set of sids
of sequences containing that pattern (as a substring or subsequence).

The module provides the four primitive index operations the paper's
QueryIndices algorithm and S-OLAP operations are built from:

* :func:`build_index` — the BuildIndex procedure (Figure 9), optionally
  restricted to a candidate sid set (used when an index is built on demand
  mid-join, so only sequences already known to be relevant are scanned);
* :func:`join_indices` — ``L_i ⋈ L_2`` list intersection (Figure 13/14);
* :meth:`InvertedIndex.rollup` — P-ROLL-UP by unioning lists whose keys
  coincide at a coarser level (valid only for unrestricted templates);
* :func:`refine_index` — P-DRILL-DOWN by rescanning only listed sequences.

Joins produce *candidate* indices (``verified=False``); they must be
verified against the base sequences before counting, exactly as the paper
eliminates ``s1`` from ``l12`` in Figure 13.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.matcher import make_matcher
from repro.core.spec import PatternSymbol, PatternTemplate
from repro.core.stats import QueryStats
from repro.errors import IndexError_
from repro.events.schema import Schema
from repro.events.sequence import SequenceGroup

PatternValues = Tuple[object, ...]

#: A posting list: strictly ascending sids in a flat uint32 array.  Compact
#: (4 bytes/entry, no per-element objects) and intersectable by galloping.
PostingList = array


def posting_list(sids: Iterable[int]) -> PostingList:
    """A canonical (sorted, duplicate-free) posting list from any iterable."""
    if isinstance(sids, array) and sids.typecode == "I":
        return sids
    return array("I", sorted(set(sids)))


def intersect_postings(a: PostingList, b: PostingList) -> PostingList:
    """Galloping (exponential-probe) intersection of two posting lists.

    Walks the smaller list and locates each element in the larger one by
    doubling probes from the last match position followed by a bounded
    binary search — O(|small| · log(gap)) instead of O(|small| + |large|),
    which is what makes skewed joins (one hot list against many short
    ones) cheap.
    """
    if len(a) > len(b):
        a, b = b, a
    out = array("I")
    if not a or not b or a[-1] < b[0] or b[-1] < a[0]:
        return out
    append = out.append
    nb = len(b)
    pos = 0
    for x in a:
        step = 1
        while pos + step < nb and b[pos + step] < x:
            step <<= 1
        pos = bisect_left(b, x, pos + (step >> 1), min(pos + step + 1, nb))
        if pos < nb and b[pos] == x:
            append(x)
            pos += 1
        elif pos >= nb:
            break
    return out


def _pack_bitmap(sids: PostingList) -> int:
    """Posting list → big-int bitmap (bit i = sid i)."""
    bits = 0
    for sid in sids:
        bits |= 1 << sid
    return bits


def _unpack_bitmap(bits: int) -> PostingList:
    """Big-int bitmap → posting list (set-bit iteration yields ascending sids)."""
    out = array("I")
    append = out.append
    while bits:
        low = bits & -bits
        append(low.bit_length() - 1)
        bits ^= low
    return out


def prefix_template(template: PatternTemplate, length: int) -> PatternTemplate:
    """The template restricted to its first *length* positions.

    Symbols keep their domains and restrictions; symbols not appearing in
    the prefix are dropped.
    """
    if not 1 <= length <= template.length:
        raise IndexError_(
            f"prefix length {length} invalid for a length-{template.length} template"
        )
    positions = template.positions[:length]
    seen: List[str] = []
    for name in positions:
        if name not in seen:
            seen.append(name)
    symbols = tuple(template.symbol(name) for name in seen)
    return PatternTemplate(kind=template.kind, positions=positions, symbols=symbols)


def pair_template(template: PatternTemplate, position: int) -> PatternTemplate:
    """The length-2 template over positions (position, position+1).

    This is the ``L_2^(Yi, Yi+1)`` shape joined in QueryIndices.  Symbol
    restrictions (fixed / within) are preserved so on-demand builds do not
    enumerate values a restricted symbol can never take.
    """
    if not 0 <= position < template.length - 1:
        raise IndexError_(
            f"pair position {position} invalid for a length-{template.length} template"
        )
    names = (template.positions[position], template.positions[position + 1])
    seen: List[str] = []
    for name in names:
        if name not in seen:
            seen.append(name)
    symbols = tuple(template.symbol(name) for name in seen)
    return PatternTemplate(kind=template.kind, positions=names, symbols=symbols)


def unrestricted_template(template: PatternTemplate) -> PatternTemplate:
    """The same template with all fixed / within restrictions removed."""
    symbols = tuple(
        PatternSymbol(s.name, s.attribute, s.level) for s in template.symbols
    )
    return PatternTemplate(
        kind=template.kind, positions=template.positions, symbols=symbols
    )


class InvertedIndex:
    """One materialised inverted index for one sequence group.

    ``template`` records the shape the lists instantiate (symbol equalities
    and restrictions included); ``verified`` is False for join candidates
    whose lists may contain sequences that do not actually contain the
    concatenated pattern.

    Lists are stored as sorted ``array('I')`` posting lists; the constructor
    canonicalises any other iterable (sets, frozensets, lists — as produced
    by :mod:`repro.io` loads and older callers), so every index in the
    process shares one representation.
    """

    def __init__(
        self,
        template: PatternTemplate,
        group_key: Tuple[object, ...],
        lists: Dict[PatternValues, Iterable[int]],
        verified: bool = True,
    ):
        self.template = template
        self.group_key = group_key
        self.lists: Dict[PatternValues, PostingList] = {
            values: posting_list(sids) for values, sids in lists.items()
        }
        self.verified = verified

    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Pattern length of the index (the m of L_m)."""
        return self.template.length

    def __len__(self) -> int:
        return len(self.lists)

    def __contains__(self, values: PatternValues) -> bool:
        return values in self.lists

    def get(self, values: PatternValues) -> PostingList:
        """The sid posting list for one pattern (empty when absent)."""
        found = self.lists.get(values)
        return found if found is not None else array("I")

    def num_entries(self) -> int:
        """Total sid entries across all lists."""
        return sum(len(sids) for sids in self.lists.values())

    def all_sids(self) -> Set[int]:
        """Union of every list (the candidate universe of the index)."""
        out: Set[int] = set()
        for sids in self.lists.values():
            out.update(sids)
        return out

    def size_bytes(self) -> int:
        """Estimated footprint: 4 bytes/sid entry + per-list key overhead.

        A deliberate, stable estimate (not ``sys.getsizeof`` recursion) so
        benchmark output is machine-independent, mirroring the paper's MB
        figures in Table 1.  Entries cost 4 bytes since the posting lists
        are ``array('I')`` (was 8 with the earlier frozenset lists).
        """
        per_list_overhead = 48 + 8 * self.m
        return sum(
            per_list_overhead + 4 * len(sids) for sids in self.lists.values()
        )

    def signature(self) -> Tuple:
        """Registry key for this index (template identity)."""
        return self.template.signature()

    # ------------------------------------------------------------------
    def filter_for(self, template: PatternTemplate, schema: Schema) -> "InvertedIndex":
        """Derive ``L_m^T``: keep lists whose key instantiates *template*.

        Only valid when *template* has the same length, kind and per-position
        domains as this index's template and is at least as restrictive.
        This is how a base (all-distinct-symbol) L2 serves a template like
        (X, X): keep only the lists with equal components (Footnote 7).
        """
        if template.length != self.m or template.kind != self.template.kind:
            raise IndexError_("template shape mismatch in filter_for")
        own = self.template.position_symbols()
        other = template.position_symbols()
        for mine, theirs in zip(own, other):
            if (mine.attribute, mine.level) != (theirs.attribute, theirs.level):
                raise IndexError_("position domain mismatch in filter_for")
        matcher = _key_checker(template, schema)
        if matcher is None:
            kept: Dict[PatternValues, Iterable[int]] = dict(self.lists)
        else:
            kept = {
                values: sids
                for values, sids in self.lists.items()
                if matcher(values)
            }
        return InvertedIndex(template, self.group_key, kept, verified=self.verified)

    def rollup(
        self,
        position_levels: Tuple[Tuple[str, str], ...],
        schema: Schema,
        coarse_template: PatternTemplate,
        stats: Optional[QueryStats] = None,
    ) -> "InvertedIndex":
        """P-ROLL-UP by merging lists (Section 4.2.2, operation 4).

        *position_levels* gives the (attribute, target_level) per position.
        Lists whose keys coincide after mapping are unioned.  The caller is
        responsible for the validity precondition (no repeated and no
        restricted symbols in the template) — see
        :func:`repro.core.inverted_index.rollup_by_merge_is_valid`.
        """
        if len(position_levels) != self.m:
            raise IndexError_("position_levels length mismatch in rollup")
        source_levels = [
            (symbol.attribute, symbol.level)
            for symbol in self.template.position_symbols()
        ]
        merged: Dict[PatternValues, Set[int]] = {}
        for values, sids in self.lists.items():
            # Positions whose level is unchanged (including wildcard
            # positions, whose pseudo-domain has no hierarchy) pass through.
            coarse = tuple(
                value
                if src_level == level
                else schema.hierarchy(attr).translate(value, src_level, level)
                for value, (attr, level), (__, src_level) in zip(
                    values, position_levels, source_levels
                )
            )
            merged.setdefault(coarse, set()).update(sids)
            if stats is not None:
                stats.lists_transformed += 1
        return InvertedIndex(
            coarse_template,
            self.group_key,
            merged,
            verified=self.verified,
        )

    def __repr__(self) -> str:
        flag = "" if self.verified else ", unverified"
        return (
            f"InvertedIndex(m={self.m}, {len(self.lists)} lists, "
            f"{self.num_entries()} entries{flag})"
        )


def _key_checker(template: PatternTemplate, schema: Schema):
    """A fast predicate testing whether a value tuple instantiates *template*.

    Returns ``None`` when the template has no repeated and no restricted
    symbols — every tuple passes, so callers can skip the check entirely.
    Restriction outcomes are memoised per (position, value): index keys
    repeat values heavily, so each distinct value pays the
    :func:`~repro.core.matcher._symbol_value_ok` cost once.
    """
    from repro.core.matcher import _symbol_value_ok

    symbol_ids = template.symbol_ids()
    position_symbols = template.position_symbols()
    first_position: Dict[int, int] = {}
    equalities: List[Tuple[int, int]] = []
    restricted: List[Tuple[int, object, Dict[object, bool]]] = []
    for position, dim in enumerate(symbol_ids):
        first = first_position.setdefault(dim, position)
        if position != first:
            equalities.append((position, first))
            continue
        symbol = position_symbols[position]
        if not symbol.wildcard and (
            symbol.fixed is not None or symbol.within is not None
        ):
            restricted.append((position, symbol, {}))
    if not equalities and not restricted:
        return None

    def check(values: PatternValues) -> bool:
        for position, first in equalities:
            if values[position] != values[first]:
                return False
        for position, symbol, cache in restricted:
            value = values[position]
            ok = cache.get(value)
            if ok is None:
                ok = cache[value] = _symbol_value_ok(symbol, value, schema)
            if not ok:
                return False
        return True

    return check


# --------------------------------------------------------------------------
# BuildIndex (Figure 9)
# --------------------------------------------------------------------------


def build_index(
    group: SequenceGroup,
    template: PatternTemplate,
    schema: Schema,
    stats: Optional[QueryStats] = None,
    restrict_sids: Optional[Iterable[int]] = None,
) -> InvertedIndex:
    """Procedure BuildIndex: scan sequences, list sids per unique pattern.

    Only the template is applied (no cell restriction, no matching
    predicate — those are verified at counting time).  When *restrict_sids*
    is given, only those sequences are scanned; this implements the
    domain-restricted on-demand builds that make iterative II queries cheap.
    """
    db = group.sequences[0].db if group.sequences else None
    matcher = make_matcher(template, schema, db=db)
    lists: Dict[PatternValues, PostingList] = {}
    if restrict_sids is None:
        sequences = list(group)
    else:
        wanted = set(restrict_sids)
        sequences = [group.by_sid(sid) for sid in sorted(wanted)]
    # Sequences are visited in ascending sid order (group order is
    # formation order; the restricted path sorts), so appending builds
    # each posting list already sorted — no per-list sort pass needed.
    for sequence in sequences:
        if stats is not None:
            stats.add_scan()
        sid = sequence.sid
        for values in matcher.unique_instantiations(sequence):
            found = lists.get(values)
            if found is None:
                found = lists[values] = array("I")
            found.append(sid)
    index = InvertedIndex(template, group.key, lists, verified=True)
    if stats is not None:
        stats.indices_built += 1
        stats.index_bytes_built += index.size_bytes()
    return index


# --------------------------------------------------------------------------
# Join (Figures 13/14; QueryIndices line 8)
# --------------------------------------------------------------------------


def _auto_join_kernel(left: InvertedIndex, right: InvertedIndex) -> str:
    """Pick the intersection kernel from the operands' list densities."""
    from repro.optimizer.cost_model import choose_join_kernel

    n_lists = len(left.lists) + len(right.lists)
    total = left.num_entries() + right.num_entries()
    if not n_lists or not total:
        return "sorted"
    span = 0
    for sids in left.lists.values():
        if sids and sids[-1] >= span:
            span = sids[-1] + 1
    for sids in right.lists.values():
        if sids and sids[-1] >= span:
            span = sids[-1] + 1
    return choose_join_kernel(total / n_lists, span)


def join_indices(
    left: InvertedIndex,
    right: InvertedIndex,
    target_prefix: PatternTemplate,
    schema: Schema,
    stats: Optional[QueryStats] = None,
    kernel: Optional[str] = None,
) -> InvertedIndex:
    """``L_{i+1} = L_i ⋈ L_2``: extend left keys by right keys' second value.

    The join condition is equality of left's last component with right's
    first; candidate keys must additionally instantiate *target_prefix*
    (the first i+1 positions of the query template), which enforces
    repeated-symbol equalities like the trailing X of (X, Y, Y, X).

    Per-list intersections run on one of two kernels, chosen by the cost
    model (:func:`repro.optimizer.cost_model.choose_join_kernel`) unless
    *kernel* pins one: ``"sorted"`` galloping intersection of the posting
    lists, or ``"bitmap"`` packing lists into big-int bitmaps and using a
    single ``&`` per pair — cheaper when lists are dense in the sid span.

    The result is **unverified**: list intersection over-approximates
    containment of the concatenated pattern (a sequence may contain
    (a, b) and (b, c) without containing (a, b, c)), so callers must run
    :func:`verify_index` before counting.
    """
    if right.m != 2:
        raise IndexError_("join right operand must be a size-2 index")
    if target_prefix.length != left.m + 1:
        raise IndexError_(
            f"target prefix has length {target_prefix.length}, "
            f"expected {left.m + 1}"
        )
    if kernel is None:
        kernel = _auto_join_kernel(left, right)
    checker = _key_checker(target_prefix, schema)
    joined: Dict[PatternValues, PostingList] = {}
    if kernel == "bitmap":
        by_first_bits: Dict[object, List[Tuple[object, int]]] = {}
        for (first, second), sids in right.lists.items():
            by_first_bits.setdefault(first, []).append(
                (second, _pack_bitmap(sids))
            )
        for values, sids in left.lists.items():
            entries = by_first_bits.get(values[-1])
            if not entries:
                continue
            left_bits = _pack_bitmap(sids)
            for second, right_bits in entries:
                candidate = values + (second,)
                if checker is not None and not checker(candidate):
                    continue
                intersection = left_bits & right_bits
                if intersection:
                    joined[candidate] = _unpack_bitmap(intersection)
    else:
        by_first: Dict[object, List[Tuple[object, PostingList]]] = {}
        for (first, second), sids in right.lists.items():
            by_first.setdefault(first, []).append((second, sids))
        for values, sids in left.lists.items():
            for second, right_sids in by_first.get(values[-1], ()):
                candidate = values + (second,)
                if checker is not None and not checker(candidate):
                    continue
                intersection = intersect_postings(sids, right_sids)
                if intersection:
                    joined[candidate] = intersection
    if stats is not None:
        stats.index_joins += 1
        stats.extra["join_kernel"] = kernel
    return InvertedIndex(target_prefix, left.group_key, joined, verified=False)


def verify_index(
    index: InvertedIndex,
    group: SequenceGroup,
    schema: Schema,
    stats: Optional[QueryStats] = None,
) -> InvertedIndex:
    """Eliminate invalid entries by checking real containment (Figure 13).

    Scans each distinct sequence appearing in the candidate lists once and
    keeps (pattern, sid) pairs only when the sequence truly contains that
    instantiation.
    """
    if index.verified:
        return index
    db = group.sequences[0].db if group.sequences else None
    matcher = make_matcher(index.template, schema, db=db)
    # Group the membership tests by sid so each sequence is scanned once.
    by_sid: Dict[int, List[PatternValues]] = {}
    for values, sids in index.lists.items():
        for sid in sids:
            by_sid.setdefault(sid, []).append(values)
    # Ascending sid order keeps the surviving posting lists append-sorted.
    surviving: Dict[PatternValues, PostingList] = {}
    for sid in sorted(by_sid):
        patterns = by_sid[sid]
        sequence = group.by_sid(sid)
        if stats is not None:
            stats.add_scan()
        contained = {
            values: None for values in matcher.unique_instantiations(sequence)
        }
        for values in patterns:
            if values in contained:
                found = surviving.get(values)
                if found is None:
                    found = surviving[values] = array("I")
                found.append(sid)
    verified = InvertedIndex(
        index.template, index.group_key, surviving, verified=True
    )
    if stats is not None:
        stats.indices_built += 1
        stats.index_bytes_built += verified.size_bytes()
    return verified


# --------------------------------------------------------------------------
# Refinement (P-DRILL-DOWN, Section 4.2.2, operation 5)
# --------------------------------------------------------------------------


def refine_index(
    coarse: InvertedIndex,
    fine_template: PatternTemplate,
    group: SequenceGroup,
    schema: Schema,
    stats: Optional[QueryStats] = None,
) -> InvertedIndex:
    """P-DRILL-DOWN: rebuild at a finer level scanning only listed sids.

    The coarse index tells us exactly which sequences can possibly match any
    refined pattern, so the rebuild scans ``|union of lists|`` sequences
    instead of the whole group — the asymmetry behind the paper's Qb numbers
    (2,201 scanned instead of 50,524).
    """
    candidates = coarse.all_sids()
    index = build_index(
        group, fine_template, schema, stats=stats, restrict_sids=candidates
    )
    if stats is not None:
        stats.lists_transformed += len(coarse.lists)
    return index


def union_indices(
    indices: Iterable[InvertedIndex], template: PatternTemplate
) -> InvertedIndex:
    """Union same-shaped indices (incremental maintenance support).

    Used when per-partition indices (e.g. one per day) are combined to
    answer a coarser query without rebuilding from base data.
    """
    merged: Dict[PatternValues, Set[int]] = {}
    group_key: Tuple[object, ...] = ()
    verified = True
    for index in indices:
        if index.template.signature() != template.signature():
            raise IndexError_("cannot union indices with different templates")
        verified = verified and index.verified
        group_key = index.group_key
        for values, sids in index.lists.items():
            merged.setdefault(values, set()).update(sids)
    return InvertedIndex(template, group_key, merged, verified=verified)
