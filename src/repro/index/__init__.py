"""Auxiliary index structures: inverted lists, bitmap variant, registry."""

from repro.index.inverted import (
    InvertedIndex,
    build_index,
    join_indices,
    pair_template,
    prefix_template,
    refine_index,
    union_indices,
    unrestricted_template,
    verify_index,
)
from repro.index.registry import IndexRegistry, base_template

__all__ = [
    "IndexRegistry",
    "InvertedIndex",
    "base_template",
    "build_index",
    "join_indices",
    "pair_template",
    "prefix_template",
    "refine_index",
    "union_indices",
    "unrestricted_template",
    "verify_index",
]
