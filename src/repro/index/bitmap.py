"""Bitmap-encoded inverted indices (Section 6, Performance discussion).

The paper suggests that when the pattern-dimension domain is small, "we can
encode both the base data and the inverted indices as bitmap indices.
Consequently, the intersection operation and the post-filtering step can be
performed much faster using the bitwise-AND operation".  This module
provides that encoding: each inverted list becomes an arbitrary-precision
integer whose bit *i* is set when sid ``sid_base + i`` is in the list, so
list intersection is a single ``&``.

The bitmap index mirrors :class:`~repro.index.inverted.InvertedIndex`'s
join surface and converts losslessly in both directions, which is what the
bitmap-vs-list ablation benchmark exercises.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.core.spec import PatternTemplate
from repro.core.stats import QueryStats
from repro.errors import IndexError_
from repro.events.schema import Schema
from repro.index.inverted import InvertedIndex, _key_checker

PatternValues = Tuple[object, ...]


def sids_to_bitmap(sids: Iterable[int], sid_base: int) -> int:
    """Pack sids into an integer bitmap relative to *sid_base*."""
    bitmap = 0
    for sid in sids:
        offset = sid - sid_base
        if offset < 0:
            raise IndexError_(f"sid {sid} below bitmap base {sid_base}")
        bitmap |= 1 << offset
    return bitmap


def bitmap_to_sids(bitmap: int, sid_base: int) -> FrozenSet[int]:
    """Unpack an integer bitmap back into a sid set.

    Iterates set bits via ``bitmap & -bitmap`` (lowest set bit) and
    ``bit_length``, so the cost is O(set bits) big-int operations instead
    of one shift per *position* — a sparse bitmap with a few high bits no
    longer pays for every zero below them.
    """
    sids = []
    while bitmap:
        low = bitmap & -bitmap
        sids.append(sid_base + low.bit_length() - 1)
        bitmap ^= low
    return frozenset(sids)


class BitmapIndex:
    """An inverted index whose lists are integer bitmaps."""

    def __init__(
        self,
        template: PatternTemplate,
        group_key: Tuple[object, ...],
        lists: Dict[PatternValues, int],
        sid_base: int,
        verified: bool = True,
    ):
        self.template = template
        self.group_key = group_key
        self.lists = lists
        self.sid_base = sid_base
        self.verified = verified

    # ------------------------------------------------------------------
    @classmethod
    def from_inverted(
        cls, index: InvertedIndex, sid_base: Optional[int] = None
    ) -> "BitmapIndex":
        """Encode a list-based index as bitmaps.

        The base defaults to the smallest listed sid; pass an explicit
        common *sid_base* when two indices will be joined.
        """
        if sid_base is None:
            all_sids = index.all_sids()
            sid_base = min(all_sids) if all_sids else 0
        lists = {
            values: sids_to_bitmap(sids, sid_base)
            for values, sids in index.lists.items()
        }
        return cls(index.template, index.group_key, lists, sid_base, index.verified)

    def to_inverted(self) -> InvertedIndex:
        """Decode back to a list-based index."""
        lists = {
            values: bitmap_to_sids(bitmap, self.sid_base)
            for values, bitmap in self.lists.items()
        }
        return InvertedIndex(self.template, self.group_key, lists, self.verified)

    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        return self.template.length

    def __len__(self) -> int:
        return len(self.lists)

    def get(self, values: PatternValues) -> int:
        return self.lists.get(values, 0)

    def count(self, values: PatternValues) -> int:
        """Cardinality of one list (popcount)."""
        return self.lists.get(values, 0).bit_count()

    def num_entries(self) -> int:
        return sum(bitmap.bit_count() for bitmap in self.lists.values())

    def size_bytes(self) -> int:
        """Estimated footprint: one bit per position up to the highest sid.

        For dense sid universes this is far below the 4-bytes-per-entry
        posting-list encoding — the storage saving the paper anticipates.
        """
        per_list_overhead = 48 + 8 * self.m
        return sum(
            per_list_overhead + (bitmap.bit_length() + 7) // 8
            for bitmap in self.lists.values()
        )

    def __repr__(self) -> str:
        return (
            f"BitmapIndex(m={self.m}, {len(self.lists)} lists, "
            f"{self.num_entries()} bits set)"
        )


def bitmap_join(
    left: BitmapIndex,
    right: BitmapIndex,
    target_prefix: PatternTemplate,
    schema: Schema,
    stats: Optional[QueryStats] = None,
) -> BitmapIndex:
    """``L_i ⋈ L_2`` with bitwise-AND intersections.

    Semantics identical to :func:`repro.index.inverted.join_indices`; the
    result is unverified for the same reason.
    """
    if right.m != 2:
        raise IndexError_("join right operand must be a size-2 index")
    if left.sid_base != right.sid_base:
        raise IndexError_("bitmap join requires a common sid base")
    if target_prefix.length != left.m + 1:
        raise IndexError_("target prefix length mismatch")
    by_first: Dict[object, list] = {}
    for (first, second), bitmap in right.lists.items():
        by_first.setdefault(first, []).append((second, bitmap))
    checker = _key_checker(target_prefix, schema)
    joined: Dict[PatternValues, int] = {}
    for values, bitmap in left.lists.items():
        for second, right_bitmap in by_first.get(values[-1], ()):
            candidate = values + (second,)
            if checker is not None and not checker(candidate):
                continue
            intersection = bitmap & right_bitmap
            if intersection:
                joined[candidate] = intersection
    if stats is not None:
        stats.index_joins += 1
    return BitmapIndex(
        target_prefix, left.group_key, joined, left.sid_base, verified=False
    )
