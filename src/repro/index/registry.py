"""Registry of materialised inverted indices (the Auxiliary Data Structures
box of Figure 6).

Indices are registered per sequence group and keyed by the full template
signature (kind, symbol-identity pattern, per-symbol domain and
restrictions).

A registry is only valid for ONE sequence-formation pipeline (one
WHERE / CLUSTER BY / SEQUENCE BY / SEQUENCE GROUP BY combination): group
keys from different pipelines can collide while denoting different
sequence populations.  :class:`~repro.core.engine.SOLAPEngine` therefore
keeps one registry per pipeline key (``engine.registry_for(spec)``);
callers driving the strategies directly must do the same.  Lookups fall back from an exact match to a *base* index —
same length/kind/per-position domains but all-distinct, unrestricted
symbols — which can serve any more-constrained template by list filtering
(Footnote 7 of the paper: ``L2^(X,X)`` is just the equal-component lists of
``L2``).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.spec import PatternSymbol, PatternTemplate
from repro.events.schema import Schema
from repro.index.inverted import InvertedIndex, prefix_template

GroupKey = Tuple[object, ...]
Signature = Tuple


def base_template(template: PatternTemplate) -> PatternTemplate:
    """The all-distinct, unrestricted template over the same domains.

    This is the most general shape an index can be built for at these
    per-position (attribute, level) domains; any template with the same
    domains can be derived from it by filtering.
    """
    position_symbols = template.position_symbols()
    names = [f"P{i}" for i in range(template.length)]
    symbols = tuple(
        PatternSymbol.any(name)
        if symbol.wildcard
        else PatternSymbol(name, symbol.attribute, symbol.level)
        for name, symbol in zip(names, position_symbols)
    )
    return PatternTemplate(
        kind=template.kind, positions=tuple(names), symbols=symbols
    )


class IndexRegistry:
    """Materialised-index bookkeeping for one engine instance.

    Every put and exact-lookup hit stamps the index with a process-wide
    monotone tick, giving the registry an LRU order that
    :meth:`evict_to_budget` (and the service layer's memory manager) uses
    to shed the coldest indices first.  Ticks are global so a
    :class:`~repro.core.engine.RegistryView` can compare recency across
    the per-pipeline registries it aggregates.
    """

    _global_tick = 0

    @classmethod
    def _next_tick(cls) -> int:
        cls._global_tick += 1
        return cls._global_tick

    def __init__(self) -> None:
        self._by_group: Dict[GroupKey, Dict[Signature, InvertedIndex]] = {}
        self._ticks: Dict[Tuple[GroupKey, Signature], int] = {}
        #: indices dropped by budget eviction (not explicit invalidation)
        self.evictions = 0

    # ------------------------------------------------------------------
    def put(self, index: InvertedIndex) -> None:
        """Register (or replace) an index for its group."""
        group_indices = self._by_group.setdefault(index.group_key, {})
        signature = index.signature()
        group_indices[signature] = index
        self._ticks[(index.group_key, signature)] = self._next_tick()

    def get_exact(
        self, group_key: GroupKey, template: PatternTemplate
    ) -> Optional[InvertedIndex]:
        """Exact-signature lookup (refreshes the hit's LRU position)."""
        signature = template.signature()
        hit = self._by_group.get(group_key, {}).get(signature)
        if hit is not None:
            self._ticks[(group_key, signature)] = self._next_tick()
        return hit

    def find(
        self, group_key: GroupKey, template: PatternTemplate, schema: Schema
    ) -> Optional[InvertedIndex]:
        """Exact lookup, falling back to filtering a base index.

        The filtered derivation is *not* registered — it is cheap to
        recompute and registering it would double-count bytes.
        """
        exact = self.get_exact(group_key, template)
        if exact is not None:
            return exact
        base = self.get_exact(group_key, base_template(template))
        if base is not None:
            return base.filter_for(template, schema)
        return None

    def longest_prefix(
        self, group_key: GroupKey, template: PatternTemplate, schema: Schema
    ) -> Optional[Tuple[int, InvertedIndex]]:
        """The longest available verified index for a prefix of *template*.

        Implements QueryIndices line 8's "largest available inverted index":
        scans prefix lengths from m down to 1.
        """
        for length in range(template.length, 0, -1):
            prefix = prefix_template(template, length)
            index = self.find(group_key, prefix, schema)
            if index is not None and index.verified:
                return length, index
        return None

    # ------------------------------------------------------------------
    def invalidate_group(self, group_key: GroupKey) -> int:
        """Drop every index of one group; returns how many were dropped."""
        dropped = self._by_group.pop(group_key, {})
        for signature in dropped:
            self._ticks.pop((group_key, signature), None)
        return len(dropped)

    def clear(self) -> None:
        self._by_group.clear()
        self._ticks.clear()

    def lru_entries(self) -> List[Tuple[int, GroupKey, Signature, int]]:
        """(tick, group key, signature, bytes) per index, coldest first."""
        entries = []
        for group_key, group_indices in self._by_group.items():
            for signature, index in group_indices.items():
                tick = self._ticks.get((group_key, signature), 0)
                entries.append((tick, group_key, signature, index.size_bytes()))
        entries.sort(key=lambda entry: entry[0])
        return entries

    def drop(self, group_key: GroupKey, signature: Signature) -> bool:
        """Remove one index by (group, signature); True if it existed."""
        group_indices = self._by_group.get(group_key)
        if group_indices is None or signature not in group_indices:
            return False
        del group_indices[signature]
        if not group_indices:
            del self._by_group[group_key]
        self._ticks.pop((group_key, signature), None)
        return True

    def evict_to_budget(self, byte_budget: int) -> Tuple[int, int]:
        """Drop least-recently-used indices until total bytes fit the budget.

        Returns ``(indices_dropped, bytes_freed)``.
        """
        dropped = 0
        freed = 0
        over = self.total_bytes() - byte_budget
        if over <= 0:
            return 0, 0
        for __, group_key, signature, size in self.lru_entries():
            if over <= 0:
                break
            if self.drop(group_key, signature):
                dropped += 1
                freed += size
                over -= size
        self.evictions += dropped
        return dropped, freed

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[InvertedIndex]:
        for group_indices in self._by_group.values():
            yield from group_indices.values()

    def indices_for_group(self, group_key: GroupKey) -> List[InvertedIndex]:
        return list(self._by_group.get(group_key, {}).values())

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_group.values())

    def total_bytes(self) -> int:
        """Estimated footprint of every registered index."""
        return sum(index.size_bytes() for index in self)

    def __repr__(self) -> str:
        return (
            f"IndexRegistry({len(self)} indices over "
            f"{len(self._by_group)} groups, {self.total_bytes() / 1e6:.3f} MB)"
        )
