"""Persistence: event datasets (CSV/JSONL), schemas, indices, cuboids."""

from repro.io.events_io import (
    load_dataset,
    load_schema,
    read_events_csv,
    read_events_jsonl,
    save_dataset,
    save_schema,
    schema_from_dict,
    schema_to_dict,
    write_events_csv,
    write_events_jsonl,
)
from repro.io.index_io import (
    load_cuboid,
    load_index,
    save_cuboid,
    save_index,
    template_from_dict,
    template_to_dict,
)

__all__ = [
    "load_cuboid",
    "load_dataset",
    "load_index",
    "load_schema",
    "read_events_csv",
    "read_events_jsonl",
    "save_cuboid",
    "save_dataset",
    "save_index",
    "save_schema",
    "schema_from_dict",
    "schema_to_dict",
    "template_from_dict",
    "template_to_dict",
    "write_events_csv",
    "write_events_jsonl",
]
