"""Event-database import/export: CSV and JSON-lines.

A warehouse is loaded from files, not constructed in code; this module is
the loading dock.  CSV is the interchange format of the paper's datasets
(the Gazelle file was a 238.9 MB delimited file); JSONL preserves value
types exactly and round-trips losslessly.

Schemas are serialised alongside the data (``schema.json``) so a dataset
directory is self-describing, including dict-mapped concept hierarchies.
Callable hierarchy mappings cannot be serialised and are rejected with a
clear error.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

from repro.errors import SchemaError
from repro.events.database import EventDatabase
from repro.events.schema import (
    ComputedMapping,
    Dimension,
    Hierarchy,
    Measure,
    Schema,
    resolve_computed_mapping,
)

PathLike = Union[str, Path]


# --------------------------------------------------------------------------
# Schema (de)serialisation
# --------------------------------------------------------------------------


def schema_to_dict(schema: Schema) -> Dict:
    """A JSON-safe description of a schema (dict-mapped hierarchies only)."""
    dimensions = []
    for dimension in schema.dimensions.values():
        hierarchy = dimension.hierarchy
        mappings = {}
        for level in hierarchy.levels[1:]:
            mapping = hierarchy._mappings[level]
            if isinstance(mapping, ComputedMapping):
                mappings[level] = {"computed": mapping.name}
            elif callable(mapping):
                raise SchemaError(
                    f"hierarchy level {level!r} of {dimension.name!r} uses an "
                    "unnamed callable mapping; wrap it with "
                    "register_computed_mapping to make it persistable"
                )
            else:
                mappings[level] = [
                    [key, value] for key, value in mapping.items()
                ]
        dimensions.append(
            {
                "name": dimension.name,
                "levels": list(hierarchy.levels),
                "mappings": mappings,
            }
        )
    return {
        "dimensions": dimensions,
        "measures": list(schema.measures),
    }


def schema_from_dict(data: Mapping) -> Schema:
    """Rebuild a schema from :func:`schema_to_dict` output."""
    dimensions = []
    for entry in data["dimensions"]:
        levels = tuple(entry["levels"])
        mappings = {}
        for level, stored in entry.get("mappings", {}).items():
            if isinstance(stored, dict) and "computed" in stored:
                mappings[level] = resolve_computed_mapping(stored["computed"])
            else:
                mappings[level] = {key: value for key, value in stored}
        dimensions.append(
            Dimension(entry["name"], Hierarchy(entry["name"], levels, mappings))
        )
    measures = [Measure(name) for name in data.get("measures", [])]
    return Schema(dimensions, measures)


def save_schema(schema: Schema, path: PathLike) -> None:
    Path(path).write_text(json.dumps(schema_to_dict(schema), indent=2))


def load_schema(path: PathLike) -> Schema:
    return schema_from_dict(json.loads(Path(path).read_text()))


# --------------------------------------------------------------------------
# JSONL events
# --------------------------------------------------------------------------


def write_events_jsonl(db: EventDatabase, path: PathLike) -> int:
    """Write one JSON object per event; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in db:
            handle.write(json.dumps(event.to_dict(), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_events_jsonl(schema: Schema, path: PathLike) -> EventDatabase:
    """Load a JSONL event file into a database."""
    db = EventDatabase(schema)
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                db.append(json.loads(line))
    return db


# --------------------------------------------------------------------------
# CSV events
# --------------------------------------------------------------------------


def write_events_csv(db: EventDatabase, path: PathLike) -> int:
    """Write the event table as CSV with a header row."""
    attributes = db.schema.attributes
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(attributes)
        for event in db:
            writer.writerow([event[attr] for attr in attributes])
            count += 1
    return count


def _convert(text: str, converter: Optional[str]) -> object:
    if converter == "int":
        return int(text)
    if converter == "float":
        return float(text)
    return text


def read_events_csv(
    schema: Schema,
    path: PathLike,
    types: Optional[Mapping[str, str]] = None,
) -> EventDatabase:
    """Load a CSV event file.

    CSV is untyped, so *types* maps attribute names to ``"int"`` or
    ``"float"`` for columns that must be parsed numerically (everything
    else stays a string).  Unknown header columns are rejected rather
    than silently dropped.
    """
    types = dict(types or {})
    db = EventDatabase(schema)
    with open(path, "r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            return db
        unknown = [name for name in header if name not in schema.attributes]
        if unknown:
            raise SchemaError(f"CSV has unknown columns: {unknown}")
        for row in reader:
            event = {
                name: _convert(value, types.get(name))
                for name, value in zip(header, row)
            }
            db.append(event)
    return db


# --------------------------------------------------------------------------
# Self-describing dataset directories
# --------------------------------------------------------------------------


def save_dataset(db: EventDatabase, directory: PathLike) -> Path:
    """Write ``schema.json`` + ``events.jsonl`` into *directory*."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_schema(db.schema, directory / "schema.json")
    write_events_jsonl(db, directory / "events.jsonl")
    return directory


def load_dataset(directory: PathLike) -> EventDatabase:
    """Load a dataset directory written by :func:`save_dataset`."""
    directory = Path(directory)
    schema = load_schema(directory / "schema.json")
    return read_events_jsonl(schema, directory / "events.jsonl")
