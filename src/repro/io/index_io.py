"""Persistence for inverted indices and computed S-cuboids.

The paper's prototype precomputes indices offline; a production system
persists them between sessions.  Indices serialise to JSON (template
signature + lists); cuboids serialise to JSON (spec text via the query
language formatter + cells), so a saved cuboid is both machine- and
human-readable.

Keys of inverted lists and cuboid cells are value tuples; JSON has no
tuple type, so keys are stored as JSON arrays in a list-of-pairs layout.
Only JSON-representable values (str / int / float / bool / None) can be
persisted — the generators in this library produce exactly those.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.core.cuboid import SCuboid
from repro.core.spec import (
    PatternKind,
    PatternSymbol,
    PatternTemplate,
)
from repro.events.schema import Schema
from repro.index.inverted import InvertedIndex
from repro.ql.formatter import format_spec
from repro.ql.parser import parse_query

PathLike = Union[str, Path]


# --------------------------------------------------------------------------
# Template (de)serialisation
# --------------------------------------------------------------------------


def template_to_dict(template: PatternTemplate) -> Dict:
    return {
        "kind": template.kind.value,
        "positions": list(template.positions),
        "symbols": [
            {
                "name": s.name,
                "attribute": s.attribute,
                "level": s.level,
                "fixed": s.fixed,
                "within": list(s.within) if s.within is not None else None,
            }
            for s in template.symbols
        ],
    }


def template_from_dict(data: Dict) -> PatternTemplate:
    symbols = tuple(
        PatternSymbol(
            entry["name"],
            entry["attribute"],
            entry["level"],
            entry.get("fixed"),
            tuple(entry["within"]) if entry.get("within") is not None else None,
        )
        for entry in data["symbols"]
    )
    return PatternTemplate(
        kind=PatternKind(data["kind"]),
        positions=tuple(data["positions"]),
        symbols=symbols,
    )


# --------------------------------------------------------------------------
# Inverted indices
# --------------------------------------------------------------------------


def save_index(index: InvertedIndex, path: PathLike) -> None:
    """Persist one inverted index as JSON."""
    payload = {
        "template": template_to_dict(index.template),
        "group_key": list(index.group_key),
        "verified": index.verified,
        "lists": [
            [list(values), sorted(sids)] for values, sids in index.lists.items()
        ],
    }
    Path(path).write_text(json.dumps(payload))


def load_index(path: PathLike) -> InvertedIndex:
    """Load an inverted index written by :func:`save_index`."""
    payload = json.loads(Path(path).read_text())
    lists = {
        tuple(values): frozenset(sids) for values, sids in payload["lists"]
    }
    return InvertedIndex(
        template=template_from_dict(payload["template"]),
        group_key=tuple(payload["group_key"]),
        lists=lists,
        verified=payload["verified"],
    )


# --------------------------------------------------------------------------
# Cuboids
# --------------------------------------------------------------------------


def save_cuboid(cuboid: SCuboid, path: PathLike) -> None:
    """Persist a computed S-cuboid with its spec in query-language text."""
    payload = {
        "spec": format_spec(cuboid.spec),
        "global_slice": [
            [index, list(v) if isinstance(v, tuple) else v]
            for index, v in cuboid.spec.global_slice
        ],
        "cells": [
            [list(group_key), list(cell_key), values]
            for (group_key, cell_key), values in cuboid.cells.items()
        ],
    }
    Path(path).write_text(json.dumps(payload))


def load_cuboid(path: PathLike, schema: Schema = None) -> SCuboid:
    """Load a cuboid written by :func:`save_cuboid`."""
    payload = json.loads(Path(path).read_text())
    spec = parse_query(payload["spec"], schema)
    if payload.get("global_slice"):
        from dataclasses import replace

        restored: List[Tuple[int, object]] = []
        for index, value in payload["global_slice"]:
            restored.append(
                (index, tuple(value) if isinstance(value, list) else value)
            )
        spec = replace(spec, global_slice=tuple(restored))
    cells = {
        (tuple(group_key), tuple(cell_key)): values
        for group_key, cell_key, values in payload["cells"]
    }
    return SCuboid(spec, cells)
