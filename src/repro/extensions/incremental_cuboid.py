"""Incremental S-cuboid maintenance for partitioned appends (Section 6(2)).

Beyond re-indexing only the new day's data
(:class:`~repro.extensions.incremental.PartitionedIndexMaintainer`), a
warehouse also wants its *standing reports* — cached cuboids — refreshed
without recomputation.  That is possible exactly when new events form
complete new sequence groups: if the partition attribute (e.g. ``time AT
day``) appears in both CLUSTER BY and SEQUENCE GROUP BY, a day's events
can never join an existing sequence nor an existing group, so the new
cells are computed from the new data alone and merged in.

:class:`IncrementalCuboidMaintainer` enforces that precondition at
construction, rejects late-arriving events for already-finalised
partitions (they would silently corrupt the merge), and keeps the
maintained cuboid equal to a from-scratch recomputation at all times —
which is exactly what its tests assert.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Tuple

from repro.core.counter_based import counter_based_cuboid
from repro.core.cuboid import SCuboid
from repro.core.spec import CuboidSpec
from repro.core.stats import QueryStats
from repro.errors import EngineError, SpecError
from repro.events.database import EventDatabase
from repro.events.sequence import (
    SequenceGroupSet,
    cluster_events,
    form_sequences,
    group_sequences,
    select_events,
)

PartitionKey = object


class IncrementalCuboidMaintainer:
    """A standing S-cuboid refreshed group-by-group on partitioned appends."""

    def __init__(
        self,
        db: EventDatabase,
        spec: CuboidSpec,
        partition_attribute: str,
        partition_of: Callable[[Mapping[str, object]], PartitionKey],
    ):
        spec.validate(db.schema)
        cluster_attrs = {attr for attr, __ in spec.cluster_by}
        group_attrs = {attr for attr, __ in spec.group_by}
        if partition_attribute not in cluster_attrs:
            raise SpecError(
                f"partition attribute {partition_attribute!r} must appear in "
                "CLUSTER BY (otherwise new events could extend old sequences)"
            )
        if partition_attribute not in group_attrs:
            raise SpecError(
                f"partition attribute {partition_attribute!r} must appear in "
                "SEQUENCE GROUP BY (otherwise new sequences could join old "
                "groups)"
            )
        self.db = db
        self.spec = spec
        self.partition_attribute = partition_attribute
        self.partition_of = partition_of
        self._cells: Dict = {}
        self._partitions: Dict[PartitionKey, int] = {}
        self._next_sid = 0
        self.stats = QueryStats(strategy="incremental-cuboid")

    # ------------------------------------------------------------------
    @property
    def cuboid(self) -> SCuboid:
        """The maintained cuboid (a snapshot; cells are copied)."""
        return SCuboid(self.spec, {k: dict(v) for k, v in self._cells.items()})

    def partitions(self) -> Tuple[PartitionKey, ...]:
        return tuple(sorted(self._partitions, key=repr))

    # ------------------------------------------------------------------
    def ingest(self, events: Iterable[Mapping[str, object]]) -> List[PartitionKey]:
        """Append one or more *new* partitions of events and merge their cells.

        Every event's partition must be unseen; late arrivals raise before
        anything is appended (all-or-nothing), because merging into an
        already-computed partition would double-count its sequences.
        """
        batch = list(events)
        touched: Dict[PartitionKey, None] = {}
        for event in batch:
            key = self.partition_of(event)
            if key in self._partitions:
                raise EngineError(
                    f"partition {key!r} was already ingested; late-arriving "
                    "events require a rebuild"
                )
            touched[key] = None
        rows = [self.db.append(event) for event in batch]
        groups = self._pipeline_over(rows)
        partial = counter_based_cuboid(self.db, groups, self.spec, self.stats)
        overlap = set(partial.cells) & set(self._cells)
        if overlap:  # pragma: no cover - precondition makes this impossible
            raise EngineError(f"new partition produced existing cells: {overlap}")
        self._cells.update(partial.to_dict())
        for key in touched:
            self._partitions[key] = len(rows)
        return list(touched)

    def _pipeline_over(self, rows: List[int]) -> SequenceGroupSet:
        """Run the spec's pipeline over only the given (new) rows."""
        if self.spec.where is not None:
            from repro.events.expression import EventContext

            rows = [
                row
                for row in rows
                if self.spec.where.evaluate(EventContext(self.db.event(row)))
            ]
        clusters = cluster_events(self.db, rows, self.spec.cluster_by)
        sequences = form_sequences(
            self.db, clusters, self.spec.sequence_by, sid_start=self._next_sid
        )
        self._next_sid += len(sequences)
        return group_sequences(self.db, sequences, self.spec.group_by)

    # ------------------------------------------------------------------
    def verify_against_recompute(self) -> bool:
        """Ground-truth check: maintained cells == full recomputation."""
        rows = select_events(self.db, self.spec.where)
        clusters = cluster_events(self.db, rows, self.spec.cluster_by)
        sequences = form_sequences(self.db, clusters, self.spec.sequence_by)
        groups = group_sequences(self.db, sequences, self.spec.group_by)
        truth = counter_based_cuboid(self.db, groups, self.spec)
        return truth.to_dict() == self.cuboid.to_dict()

    def __repr__(self) -> str:
        return (
            f"IncrementalCuboidMaintainer({len(self._partitions)} partitions, "
            f"{len(self._cells)} cells)"
        )
