"""Incremental index maintenance (Section 6, Incremental Update).

"When a day of new transactions (events) are added to the event database,
we could create a new sequence group and precompute the corresponding
inverted indices for that day.  However, that new set of transactions may
also invalidate the cached sequence groups and the corresponding inverted
indices of the same week."

:class:`PartitionedIndexMaintainer` realises exactly that scheme for data
whose clustering key contains a partition attribute (e.g. ``time AT day``):

* events arrive partition by partition (day by day);
* each new partition gets its own sequence group and inverted index,
  built by scanning only the new sequences;
* a whole-dataset (or per-week) index is served as the *union* of the
  partition indices — no global rebuild;
* coarser cached artefacts covering the new partition (the week's union,
  affected cuboids) are invalidated.

The correctness precondition is that sequences never span partitions,
which holds whenever the partition attribute/level appears in CLUSTER BY —
the paper's per-day clustering.

When constructed with ``storage=`` (a
:class:`repro.storage.StorageManager`), every ingested batch is also
mirrored into the append-only segment store as one new segment, so the
on-disk store stays in lockstep with the in-memory database and process
workers can re-attach it by path after each day's load.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.spec import PatternTemplate
from repro.core.stats import QueryStats
from repro.errors import EngineError
from repro.events.database import EventDatabase
from repro.events.sequence import SequenceGroup
from repro.index.inverted import InvertedIndex, build_index, union_indices

PartitionKey = object


class PartitionedIndexMaintainer:
    """Per-partition inverted indices with union-on-demand and invalidation."""

    def __init__(
        self,
        db: EventDatabase,
        template: PatternTemplate,
        cluster_by: Tuple[Tuple[str, str], ...],
        sequence_by: Tuple[Tuple[str, bool], ...],
        partition_of: Callable[[Mapping[str, object]], PartitionKey],
        storage: Optional[object] = None,
    ):
        self.db = db
        self.template = template
        self.cluster_by = cluster_by
        self.sequence_by = sequence_by
        self.partition_of = partition_of
        self.storage = storage
        self._partition_rows: Dict[PartitionKey, List[int]] = {}
        self._partition_indices: Dict[PartitionKey, InvertedIndex] = {}
        self._union_cache: Dict[Tuple[PartitionKey, ...], InvertedIndex] = {}
        self._next_sid = 0
        self.stats = QueryStats(strategy="incremental")

    # ------------------------------------------------------------------
    def ingest(self, events: Iterable[Mapping[str, object]]) -> List[PartitionKey]:
        """Append new events and (re)index only the touched partitions.

        Returns the partition keys whose indices were rebuilt.  Caches
        (union indices) covering those partitions are invalidated.  With
        ``storage=`` set, the batch also lands as one appended segment.
        """
        batch = list(events)
        touched: Dict[PartitionKey, None] = {}
        for event in batch:
            row = self.db.append(event)
            key = self.partition_of(event)
            self._partition_rows.setdefault(key, []).append(row)
            touched[key] = None
        if self.storage is not None and batch:
            self.storage.append_events(batch)
        for key in touched:
            self._reindex_partition(key)
        self._invalidate_unions(touched)
        return list(touched)

    def _reindex_partition(self, key: PartitionKey) -> None:
        rows = self._partition_rows[key]
        groups = _pipeline_over_rows(
            self.db, rows, self.cluster_by, self.sequence_by, self._sid_base(key)
        )
        index = build_index(groups, self.template, self.db.schema, self.stats)
        self._partition_indices[key] = index

    def _sid_base(self, key: PartitionKey) -> int:
        """Stable, non-overlapping sid ranges per partition."""
        ordered = sorted(self._partition_rows, key=repr)
        base = 0
        for existing in ordered:
            if existing == key:
                return base
            # Reserve one sid per cluster; over-reserving is harmless as
            # long as ranges never overlap, so reserve one per row.
            base += len(self._partition_rows[existing])
        raise EngineError(f"unknown partition {key!r}")

    def _invalidate_unions(self, touched: Mapping[PartitionKey, None]) -> None:
        stale = [
            keys
            for keys in self._union_cache
            if any(key in keys for key in touched)
        ]
        for keys in stale:
            del self._union_cache[keys]
        self.stats.extra["unions_invalidated"] = int(
            self.stats.extra.get("unions_invalidated", 0)
        ) + len(stale)

    # ------------------------------------------------------------------
    def partitions(self) -> Tuple[PartitionKey, ...]:
        return tuple(sorted(self._partition_indices, key=repr))

    def partition_index(self, key: PartitionKey) -> InvertedIndex:
        try:
            return self._partition_indices[key]
        except KeyError:
            raise EngineError(f"no index for partition {key!r}") from None

    def combined_index(
        self, keys: Optional[Iterable[PartitionKey]] = None
    ) -> InvertedIndex:
        """The union index over *keys* (all partitions when None), cached."""
        selected = tuple(
            sorted(keys if keys is not None else self._partition_indices, key=repr)
        )
        cached = self._union_cache.get(selected)
        if cached is not None:
            return cached
        indices = [self.partition_index(key) for key in selected]
        if not indices:
            raise EngineError("no partitions ingested yet")
        union = union_indices(indices, self.template)
        self._union_cache[selected] = union
        self.stats.lists_transformed += sum(len(i.lists) for i in indices)
        return union

    def __repr__(self) -> str:
        return (
            f"PartitionedIndexMaintainer({len(self._partition_indices)} "
            f"partitions, template={self.template.positions})"
        )


def _pipeline_over_rows(
    db: EventDatabase,
    rows: List[int],
    cluster_by: Tuple[Tuple[str, str], ...],
    sequence_by: Tuple[Tuple[str, bool], ...],
    sid_base: int,
) -> SequenceGroup:
    """Cluster/order only the given rows into one sequence group."""
    from repro.events.sequence import cluster_events, form_sequences

    clusters = cluster_events(db, rows, cluster_by)
    sequences = form_sequences(db, clusters, sequence_by, sid_start=sid_base)
    return SequenceGroup(key=(), sequences=sequences)
