"""Iceberg S-cuboids (Section 6, Performance discussion).

"Many S-cuboid cells are often sparsely distributed within the S-cuboid
space ... introducing an iceberg condition (a minimum support threshold)
to filter out cells with low-support count would increase both S-OLAP
performance and usability as well as reduce space."

Two implementations:

* :func:`iceberg_counter_based` — CB with output filtering (the threshold
  cannot prune a full scan, only the result);
* :func:`iceberg_inverted_index` — II with *anti-monotone list pruning*:
  under left-maximality a cell's count is bounded by its list length, and
  a pattern's list is a subset of every prefix's list, so any intermediate
  list shorter than the threshold can be discarded before further joins —
  the classical iceberg-cube idea ([4] in the paper) transplanted onto the
  inverted-index chain.

Pruned intermediate indices are deliberately *not* registered in the
engine's registry: they are incomplete below the threshold and would
corrupt non-iceberg queries.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.counter_based import counter_based_cuboid, group_is_selected
from repro.core.cuboid import SCuboid
from repro.core.inverted_index import count_index
from repro.core.spec import CuboidSpec
from repro.core.stats import QueryStats
from repro.errors import SpecError
from repro.events.database import EventDatabase
from repro.events.sequence import SequenceGroup, SequenceGroupSet
from repro.index.inverted import (
    InvertedIndex,
    build_index,
    join_indices,
    pair_template,
    prefix_template,
    verify_index,
)
from repro.index.registry import base_template


def _filter_cells(cuboid: SCuboid, min_support: int) -> SCuboid:
    count_name = "COUNT(*)"
    kept = {
        key: values
        for key, values in cuboid.cells.items()
        if int(values.get(count_name, 0) or 0) >= min_support
    }
    return SCuboid(cuboid.spec, kept)


def iceberg_counter_based(
    db: EventDatabase,
    groups: SequenceGroupSet,
    spec: CuboidSpec,
    min_support: int,
    stats: Optional[QueryStats] = None,
) -> SCuboid:
    """CB baseline: full scan, then drop cells below *min_support*."""
    if min_support < 1:
        raise SpecError("min_support must be >= 1")
    stats = stats if stats is not None else QueryStats()
    stats.strategy = "iceberg-CB"
    cuboid = counter_based_cuboid(db, groups, spec, stats)
    return _filter_cells(cuboid, min_support)


def _prune(index: InvertedIndex, min_support: int, stats: QueryStats) -> InvertedIndex:
    pruned = {
        values: sids
        for values, sids in index.lists.items()
        if len(sids) >= min_support
    }
    stats.extra["lists_pruned"] = (
        int(stats.extra.get("lists_pruned", 0)) + len(index.lists) - len(pruned)
    )
    return InvertedIndex(index.template, index.group_key, pruned, index.verified)


def _iceberg_index(
    group: SequenceGroup,
    spec: CuboidSpec,
    db: EventDatabase,
    min_support: int,
    stats: QueryStats,
) -> InvertedIndex:
    """A support-pruned join chain for one group (never registered)."""
    template = spec.template
    schema = db.schema
    m = template.length
    if m == 1:
        base = build_index(group, base_template(template), schema, stats)
        return _prune(base.filter_for(template, schema), min_support, stats)
    first_pair = prefix_template(template, 2)
    base = build_index(group, base_template(first_pair), schema, stats)
    current = _prune(base.filter_for(first_pair, schema), min_support, stats)
    current_length = 2
    while current_length < m:
        target = prefix_template(template, current_length + 1)
        pair = pair_template(template, current_length - 1)
        pair_index = build_index(
            group, pair, schema, stats, restrict_sids=current.all_sids()
        )
        candidate = join_indices(current, pair_index, target, schema, stats)
        candidate = _prune(candidate, min_support, stats)
        current = _prune(
            verify_index(candidate, group, schema, stats), min_support, stats
        )
        current_length += 1
    return current


def iceberg_inverted_index(
    db: EventDatabase,
    groups: SequenceGroupSet,
    spec: CuboidSpec,
    min_support: int,
    stats: Optional[QueryStats] = None,
) -> SCuboid:
    """II with anti-monotone list pruning between join steps.

    Sound for COUNT under left-maximality restrictions: a cell's count
    never exceeds its list length, and list lengths never grow along the
    join chain.  ALL-MATCHED counts can exceed list lengths (one sequence
    may contribute several occurrences), so that restriction is rejected.
    """
    if min_support < 1:
        raise SpecError("min_support must be >= 1")
    from repro.core.spec import CellRestriction

    if spec.restriction is CellRestriction.ALL_MATCHED:
        raise SpecError(
            "iceberg pruning by list length is unsound under ALL-MATCHED"
        )
    stats = stats if stats is not None else QueryStats()
    stats.strategy = "iceberg-II"
    slices = spec.sliced_groups()
    cells: Dict[Tuple[Tuple[object, ...], Tuple[object, ...]], Dict[str, object]] = {}
    for group in groups:
        if not group_is_selected(group.key, slices):
            continue
        index = _iceberg_index(group, spec, db, min_support, stats)
        for cell_key, values in count_index(index, group, spec, db, stats).items():
            cells[(group.key, cell_key)] = values
    return _filter_cells(SCuboid(spec, cells), min_support)
