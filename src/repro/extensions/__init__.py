"""Extensions from the paper's discussion section: iceberg cuboids,
online aggregation, incremental index maintenance."""

from repro.extensions.federated import (
    FederationCoordinator,
    VendorSite,
    pseudonymize,
)
from repro.extensions.iceberg import (
    iceberg_counter_based,
    iceberg_inverted_index,
)
from repro.extensions.incremental import PartitionedIndexMaintainer
from repro.extensions.incremental_cuboid import IncrementalCuboidMaintainer
from repro.extensions.online_agg import OnlineEstimate, online_cuboid

__all__ = [
    "FederationCoordinator",
    "IncrementalCuboidMaintainer",
    "OnlineEstimate",
    "PartitionedIndexMaintainer",
    "VendorSite",
    "iceberg_counter_based",
    "iceberg_inverted_index",
    "online_cuboid",
    "pseudonymize",
]
