"""Cross-vendor sequence analysis without sharing base data (Section 6(3)).

"A few vendors may share portions of their data to perform sequence data
analysis together ... the subway company collaborates with a local bus
company and offer a subway-bus-transit package ... how to integrate the
two separately-owned sequence databases in order to perform such a
high-level sequence data analysis (without disclosing the base data to
each other) is a challenging research topic."

This module implements the natural inverted-index answer to that
challenge.  Each vendor keeps its event database private and exposes a
:class:`VendorSite` that answers only *pattern-list* requests: for a
pattern template over the vendor's own events, it returns lists of
**salted-hash pseudonyms** of the shared join key (e.g. card-id) instead
of raw identifiers.  A :class:`FederationCoordinator` holding no base
data intersects pseudonym lists across vendors to count cross-vendor
behaviours ("took subway trip X→Y, then a bus ride the same day"), seeing
only:

* pattern values at whatever abstraction level the vendors agree on, and
* pseudonym intersections — never the events, amounts or raw card ids.

The pseudonym salt is shared by the vendors but not derivable by the
coordinator, so the coordinator cannot dictionary-attack the ids; and a
minimum-count threshold (k-anonymity style) suppresses small cells.
This is the standard salted-hash private-set-intersection compromise:
vendors learn nothing new, the coordinator learns only thresholded
aggregate counts.
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, List, Tuple

from repro.core.matcher import make_matcher
from repro.core.spec import PatternTemplate
from repro.errors import EngineError, SchemaError
from repro.events.database import EventDatabase
from repro.events.sequence import build_sequence_groups

PatternValues = Tuple[object, ...]
Pseudonym = str


def pseudonymize(value: object, salt: str) -> Pseudonym:
    """Salted-hash pseudonym of a shared join-key value."""
    digest = hashlib.sha256(f"{salt}|{value!r}".encode("utf-8")).hexdigest()
    return digest[:16]


class VendorSite:
    """One vendor's private warehouse with a pattern-list interface.

    The vendor controls which attribute is the shared join key (e.g. the
    payment card) and which clustering defines a "co-analysable unit"
    (e.g. card x day).  Only pseudonymised lists leave the site.
    """

    def __init__(
        self,
        name: str,
        db: EventDatabase,
        join_key: str,
        cluster_by: Tuple[Tuple[str, str], ...],
        sequence_by: Tuple[Tuple[str, bool], ...],
        salt: str,
    ):
        self.name = name
        self._db = db
        self._join_key = join_key
        self._cluster_by = cluster_by
        self._sequence_by = sequence_by
        self._salt = salt

    def pattern_lists(
        self, template: PatternTemplate
    ) -> Dict[PatternValues, FrozenSet[Pseudonym]]:
        """Pseudonym lists per pattern instantiation — the only export.

        A pseudonym enters the list for pattern p when *some* sequence of
        that join-key value contains p.  Raw events never leave.
        """
        groups = build_sequence_groups(
            self._db, None, self._cluster_by, self._sequence_by
        )
        matcher = make_matcher(template, self._db.schema, db=self._db)
        lists: Dict[PatternValues, set] = {}
        for sequence in groups.all_sequences():
            pseudonym = pseudonymize(
                self._sequence_join_value(sequence), self._salt
            )
            for values in matcher.unique_instantiations(sequence):
                lists.setdefault(values, set()).add(pseudonym)
        return {values: frozenset(ids) for values, ids in lists.items()}

    def _sequence_join_value(self, sequence) -> object:
        """The sequence's single join-key value, validated.

        The federation protocol assumes every event of a co-analysable
        unit carries the same join-key value (the clustering should imply
        it).  A missing attribute or a value that varies within one
        sequence would silently corrupt the pseudonym lists, so both are
        typed errors naming the site and the key.
        """
        values = set()
        for position in range(len(sequence)):
            try:
                values.add(sequence.event(position)[self._join_key])
            except (KeyError, SchemaError):
                raise EngineError(
                    f"vendor site {self.name!r}: join key "
                    f"{self._join_key!r} is missing from event {position} "
                    f"of sequence {sequence.cluster_key!r}"
                ) from None
        if len(values) != 1:
            raise EngineError(
                f"vendor site {self.name!r}: join key {self._join_key!r} "
                f"varies within sequence {sequence.cluster_key!r} "
                f"({sorted(map(repr, values))}); cluster on the join key "
                f"so each sequence has one owner"
            )
        return next(iter(values))

    def population(self) -> FrozenSet[Pseudonym]:
        """Pseudonyms of every join-key value present at this vendor."""
        return frozenset(
            pseudonymize(value, self._salt)
            for value in set(self._db.column(self._join_key))
        )

    def __repr__(self) -> str:
        return f"VendorSite({self.name!r}, {len(self._db)} private events)"


class FederationCoordinator:
    """Counts cross-vendor pattern co-occurrences from pseudonym lists."""

    def __init__(self, sites: List[VendorSite], min_count: int = 5):
        if len(sites) < 2:
            raise EngineError("a federation needs at least two vendor sites")
        self.sites = sites
        #: cells whose pseudonym-intersection count falls below this are
        #: suppressed (k-anonymity style disclosure control)
        self.min_count = min_count

    def cross_counts(
        self,
        templates: Dict[str, PatternTemplate],
    ) -> Dict[Tuple[PatternValues, ...], int]:
        """Joint counts over one pattern template per site.

        Returns ``{(pattern_site1, pattern_site2, ...): count}`` where
        count is the number of shared customers matching every site's
        pattern — e.g. (subway trip X→Y, any bus ride) pairs.  Cells below
        ``min_count`` are suppressed, and the coordinator never sees a
        pseudonym's pre-image.
        """
        per_site: List[Dict[PatternValues, FrozenSet[Pseudonym]]] = []
        for site in self.sites:
            if site.name not in templates:
                raise EngineError(f"no template for site {site.name!r}")
            per_site.append(site.pattern_lists(templates[site.name]))

        def expand(
            index: int, current: Tuple[PatternValues, ...], ids: FrozenSet[Pseudonym]
        ):
            if len(ids) < self.min_count:
                return
            if index == len(per_site):
                results[current] = len(ids)
                return
            for values, site_ids in per_site[index].items():
                expand(index + 1, current + (values,), ids & site_ids)

        results: Dict[Tuple[PatternValues, ...], int] = {}
        universe = frozenset().union(*(site.population() for site in self.sites))
        expand(0, (), universe)
        return results

    def shared_customers(self) -> int:
        """How many customers appear at every vendor (thresholded)."""
        shared = self.sites[0].population()
        for site in self.sites[1:]:
            shared &= site.population()
        count = len(shared)
        return count if count >= self.min_count else 0

    def __repr__(self) -> str:
        return (
            f"FederationCoordinator({[s.name for s in self.sites]}, "
            f"min_count={self.min_count})"
        )
