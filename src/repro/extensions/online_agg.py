"""Online (progressive) aggregation of S-cuboids (Section 6, Performance).

"The online aggregation feature would allow an S-OLAP system to report
'what it knows so far' instead of waiting until the S-OLAP query is fully
processed.  Such an approximate answer ... is periodically refreshed and
refined as the computation continues."

:func:`online_cuboid` is a generator: it processes sequences in chunks
(CB-style) and yields an :class:`OnlineEstimate` after every chunk.  Each
estimate carries the exact partial cuboid over the processed prefix, the
processed fraction, and a scaled extrapolation of COUNT cells — adequate
for the paper's example use ("approximate numbers like 200,000 for the
Pentagon-Wheaton round-trip would be informative enough").

To make the estimate representative rather than order-biased, sequences
are visited in a deterministically shuffled order (seeded), which is the
standard randomised-scan prerequisite of online aggregation [10].
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.aggregates import CellAccumulator
from repro.core.counter_based import group_is_selected
from repro.core.cuboid import SCuboid
from repro.core.matcher import make_matcher
from repro.core.spec import CuboidSpec
from repro.core.stats import QueryStats
from repro.events.database import EventDatabase
from repro.events.sequence import Sequence, SequenceGroupSet


@dataclass
class OnlineEstimate:
    """One refresh of a progressive S-OLAP answer."""

    #: exact cuboid over the prefix processed so far
    partial: SCuboid
    #: number of sequences processed / total selected
    processed: int
    total: int

    @property
    def fraction(self) -> float:
        return self.processed / self.total if self.total else 1.0

    @property
    def is_final(self) -> bool:
        return self.processed >= self.total

    def estimated_count(
        self,
        cell_key: Tuple[object, ...],
        group_key: Tuple[object, ...] = (),
    ) -> float:
        """Linear scale-up estimate of a cell's final COUNT."""
        observed = self.partial.count(cell_key, group_key)
        if self.fraction == 0:
            return 0.0
        return observed / self.fraction

    def __repr__(self) -> str:
        return (
            f"OnlineEstimate({self.processed}/{self.total} sequences, "
            f"{len(self.partial)} cells)"
        )


def online_cuboid(
    db: EventDatabase,
    groups: SequenceGroupSet,
    spec: CuboidSpec,
    chunk_size: int = 256,
    seed: int = 0,
    stats: Optional[QueryStats] = None,
    cancel: Optional[object] = None,
) -> Iterator[OnlineEstimate]:
    """Progressively compute an S-cuboid, yielding after every chunk.

    The final yielded estimate (``is_final``) equals the CB result exactly.
    An empty selection (``total == 0``) yields exactly one estimate, which
    is final.

    *cancel* is a cooperative cancellation guard (anything with a
    ``check()`` that raises, e.g. a
    :class:`~repro.service.deadline.Deadline`,
    :class:`~repro.service.deadline.CancelToken` or a fused
    :class:`~repro.service.deadline.CancelScope`): it is checked at every
    chunk boundary, so a cancelled or expired progressive query stops
    within one chunk of work.  The streaming HTTP endpoint leans on this
    seam to abandon server-side work when a client cancels or disconnects
    mid-stream.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    stats = stats if stats is not None else QueryStats()
    if cancel is not None and stats.deadline is None:
        # Thread the guard through the per-sequence scan checkpoints too,
        # so huge chunks still cancel promptly.
        stats.deadline = cancel
    stats.strategy = "online"
    matcher = make_matcher(
        spec.template, db.schema, spec.restriction, spec.predicate,
        db=db, stats=stats,
    )
    slices = spec.sliced_groups()
    work: List[Tuple[Tuple[object, ...], Sequence]] = []
    for group in groups:
        if not group_is_selected(group.key, slices):
            continue
        for sequence in group:
            work.append((group.key, sequence))
    rng = random.Random(seed)
    rng.shuffle(work)

    accumulators: Dict[
        Tuple[Tuple[object, ...], Tuple[object, ...]], CellAccumulator
    ] = {}
    total = len(work)
    processed = 0
    while processed < total or total == 0:
        if cancel is not None:
            cancel.check()  # type: ignore[attr-defined]
        chunk = work[processed : processed + chunk_size]
        for group_key, sequence in chunk:
            stats.add_scan()
            for cell_key, contents in matcher.assignments(sequence).items():
                accumulator = accumulators.get((group_key, cell_key))
                if accumulator is None:
                    accumulator = CellAccumulator(spec.aggregates)
                    accumulators[(group_key, cell_key)] = accumulator
                for content in contents:
                    accumulator.add_assignment(db, sequence, content)
        processed += len(chunk)
        partial = SCuboid(
            spec, {key: acc.results() for key, acc in accumulators.items()}
        )
        yield OnlineEstimate(partial=partial, processed=processed, total=total)
        if total == 0:
            return
