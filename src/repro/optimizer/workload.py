"""Workload mining: turn the structured query log into per-spec statistics.

The service emits one ``query_finished`` JSON line per answered query
(:mod:`repro.obs.logging`, log schema ≥ 2 carries ``spec_digest`` /
``query_ql`` / ``cells``).  This module folds that stream into per-spec
frequency and latency statistics that the materialization advisor
(:func:`repro.optimizer.advisor.advise_cuboid_materializations`) scores
by benefit-per-byte.

The loader is deliberately tolerant: real logs interleave the query
stream with other lifecycle events (``session_evicted``,
``index_built``, ``slow_query``, …), blank lines and non-JSON noise.
Everything that is not a well-formed ``query_finished`` record is
counted and skipped, never raised.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

Source = Union[str, Iterable]  # path, text block, or iterable of lines/dicts


@dataclass
class SpecStats:
    """Frequency/latency profile of one distinct spec in the workload."""

    digest: str
    ql: Optional[str] = None
    count: int = 0
    total_wall_ms: float = 0.0
    total_engine_ms: float = 0.0
    max_cells: int = 0
    strategies: Dict[str, int] = field(default_factory=dict)
    cache_answers: Dict[str, int] = field(default_factory=dict)
    #: wall ms spent on *cold* answers (not exact/derived cache hits) —
    #: the recompute cost a materialization would save
    cold_wall_ms: List[float] = field(default_factory=list)

    @property
    def mean_wall_ms(self) -> float:
        return self.total_wall_ms / self.count if self.count else 0.0

    @property
    def mean_cold_wall_ms(self) -> float:
        if not self.cold_wall_ms:
            return self.mean_wall_ms
        return sum(self.cold_wall_ms) / len(self.cold_wall_ms)


@dataclass
class Workload:
    """Aggregated view of a query log."""

    by_spec: Dict[str, SpecStats] = field(default_factory=dict)
    queries: int = 0
    skipped_events: int = 0
    skipped_lines: int = 0

    def top(self, n: int = 10) -> List[SpecStats]:
        return sorted(
            self.by_spec.values(),
            key=lambda s: (s.total_wall_ms, s.count),
            reverse=True,
        )[:n]


def iter_events(source: Source) -> Iterator[Tuple[Optional[dict], bool]]:
    """Yield ``(event_dict, ok)`` per input line; ``(None, False)`` for noise.

    *source* may be a file path, a newline-separated text block, or any
    iterable of JSON-line strings / already-parsed dicts.
    """
    if isinstance(source, str):
        if "\n" not in source and not source.lstrip().startswith("{"):
            with open(source, "r", encoding="utf-8") as fh:
                yield from iter_events(list(fh))
            return
        source = source.splitlines()
    for line in source:
        if isinstance(line, dict):
            yield line, True
            continue
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except (ValueError, TypeError):
            yield None, False
            continue
        if isinstance(doc, dict):
            yield doc, True
        else:
            yield None, False


def mine_workload(source: Source) -> Workload:
    """Fold a query log into per-spec statistics.

    Only ``query_finished`` events that carry a spec identity
    (``spec_digest``, log schema ≥ 2) contribute; interleaved lifecycle
    events are tolerated and tallied in ``skipped_events``.
    """
    workload = Workload()
    for doc, ok in iter_events(source):
        if not ok:
            workload.skipped_lines += 1
            continue
        if doc.get("event") != "query_finished":
            workload.skipped_events += 1
            continue
        digest = doc.get("spec_digest")
        if not digest:
            workload.skipped_events += 1
            continue
        stats = workload.by_spec.get(digest)
        if stats is None:
            stats = workload.by_spec[digest] = SpecStats(digest=digest)
        workload.queries += 1
        stats.count += 1
        stats.total_wall_ms += float(doc.get("wall_ms") or 0.0)
        stats.total_engine_ms += float(doc.get("engine_ms") or 0.0)
        stats.max_cells = max(stats.max_cells, int(doc.get("cells") or 0))
        if doc.get("query_ql") and not stats.ql:
            stats.ql = doc["query_ql"]
        strategy = (doc.get("strategy") or "").lower() or "unknown"
        stats.strategies[strategy] = stats.strategies.get(strategy, 0) + 1
        answer = doc.get("cache_answer") or "miss"
        answer_kind = answer.split(":", 1)[0]
        stats.cache_answers[answer_kind] = stats.cache_answers.get(answer_kind, 0) + 1
        if answer_kind == "miss":
            stats.cold_wall_ms.append(float(doc.get("wall_ms") or 0.0))
    return workload


def replay_specs(source: Source, schema=None) -> List[Tuple[str, object]]:
    """Parse each logged query back into a :class:`CuboidSpec` where possible.

    Returns ``(digest, spec)`` pairs in first-seen order, skipping records
    whose QL text does not round-trip (global slices are logged as
    comments, so those specs replay without the slice — the digest keeps
    them distinguishable).  Tolerates interleaved non-query events.
    """
    from repro.ql.parser import parse_query

    seen = set()
    out: List[Tuple[str, object]] = []
    for doc, ok in iter_events(source):
        if not ok or doc.get("event") != "query_finished":
            continue
        digest = doc.get("spec_digest")
        ql = doc.get("query_ql")
        if not digest or not ql or digest in seen:
            continue
        seen.add(digest)
        try:
            spec = parse_query(ql, schema)
        except Exception:
            continue
        out.append((digest, spec))
    return out
