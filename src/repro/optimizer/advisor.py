"""Index advisor: which inverted indices to materialise offline.

The paper closes Section 4.2.2 with: "Another interesting question
concerns *which* inverted indices should be materialized offline.  A
related problem is thus about how to determine the lists to be built
given a set of frequently asked queries."

This module answers that question with a classical greedy
benefit-per-byte selection:

1. **Candidates** — for every spec in the workload, the base (all-
   distinct, unrestricted) L1/L2 templates over each adjacent
   position-pair domain.  These are exactly the indices QueryIndices can
   bootstrap any join chain from, and they are shareable across queries
   with the same domains.
2. **Benefit** — for each candidate, the drop in modelled cost
   (:class:`~repro.optimizer.cost_model.CostModel`) summed over the
   weighted workload when the candidate is (hypothetically) available.
3. **Selection** — greedy by benefit / estimated bytes under a byte
   budget, re-scoring after each pick (a later candidate may be
   subsumed by an earlier one).

``materialize`` then actually builds the chosen indices through the
engine, making the recommendation actionable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.engine import SOLAPEngine
from repro.core.spec import CuboidSpec, PatternTemplate
from repro.core.stats import QueryStats
from repro.index.inverted import pair_template
from repro.index.registry import IndexRegistry, base_template
from repro.optimizer.cost_model import CostModel, DataProfile, profile_groups


@dataclass
class Recommendation:
    """One advised index with its scores."""

    template: PatternTemplate
    benefit: float
    estimated_bytes: int

    @property
    def benefit_per_byte(self) -> float:
        return self.benefit / max(1, self.estimated_bytes)

    def __repr__(self) -> str:
        domains = ", ".join(
            f"{s.attribute}@{s.level}" for s in self.template.position_symbols()
        )
        return (
            f"Recommendation(L{self.template.length}[{domains}], "
            f"benefit={self.benefit:.0f}, ~{self.estimated_bytes / 1e6:.2f} MB)"
        )


class IndexAdvisor:
    """Greedy offline-materialisation advisor for a query workload."""

    def __init__(self, profile: DataProfile):
        self.profile = profile
        self.model = CostModel(profile)

    # ------------------------------------------------------------------
    def candidate_templates(
        self, workload: Sequence[CuboidSpec]
    ) -> List[PatternTemplate]:
        """Distinct base L1/L2 templates covering the workload's joins."""
        seen: Dict[Tuple, PatternTemplate] = {}
        for spec in workload:
            template = spec.template
            if template.length == 1:
                candidate = base_template(template)
                seen.setdefault(candidate.signature(), candidate)
                continue
            for position in range(template.length - 1):
                candidate = base_template(pair_template(template, position))
                seen.setdefault(candidate.signature(), candidate)
        return list(seen.values())

    def estimate_index_bytes(self, template: PatternTemplate) -> int:
        """Predicted footprint of a base index over the profile's data.

        Expected entries ≈ one per (sequence, distinct pattern) pair; the
        number of distinct patterns per sequence is bounded by both the
        window count and the instantiation space.
        """
        profile = self.profile
        m = template.length
        windows = max(1.0, profile.avg_length - m + 1)
        space = 1.0
        for symbol in template.position_symbols():
            space *= profile.domain_size(symbol.attribute, symbol.level)
        per_sequence = min(windows, space)
        entries = profile.n_sequences * per_sequence
        lists = min(space, entries)
        return int(8 * entries + (48 + 8 * m) * lists)

    # ------------------------------------------------------------------
    def _workload_cost(
        self,
        workload: Sequence[Tuple[CuboidSpec, float]],
        available: List[PatternTemplate],
        schema,
    ) -> float:
        """Modelled total cost with the given base indices available."""
        registry = IndexRegistry()
        # Register empty shells: the cost model only consults signatures
        # through longest_prefix, which needs real index objects — give it
        # verified empty ones (costing never reads the lists).
        from repro.index.inverted import InvertedIndex

        for template in available:
            registry.put(InvertedIndex(template, (), {}, verified=True))
        total = 0.0
        for spec, weight in workload:
            __, cb, ii = self.model.choose(spec, registry, (), schema)
            total += weight * min(cb.scan_equivalents, ii.scan_equivalents)
        return total

    def recommend(
        self,
        workload: Sequence[CuboidSpec],
        schema,
        byte_budget: int = 64 * 1024 * 1024,
        weights: Optional[Sequence[float]] = None,
    ) -> List[Recommendation]:
        """Greedy benefit-per-byte selection under *byte_budget*."""
        weighted = list(
            zip(workload, weights if weights is not None else [1.0] * len(workload))
        )
        candidates = self.candidate_templates(workload)
        chosen: List[PatternTemplate] = []
        recommendations: List[Recommendation] = []
        remaining_budget = byte_budget
        baseline = self._workload_cost(weighted, chosen, schema)
        pool = list(candidates)
        while pool:
            best = None
            best_score = 0.0
            best_cost = baseline
            for candidate in pool:
                bytes_ = self.estimate_index_bytes(candidate)
                if bytes_ > remaining_budget:
                    continue
                cost_with = self._workload_cost(
                    weighted, chosen + [candidate], schema
                )
                benefit = baseline - cost_with
                score = benefit / max(1, bytes_)
                if benefit > 0 and score > best_score:
                    best = candidate
                    best_score = score
                    best_cost = cost_with
            if best is None:
                break
            bytes_ = self.estimate_index_bytes(best)
            recommendations.append(
                Recommendation(best, baseline - best_cost, bytes_)
            )
            chosen.append(best)
            pool.remove(best)
            remaining_budget -= bytes_
            baseline = best_cost
        return recommendations

    # ------------------------------------------------------------------
    @staticmethod
    def materialize(
        engine: SOLAPEngine,
        recommendations: Sequence[Recommendation],
        prototype: CuboidSpec,
    ) -> QueryStats:
        """Actually build the advised indices (offline precompute)."""
        return engine.precompute(
            prototype, [rec.template for rec in recommendations]
        )


def advise_for_workload(
    engine: SOLAPEngine,
    workload: Sequence[CuboidSpec],
    byte_budget: int = 64 * 1024 * 1024,
) -> List[Recommendation]:
    """One-call convenience: profile, advise, return recommendations."""
    if not workload:
        return []
    groups = engine.sequence_groups(workload[0])
    domains = set()
    for spec in workload:
        for symbol in spec.template.symbols:
            domains.add((symbol.attribute, symbol.level))
    profile = profile_groups(engine.db, groups, tuple(domains))
    advisor = IndexAdvisor(profile)
    return advisor.recommend(workload, engine.db.schema, byte_budget)


# --------------------------------------------------------------------------
# Cuboid materialization advice from a mined workload
# --------------------------------------------------------------------------


@dataclass
class CuboidRecommendation:
    """One advised cuboid materialization scored from the query log.

    ``benefit`` is the recompute time (seconds) the materialization would
    have saved over the mined window: mean cold latency × the number of
    times the spec was answered cold.
    """

    digest: str
    ql: Optional[str]
    frequency: int
    cold_answers: int
    mean_cold_ms: float
    estimated_bytes: int
    benefit_seconds: float

    @property
    def benefit_per_byte(self) -> float:
        return self.benefit_seconds / max(1, self.estimated_bytes)

    def __repr__(self) -> str:
        label = self.ql.splitlines()[0][:48] if self.ql else self.digest
        return (
            f"CuboidRecommendation({label!r}, n={self.frequency}, "
            f"saves~{self.benefit_seconds * 1000:.1f} ms, "
            f"~{self.estimated_bytes / 1e3:.1f} KB)"
        )


def advise_cuboid_materializations(
    workload,
    byte_budget: int = 64 * 1024 * 1024,
    schema=None,
) -> List[CuboidRecommendation]:
    """Greedy benefit-per-byte cuboid selection from a mined workload.

    *workload* is a :class:`repro.optimizer.workload.Workload`.  Footprints
    come from the logged cell counts via
    :func:`repro.core.repository.estimate_cells_bytes` (dimensionality
    from the parsed QL when it round-trips, else a 2-dim default).  Specs
    that never missed the cache have zero benefit and are not advised.
    """
    from repro.core.repository import estimate_cells_bytes
    from repro.ql.parser import parse_query

    candidates: List[CuboidRecommendation] = []
    for stats in workload.by_spec.values():
        cold = len(stats.cold_wall_ms)
        if cold == 0:
            continue
        n_dims, n_aggs = 2, 1
        if stats.ql:
            try:
                spec = parse_query(stats.ql, schema)
                n_dims = spec.n_dims
                n_aggs = len(spec.aggregates)
            except Exception:
                pass
        estimated_bytes = estimate_cells_bytes(n_dims, n_aggs, max(1, stats.max_cells))
        benefit_seconds = (stats.mean_cold_wall_ms / 1000.0) * cold
        candidates.append(
            CuboidRecommendation(
                digest=stats.digest,
                ql=stats.ql,
                frequency=stats.count,
                cold_answers=cold,
                mean_cold_ms=stats.mean_cold_wall_ms,
                estimated_bytes=estimated_bytes,
                benefit_seconds=benefit_seconds,
            )
        )
    candidates.sort(key=lambda c: (-c.benefit_per_byte, -c.benefit_seconds, c.digest))
    chosen: List[CuboidRecommendation] = []
    remaining = byte_budget
    for candidate in candidates:
        if candidate.estimated_bytes > remaining:
            continue
        chosen.append(candidate)
        remaining -= candidate.estimated_bytes
    return chosen
