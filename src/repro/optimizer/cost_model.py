"""A cost model for choosing between CB and II (Section 4.2.2's open
problem: "this is a sophisticated S-OLAP query optimization problem where
many factors such as storage space, memory availability, and execution
speed are parts of the formula").

The model prices both strategies in *sequence-scan equivalents* — the
machine-independent unit the paper reports — using a
:class:`DataProfile` summarising the sequence groups:

* **CB** always scans every selected sequence and pays a per-sequence
  matching cost proportional to the number of candidate windows.
* **II** pays (a) index acquisition — zero for a registry hit, a merge
  for a roll-up, a candidate-restricted rebuild for a drill-down, join +
  verification work for a prefix hit, or a full build from scratch — and
  (b) counting — free for predicate-less left-maximality COUNTs, one scan
  per listed sequence otherwise.

Selectivity of a pattern is estimated from the profile under a
uniform-independence assumption, deliberately biased pessimistically for
II (Zipf-skewed data makes lists *larger* than independence predicts), so
"choose II" decisions are conservative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.spec import CellRestriction, CuboidSpec, PatternTemplate
from repro.core.aggregates import needs_contents
from repro.events.database import EventDatabase
from repro.events.sequence import SequenceGroupSet
from repro.index.inverted import prefix_template
from repro.index.registry import IndexRegistry

AttrLevel = Tuple[str, str]

#: density (entries per sid of span) above which bitmap intersection beats
#: galloping over sorted posting lists: packing costs one big-int OR per
#: entry but intersection is then one machine-word AND per 64 sids of span,
#: so bitmaps win once lists cover more than ~1/64 of the span.
BITMAP_DENSITY_CUTOFF = 1.0 / 64.0


def choose_join_kernel(avg_list_len: float, sid_span: int) -> str:
    """Pick the per-join intersection kernel from list densities.

    A pure-numbers rule (no index access) used by
    :func:`repro.index.inverted.join_indices`: ``"bitmap"`` when the average
    posting list is dense within the sid span — each 64-sid word of a
    bitmap then carries enough set bits to beat per-element galloping — and
    ``"sorted"`` galloping intersection otherwise.
    """
    if sid_span <= 0 or avg_list_len <= 0:
        return "sorted"
    if avg_list_len / sid_span >= BITMAP_DENSITY_CUTOFF:
        return "bitmap"
    return "sorted"


@dataclass
class DataProfile:
    """Summary statistics of a sequence-group set used for costing."""

    n_sequences: int
    avg_length: float
    n_groups: int
    #: distinct-value counts per (attribute, level) domain
    domain_sizes: Dict[AttrLevel, int] = field(default_factory=dict)

    def domain_size(self, attribute: str, level: str) -> int:
        return max(1, self.domain_sizes.get((attribute, level), 1))


def profile_groups(
    db: EventDatabase,
    groups: SequenceGroupSet,
    domains: Tuple[AttrLevel, ...] = (),
) -> DataProfile:
    """Collect a :class:`DataProfile` (single pass over sequence lengths;
    distinct counts via the columnar store)."""
    total = 0
    count = 0
    for group in groups:
        for sequence in group:
            total += len(sequence)
            count += 1
    domain_sizes = {
        (attribute, level): len(db.distinct(attribute, level))
        for attribute, level in domains
    }
    return DataProfile(
        n_sequences=count,
        avg_length=total / count if count else 0.0,
        n_groups=max(1, len(groups)),
        domain_sizes=domain_sizes,
    )


@dataclass
class CostEstimate:
    """Predicted cost of answering one spec with one strategy."""

    strategy: str
    scan_equivalents: float
    detail: str

    def __repr__(self) -> str:
        return (
            f"CostEstimate({self.strategy}, {self.scan_equivalents:.0f} "
            f"scan-equivalents: {self.detail})"
        )


class CostModel:
    """Prices CB and II for a spec against a registry and a profile."""

    #: relative cost of one join+verify step vs one sequence scan
    JOIN_STEP_WEIGHT = 0.5
    #: relative cost of a list merge vs one sequence scan
    MERGE_WEIGHT = 0.01
    #: relative cost of an index-building scan vs a plain CB scan — list
    #: insertion makes building more expensive per sequence, which is why
    #: the paper's Table 1 shows CB winning the cold first query
    BUILD_WEIGHT = 1.5

    def __init__(self, profile: DataProfile):
        self.profile = profile

    # -- selectivity --------------------------------------------------------
    def expected_matching_sequences(self, template: PatternTemplate) -> float:
        """E[#sequences containing some instantiation of *template*].

        Under independence, a fixed length-m pattern occurs in a window
        with probability ∏ 1/|dom_i|; a sequence has ~(L - m + 1) windows.
        For an unrestricted template (all instantiations) the union over
        instantiations makes a sequence match almost surely when domains
        are small, so the estimate is capped at n_sequences.  Fixed
        symbols divide the candidate instantiation space.
        """
        profile = self.profile
        m = template.length
        windows = max(0.0, profile.avg_length - m + 1)
        if windows == 0:
            return 0.0
        # probability one window matches SOME instantiation honouring the
        # symbol restrictions: 1 / (product of domain sizes of restricted
        # positions) — unrestricted positions always match something.
        p_window = 1.0
        for symbol in template.position_symbols():
            if symbol.fixed is not None:
                p_window /= self.profile.domain_size(
                    symbol.attribute, symbol.level
                )
            # 'within' constraints restrict to a subtree; approximate as a
            # tenth of the domain when we cannot enumerate it.
            elif symbol.within is not None:
                p_window /= max(
                    2.0, self.profile.domain_size(symbol.attribute, symbol.level) / 10
                )
        # repeated symbols must re-match the bound value
        repeats = template.length - template.n_dims
        for __ in range(repeats):
            # a repeat position must equal an already-bound value
            any_symbol = template.position_symbols()[0]
            p_window /= self.profile.domain_size(
                any_symbol.attribute, any_symbol.level
            )
        p_sequence = min(1.0, windows * p_window)
        return profile.n_sequences * p_sequence

    # -- CB ------------------------------------------------------------------
    def cost_cb(self, spec: CuboidSpec) -> CostEstimate:
        profile = self.profile
        m = spec.template.length
        windows = max(1.0, profile.avg_length - m + 1)
        # one scan per sequence, weighted by per-sequence matching work
        work = profile.n_sequences * (1.0 + 0.01 * windows * m)
        return CostEstimate(
            "cb",
            work,
            f"full scan of {profile.n_sequences} sequences, "
            f"~{windows:.0f} windows x {m} positions each",
        )

    # -- II ------------------------------------------------------------------
    def cost_ii(
        self,
        spec: CuboidSpec,
        registry: Optional[IndexRegistry],
        group_key: Tuple[object, ...] = (),
        schema=None,
    ) -> CostEstimate:
        profile = self.profile
        template = spec.template
        matching = self.expected_matching_sequences(template)

        acquisition = 0.0
        detail = []
        prefix_len = 0
        if registry is not None and schema is not None:
            hit = registry.longest_prefix(group_key, template, schema)
            if hit is not None:
                prefix_len = hit[0]
        if prefix_len >= template.length:
            detail.append("exact index hit")
        else:
            if prefix_len < 2 and template.length >= 2:
                acquisition += self.BUILD_WEIGHT * profile.n_sequences
                detail.append(f"base build: {profile.n_sequences} scans")
                prefix_len = min(2, template.length)
            elif template.length == 1 and prefix_len == 0:
                acquisition += self.BUILD_WEIGHT * profile.n_sequences
                detail.append(f"L1 build: {profile.n_sequences} scans")
                prefix_len = 1
            else:
                detail.append(f"prefix L{prefix_len} reused")
            steps = template.length - prefix_len
            if steps > 0:
                # each step verifies candidates ~ expected matches of the
                # (longer) prefix — use the final template's expectation
                # as the (pessimistic) per-step verification size
                per_step = max(
                    matching,
                    self.expected_matching_sequences(
                        prefix_template(template, min(template.length, prefix_len + 1))
                    ),
                )
                acquisition += steps * (
                    self.JOIN_STEP_WEIGHT * per_step + per_step
                )
                detail.append(
                    f"{steps} join step(s), ~{per_step:.0f} candidates each"
                )

        fast_count = (
            not needs_contents(spec.aggregates)
            and spec.predicate is None
            and spec.restriction is not CellRestriction.ALL_MATCHED
        )
        counting = 0.0 if fast_count else matching
        detail.append(
            "count from list lengths"
            if fast_count
            else f"counting scan of ~{matching:.0f} listed sequences"
        )
        return CostEstimate("ii", acquisition + counting, "; ".join(detail))

    # -- decision -------------------------------------------------------------
    def choose(
        self,
        spec: CuboidSpec,
        registry: Optional[IndexRegistry] = None,
        group_key: Tuple[object, ...] = (),
        schema=None,
    ) -> Tuple[str, CostEstimate, CostEstimate]:
        """Pick the cheaper strategy; returns (choice, cb_cost, ii_cost)."""
        cb = self.cost_cb(spec)
        ii = self.cost_ii(spec, registry, group_key, schema)
        choice = "ii" if ii.scan_equivalents < cb.scan_equivalents else "cb"
        return choice, cb, ii
