"""Query optimisation: CB-vs-II cost model and offline index advisor."""

from repro.optimizer.advisor import (
    IndexAdvisor,
    Recommendation,
    advise_for_workload,
)
from repro.optimizer.cost_model import (
    CostEstimate,
    CostModel,
    DataProfile,
    profile_groups,
)

__all__ = [
    "CostEstimate",
    "CostModel",
    "DataProfile",
    "IndexAdvisor",
    "Recommendation",
    "advise_for_workload",
    "profile_groups",
]
