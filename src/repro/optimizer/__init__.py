"""Query optimisation: CB-vs-II cost model, index advisor, semantic cache."""

from repro.optimizer.advisor import (
    CuboidRecommendation,
    IndexAdvisor,
    Recommendation,
    advise_cuboid_materializations,
    advise_for_workload,
)
from repro.optimizer.cost_model import (
    CostEstimate,
    CostModel,
    DataProfile,
    profile_groups,
)
from repro.optimizer.semantic_cache import (
    DerivationPlan,
    DerivationPlanner,
    DerivationStep,
    execute_chain,
    usability,
)
from repro.optimizer.workload import Workload, mine_workload, replay_specs

__all__ = [
    "CostEstimate",
    "CostModel",
    "CuboidRecommendation",
    "DataProfile",
    "DerivationPlan",
    "DerivationPlanner",
    "DerivationStep",
    "IndexAdvisor",
    "Recommendation",
    "Workload",
    "advise_cuboid_materializations",
    "advise_for_workload",
    "execute_chain",
    "mine_workload",
    "profile_groups",
    "replay_specs",
    "usability",
]
