"""Semantic cuboid cache: answer a query by *deriving* from cached cuboids.

The repository is an exact-``cache_key`` store, so before this module any
spec that was not a verbatim repeat recomputed from scratch — even when a
cached cuboid semantically contains the answer (Vassiliadis's usability
test).  The :class:`DerivationPlanner` searches the repository for cuboids
from which the incoming query is reachable via the *forward images* of the
S-OLAP operations in :mod:`repro.core.operations`, bounded at
``max_depth`` hops, and an executor then transforms the cached cells.

Soundness rules (each verified in ``tests/unit/test_semantic_cache.py``
against cold recomputation, cell-for-cell):

* ``slice_global`` / ``dice_global`` — pure cell selection on a group-key
  component.  Group keys are a per-sequence-group property independent of
  pattern matching, so selection is sound for every restriction mode and
  every aggregate.
* ``roll_up_global`` — coarsens the grouping partition; matching inside
  each group is unchanged, so colliding cells merge with Gray et al.'s
  algebra (:data:`repro.shard.merge.MERGEABLE_FUNCS`).  Finalized ``AVG``
  cannot merge — only ``AVGPAIR`` transports soundly.  The rolled
  dimension must not be globally sliced in the source (a sliced source
  holds only one fine child of the coarse group).
* ``p_roll_up`` — sound when the rolled symbol occurs at exactly **one**
  template position, is unrestricted in the source, and the source is
  ``ALL_MATCHED``: then every qualifying occurrence is counted at both
  levels and cells merge under level translation.  Left-maximality modes
  keep one occurrence *per cell key*, so two fine cells folding into the
  same coarse cell can each carry an occurrence the coarse computation
  would dedup — merging over-counts.  Repeated symbols impose
  level-dependent equality constraints and are likewise rejected.
* ``slice_pattern`` — cell selection on a pattern-key component; sound
  only under ``ALL_MATCHED`` (left-maximality modes *select* occurrences,
  so filtering cached cells diverges from recomputation), and only from
  an unrestricted source symbol.
* APPEND / PREPEND / DE-TAIL / DE-HEAD / any drill-down — never
  cell-derivable; the planner classifies these as rejects so the
  ``solap_cuboid_semantic_rejects_total{op}`` metric shows *why* the
  cache could not help.

Iceberg queries (``min_support``) are never derived: support pruning does
not commute with merging.  Every chain is verified by applying the actual
forward operations to the cached spec and requiring ``cache_key``
equality with the query — the executor only ever runs a verified chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core import operations as ops
from repro.core.cuboid import SCuboid
from repro.core.spec import CellRestriction, CuboidSpec
from repro.events.schema import Schema, SchemaError
from repro.shard.merge import _merge_value

# Ops the planner can execute on cached cells.
SEMANTIC_OPS = (
    "p_roll_up",
    "roll_up_global",
    "slice_global",
    "dice_global",
    "slice_pattern",
)

# Reject labels: derivable ops that failed a soundness/cost gate, plus the
# navigation ops that are inherently non-derivable, plus catch-alls.
REJECT_LABELS = SEMANTIC_OPS + (
    "append",
    "prepend",
    "de_tail",
    "de_head",
    "p_drill_down",
    "drill_down_global",
    "unslice_pattern",
    "unslice_global",
    "incompatible",
    "cost",
    "error",
)

# Funcs that re-aggregate soundly when derived cells collide (Gray et al.).
_MERGE_SAFE_FUNCS = frozenset({"COUNT", "SUM", "MIN", "MAX", "AVGPAIR"})

# Ops that merge cells (as opposed to selecting a subset).
_MERGE_OPS = frozenset({"p_roll_up", "roll_up_global"})

# Cost model: seconds per source cell per derivation step (dict-transform
# work), and the floor assumed for any cold recomputation (at minimum a
# sequence scan).  Both deliberately coarse — the decision only has to be
# right at order-of-magnitude scale.
PER_CELL_STEP_SECONDS = 5e-6
MIN_RECOMPUTE_SECONDS = 2e-3


@dataclass(frozen=True)
class DerivationStep:
    """One verified forward op taking the chain closer to the query spec."""

    op: str
    argument: str  # symbol name (pattern ops) or attribute name (global ops)
    value: object = None  # slice value / dice value tuple, when applicable

    def describe(self) -> str:
        if self.value is None:
            return f"{self.op}({self.argument})"
        return f"{self.op}({self.argument}={self.value!r})"


@dataclass
class DerivationPlan:
    """A verified route from one cached cuboid to the query spec."""

    source_key: Hashable
    source_spec: CuboidSpec
    source_cells: int
    source_cost_seconds: float
    chain: Tuple[DerivationStep, ...]

    @property
    def derive_cost_seconds(self) -> float:
        return self.source_cells * PER_CELL_STEP_SECONDS * max(1, len(self.chain))

    @property
    def op_chain(self) -> str:
        return "+".join(step.op for step in self.chain)

    def describe(self) -> List[str]:
        return [step.describe() for step in self.chain]


@dataclass
class PlanResult:
    plan: Optional[DerivationPlan]
    rejects: Dict[str, int]


def _reject(rejects: Dict[str, int], label: str) -> None:
    if label not in REJECT_LABELS:
        label = "incompatible"
    rejects[label] = rejects.get(label, 0) + 1


def _apply_op(spec: CuboidSpec, step: DerivationStep, schema: Schema) -> CuboidSpec:
    if step.op == "p_roll_up":
        return ops.p_roll_up(spec, step.argument, schema)
    if step.op == "roll_up_global":
        return ops.roll_up_global(spec, step.argument, schema)
    if step.op == "slice_global":
        return ops.slice_global(spec, step.argument, step.value)
    if step.op == "dice_global":
        return ops.dice_global(spec, step.argument, step.value)
    if step.op == "slice_pattern":
        return ops.slice_pattern(spec, step.argument, step.value)
    raise ops.OperationError(f"not a derivable op: {step.op!r}")


def _merge_safe(spec: CuboidSpec) -> bool:
    return all(agg.func in _MERGE_SAFE_FUNCS for agg in spec.aggregates)


def _classify_gap(cached: CuboidSpec, query: CuboidSpec) -> str:
    """Name the (non-derivable) op separating *cached* from *query*.

    Only used for reject metrics — precision matters less than giving the
    operator a useful breakdown of why the cache could not answer.
    """
    cpos = cached.template.positions
    qpos = query.template.positions
    if cpos != qpos:
        if len(qpos) > len(cpos):
            if qpos[: len(cpos)] == cpos:
                return "append"
            if qpos[-len(cpos):] == cpos:
                return "prepend"
        elif len(qpos) < len(cpos):
            if cpos[: len(qpos)] == qpos:
                return "de_tail"
            if cpos[-len(qpos):] == qpos:
                return "de_head"
        return "incompatible"
    csyms = {s.name: s for s in cached.template.symbols}
    for qsym in query.template.symbols:
        csym = csyms.get(qsym.name)
        if csym is None or csym.attribute != qsym.attribute:
            return "incompatible"
        if csym.level != qsym.level:
            return "p_roll_up" if csym.level != qsym.level else "incompatible"
    for qsym in query.template.symbols:
        csym = csyms[qsym.name]
        if csym.fixed is not None and qsym.fixed is None:
            return "unslice_pattern"
    if len(cached.group_by) == len(query.group_by):
        for (ca, cl), (qa, ql) in zip(cached.group_by, query.group_by):
            if ca == qa and cl != ql:
                return "roll_up_global"
    cslices = dict(cached.global_slice)
    qslices = dict(query.global_slice)
    for idx in cslices:
        if idx not in qslices:
            return "unslice_global"
    return "incompatible"


def _classify_level_gap(cached: CuboidSpec, query: CuboidSpec, schema: Schema) -> Optional[str]:
    """Detect drill-downs (query finer than cache) for reject labelling."""
    csyms = {s.name: s for s in cached.template.symbols}
    for qsym in query.template.symbols:
        csym = csyms.get(qsym.name)
        if csym is None or csym.wildcard or qsym.wildcard:
            continue
        if csym.level != qsym.level:
            try:
                hierarchy = schema.hierarchy(qsym.attribute)
                if hierarchy.is_coarser(csym.level, qsym.level):
                    return "p_drill_down"
            except SchemaError:
                return "incompatible"
    if len(cached.group_by) == len(query.group_by):
        for (ca, cl), (qa, ql) in zip(cached.group_by, query.group_by):
            if ca != qa or cl == ql:
                continue
            try:
                hierarchy = schema.hierarchy(ca)
                if hierarchy.is_coarser(cl, ql):
                    return "drill_down_global"
            except SchemaError:
                return "incompatible"
    return None


def _candidate_steps(
    current: CuboidSpec, query: CuboidSpec, schema: Schema
) -> Optional[List[DerivationStep]]:
    """Propose forward steps that move *current* toward *query*.

    Returns ``None`` when the gap is provably unbridgeable by derivable
    ops (dead branch); an empty list means "no further moves".
    """
    steps: List[DerivationStep] = []

    # Pattern symbols: roll coarser and/or slice.
    csyms = {s.name: s for s in current.template.symbols}
    for qsym in query.template.symbols:
        csym = csyms.get(qsym.name)
        if csym is None or csym.wildcard != qsym.wildcard or csym.attribute != qsym.attribute:
            return None
        if qsym.wildcard:
            continue
        if csym.level != qsym.level:
            try:
                hierarchy = schema.hierarchy(csym.attribute)
            except SchemaError:
                return None
            if not hierarchy.is_coarser(qsym.level, csym.level):
                return None  # query is finer — drill-down, not derivable
            # Soundness: only unique, unrestricted symbols roll up, and
            # only under ALL_MATCHED — left-maximality dedups occurrences
            # *per cell key*, so two fine cells folding into one coarse
            # cell can both carry an occurrence the coarse computation
            # would keep only once.
            if current.template.positions.count(qsym.name) != 1 or csym.is_restricted:
                return None
            if current.restriction is not CellRestriction.ALL_MATCHED:
                return None
            steps.append(DerivationStep("p_roll_up", qsym.name))
        elif csym.fixed != qsym.fixed or csym.within != qsym.within:
            if csym.is_restricted or qsym.fixed is None or qsym.within is not None:
                return None
            # Selection semantics only survive under ALL_MATCHED.
            if current.restriction is not CellRestriction.ALL_MATCHED:
                return None
            steps.append(DerivationStep("slice_pattern", qsym.name, qsym.fixed))

    # Global dimensions: roll coarser.
    if len(current.group_by) != len(query.group_by):
        return None
    cslices = dict(current.global_slice)
    for idx, ((cattr, clvl), (qattr, qlvl)) in enumerate(
        zip(current.group_by, query.group_by)
    ):
        if cattr != qattr:
            return None
        if clvl != qlvl:
            try:
                hierarchy = schema.hierarchy(cattr)
            except SchemaError:
                return None
            if not hierarchy.is_coarser(qlvl, clvl):
                return None
            if idx in cslices:
                return None  # sliced source holds one fine child only
            steps.append(DerivationStep("roll_up_global", cattr))

    # Global slices: every cached slice must survive into the query
    # (possibly after a roll-up translates it); missing query slices are
    # added by selection.
    qslices = dict(query.global_slice)
    for idx in cslices:
        if idx not in qslices:
            return None  # would need unslice — not derivable
    for idx, value in qslices.items():
        if idx in cslices:
            continue
        cattr, clvl = current.group_by[idx]
        qlvl = query.group_by[idx][1]
        if clvl != qlvl:
            continue  # roll up this dim first; slice on a later hop
        if isinstance(value, tuple):
            steps.append(DerivationStep("dice_global", cattr, value))
        else:
            steps.append(DerivationStep("slice_global", cattr, value))

    return steps


def find_chain(
    cached: CuboidSpec,
    query: CuboidSpec,
    schema: Schema,
    max_depth: int = 2,
) -> Optional[Tuple[DerivationStep, ...]]:
    """BFS over verified forward ops from *cached* to *query*, ≤ *max_depth* hops.

    Every explored edge applies the real operation from
    :mod:`repro.core.operations`; the goal test is ``cache_key`` equality,
    so any returned chain is verified end-to-end by construction.
    """
    target = query.cache_key()
    if cached.cache_key() == target:
        return ()
    frontier: List[Tuple[CuboidSpec, Tuple[DerivationStep, ...]]] = [(cached, ())]
    for _ in range(max_depth):
        next_frontier: List[Tuple[CuboidSpec, Tuple[DerivationStep, ...]]] = []
        for spec, chain in frontier:
            candidates = _candidate_steps(spec, query, schema)
            if not candidates:
                continue
            for step in candidates:
                if step.op in _MERGE_OPS and not _merge_safe(spec):
                    continue
                try:
                    nxt = _apply_op(spec, step, schema)
                except ops.OperationError:
                    continue
                new_chain = chain + (step,)
                if nxt.cache_key() == target:
                    return new_chain
                next_frontier.append((nxt, new_chain))
        frontier = next_frontier
    return None


def usability(
    cached: CuboidSpec,
    query: CuboidSpec,
    schema: Schema,
    max_depth: int = 2,
) -> Optional[Tuple[DerivationStep, ...]]:
    """Vassiliadis-style usability test: can *cached* answer *query*?

    Returns the verified derivation chain (empty tuple for an exact
    match), or ``None`` when the cached cuboid is unusable.
    """
    # Hard gates: everything outside the derivable axes must be identical.
    if cached.pipeline_key()[:3] != query.pipeline_key()[:3]:
        return None  # where / cluster_by / sequence_by
    if cached.restriction != query.restriction:
        return None
    if cached.predicate != query.predicate:
        return None
    if cached.aggregates != query.aggregates:
        return None
    if cached.template.kind != query.template.kind:
        return None
    if cached.min_support is not None or query.min_support is not None:
        return None  # iceberg pruning does not commute with derivation
    if cached.template.positions != query.template.positions:
        return None
    return find_chain(cached, query, schema, max_depth=max_depth)


# --------------------------------------------------------------------------
# Chain execution on cells
# --------------------------------------------------------------------------


def _global_hierarchy(spec: CuboidSpec, index: int, schema: Schema):
    attr, level = spec.group_by[index]
    return schema.hierarchy(attr), level


def _merge_cells(
    spec: CuboidSpec,
    cells: Dict,
    rekey,
) -> Dict:
    """Re-key cells deterministically, merging collisions with the Gray algebra."""
    merged: Dict = {}
    for key, values in sorted(cells.items(), key=lambda kv: repr(kv[0])):
        new_key = rekey(key)
        slot = merged.get(new_key)
        if slot is None:
            merged[new_key] = dict(values)
            continue
        for agg in spec.aggregates:
            slot[agg.name] = _merge_value(agg.func, slot.get(agg.name), values.get(agg.name))
    return merged


def _apply_step_cells(
    spec_before: CuboidSpec,
    step: DerivationStep,
    cells: Dict,
    schema: Schema,
) -> Dict:
    if step.op == "slice_global":
        idx = ops._global_index(spec_before, step.argument)
        return {
            key: dict(values)
            for key, values in cells.items()
            if key[0][idx] == step.value
        }
    if step.op == "dice_global":
        idx = ops._global_index(spec_before, step.argument)
        allowed = set(step.value)
        return {
            key: dict(values)
            for key, values in cells.items()
            if key[0][idx] in allowed
        }
    if step.op == "slice_pattern":
        names = [s.name for s in spec_before.template.cell_symbols]
        dim = names.index(step.argument)
        return {
            key: dict(values)
            for key, values in cells.items()
            if key[1][dim] == step.value
        }
    if step.op == "roll_up_global":
        idx = ops._global_index(spec_before, step.argument)
        hierarchy, fine = _global_hierarchy(spec_before, idx, schema)
        coarse = hierarchy.coarser_level(fine)

        def rekey(key):
            group, pattern = key
            coarse_value = hierarchy.translate(group[idx], fine, coarse)
            return (group[:idx] + (coarse_value,) + group[idx + 1:], pattern)

        return _merge_cells(spec_before, cells, rekey)
    if step.op == "p_roll_up":
        symbol = spec_before.template.symbol(step.argument)
        names = [s.name for s in spec_before.template.cell_symbols]
        dim = names.index(step.argument)
        hierarchy = schema.hierarchy(symbol.attribute)
        coarse = hierarchy.coarser_level(symbol.level)
        fine = symbol.level

        def rekey(key):
            group, pattern = key
            coarse_value = hierarchy.translate(pattern[dim], fine, coarse)
            return (group, pattern[:dim] + (coarse_value,) + pattern[dim + 1:])

        return _merge_cells(spec_before, cells, rekey)
    raise ops.OperationError(f"not a derivable op: {step.op!r}")


def execute_chain(
    source: SCuboid,
    chain: Tuple[DerivationStep, ...],
    query_spec: CuboidSpec,
    schema: Schema,
) -> SCuboid:
    """Transform *source*'s cells along a verified *chain*.

    The final spec is re-verified against *query_spec* — a mismatch means
    the chain was not produced by :func:`usability` and is a bug.
    """
    spec = source.spec
    cells = source.cells
    for step in chain:
        cells = _apply_step_cells(spec, step, cells, schema)
        spec = _apply_op(spec, step, schema)
    if spec.cache_key() != query_spec.cache_key():
        raise ops.OperationError(
            "derivation chain does not reach the query spec; refusing to answer"
        )
    return SCuboid(spec=query_spec, cells=cells)


# --------------------------------------------------------------------------
# Planner
# --------------------------------------------------------------------------


class DerivationPlanner:
    """Scan the repository for cuboids that can derive an incoming query.

    ``plan`` returns the cheapest verified :class:`DerivationPlan` (or
    ``None``), plus a per-op reject tally for observability.  The cost
    model compares the derivation's cell-transform work against the
    source's recorded cold-compute cost (floored at
    :data:`MIN_RECOMPUTE_SECONDS` because *any* recomputation at least
    scans the event table).
    """

    def __init__(self, schema: Schema, max_depth: int = 2):
        self.schema = schema
        self.max_depth = max_depth

    def plan(self, query_spec: CuboidSpec, repository) -> PlanResult:
        rejects: Dict[str, int] = {}
        best: Optional[DerivationPlan] = None
        for key, cuboid, cost_seconds in repository.items():
            cached_spec = cuboid.spec
            chain = usability(cached_spec, query_spec, self.schema, self.max_depth)
            if chain is None:
                label = _classify_level_gap(cached_spec, query_spec, self.schema)
                if label is None:
                    label = _classify_gap(cached_spec, query_spec)
                _reject(rejects, label)
                continue
            if not chain:
                continue  # exact hit — the repository already handled it
            candidate = DerivationPlan(
                source_key=key,
                source_spec=cached_spec,
                source_cells=len(cuboid),
                source_cost_seconds=cost_seconds,
                chain=chain,
            )
            recompute = max(candidate.source_cost_seconds, MIN_RECOMPUTE_SECONDS)
            if candidate.derive_cost_seconds > recompute:
                _reject(rejects, "cost")
                continue
            if (
                best is None
                or candidate.derive_cost_seconds < best.derive_cost_seconds
                or (
                    candidate.derive_cost_seconds == best.derive_cost_seconds
                    and len(candidate.chain) < len(best.chain)
                )
            ):
                best = candidate
        return PlanResult(plan=best, rejects=rejects)
