"""The HTTP+JSON query serving front-end over one :class:`QueryService`.

``solap serve`` binds a :class:`SolapServer`: a stdlib
``ThreadingHTTPServer`` (one daemon handler thread per connection, same
plumbing as :class:`repro.obs.httpd.MetricsServer`, whose telemetry
routes are mounted unchanged) speaking the textual query language on the
way in and JSON on the way out.

Routes (see ``docs/serving.md`` for the full reference):

* ``POST /v1/sessions`` — open an exploration session (multi-tenant over
  the service's :class:`~repro.service.sessions.SessionManager`);
* ``GET/DELETE /v1/sessions/<id>`` — inspect / close one session;
* ``POST /v1/queries`` — submit an asynchronous query (HTTP 202 + job
  id); body carries QL text or a session id;
* ``GET /v1/queries/<id>`` — poll status; finished jobs paginate their
  S-cuboid cells via ``?offset=&limit=``;
* ``POST /v1/queries/<id>/cancel`` — cooperative cancellation;
* ``POST /v1/stream`` — progressive results over chunked transfer
  encoding: one JSON line per
  :class:`~repro.extensions.online_agg.OnlineEstimate`, terminated by
  the exact final frame (bit-identical to the blocking path);
* ``GET /metrics`` / ``/healthz`` / ``/varz`` / ``/debug/traces`` — the
  metrics exporter's routes, served from the same port.

Every request lands in the shared metrics registry
(``solap_http_requests_total{route,method,status}``,
``solap_http_request_seconds{route}``,
``solap_http_stream_frames_total``) and emits an ``http_request``
query-lifecycle log record, so the HTTP path is observable with the
same tools as the engine underneath it.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.errors import (
    QueryNotFoundError,
    QueryLanguageError,
    ServiceOverloadedError,
    SessionNotFoundError,
    SOLAPError,
    SpecError,
)
from repro.obs.httpd import CLIENT_DISCONNECT_ERRORS, MetricsServer
from repro.obs.spans import span
from repro.ql import format_spec, parse_query
from repro.serve import codecs
from repro.serve.jobs import _UNSET, JobRegistry
from repro.service.deadline import CancelToken
from repro.service.service import QueryService

#: request bodies larger than this are rejected outright (HTTP 413)
MAX_BODY_BYTES = 1 << 20

#: content type of streamed progressive results (one JSON doc per line)
NDJSON_CONTENT_TYPE = "application/x-ndjson"

#: telemetry paths delegated verbatim to the metrics exporter plumbing
_METRICS_PATHS = ("/metrics", "/healthz", "/varz", "/debug/traces")


def _route_label(path: str) -> str:
    """Collapse per-resource paths onto bounded metric label values."""
    if path.startswith("/v1/sessions"):
        return "/v1/sessions" if path == "/v1/sessions" else "/v1/sessions/*"
    if path.startswith("/v1/queries"):
        if path == "/v1/queries":
            return "/v1/queries"
        return (
            "/v1/queries/*/cancel"
            if path.endswith("/cancel")
            else "/v1/queries/*"
        )
    if path.startswith("/debug/traces"):
        return "/debug/traces"
    known = ("/v1/stream", "/v1/stats", "/metrics", "/healthz", "/varz")
    return path if path in known else "other"


class SolapServer:
    """Serves one :class:`QueryService` over HTTP on a daemon thread."""

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        job_history_limit: int = 256,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.jobs = JobRegistry(service, history_limit=job_history_limit)
        #: the telemetry routes, reused unstarted: its ``_handle`` serves
        #: /metrics, /healthz, /varz and /debug/traces on this port
        self._telemetry = MetricsServer(
            service.registry,
            health_callback=lambda: not service._closed,
            varz_callback=service.snapshot,
            recorder=service.recorder,
        )
        registry = service.registry
        self._requests = registry.counter(
            "solap_http_requests_total",
            "HTTP requests served by the query front-end",
            labels=("route", "method", "status"),
        )
        self._latency = registry.histogram(
            "solap_http_request_seconds",
            "HTTP request wall time (streams: until the last frame)",
            labels=("route",),
        )
        self._frames = registry.counter(
            "solap_http_stream_frames_total",
            "Progressive-result frames written to streaming clients",
        ).labels()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle (same shape as MetricsServer)
    # ------------------------------------------------------------------
    def start(self) -> "SolapServer":
        """Bind and serve on a daemon thread; returns self (idempotent)."""
        if self._httpd is not None:
            return self
        owner = self

        class Handler(BaseHTTPRequestHandler):
            # HTTP/1.1 enables chunked transfer encoding (streams) and
            # connection keep-alive for polling clients.
            protocol_version = "HTTP/1.1"

            def do_GET(self) -> None:  # noqa: N802 - stdlib naming
                owner._dispatch(self, "GET")

            def do_POST(self) -> None:  # noqa: N802
                owner._dispatch(self, "POST")

            def do_DELETE(self) -> None:  # noqa: N802
                owner._dispatch(self, "DELETE")

            def log_message(self, *args) -> None:
                pass  # the structured http_request log event covers this

        self._httpd = ThreadingHTTPServer((self.host, self.port), Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="solap-serve-httpd",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and release the port (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._httpd is not None

    def __enter__(self) -> "SolapServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "serving" if self.running else "stopped"
        return f"SolapServer({self.url}, {state}, {len(self.jobs)} jobs)"

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, request: BaseHTTPRequestHandler, method: str) -> None:
        """Route one request; all accounting and error mapping lives here."""
        parts = urlsplit(request.path)
        path = parts.path.rstrip("/") or "/"
        params = dict(parse_qsl(parts.query))
        route = _route_label(path)
        started = time.perf_counter()
        status = 500
        try:
            with span("http.request", route=route, method=method):
                status = self._route(request, method, path, params)
        except CLIENT_DISCONNECT_ERRORS:
            # Satellite contract: a client hanging up mid-write must
            # never crash the handler thread (nor be answered — there is
            # no socket left).
            status = 0
        except ValueError as error:
            status = self._send_error(request, 400, str(error))
        except QueryLanguageError as error:
            status = self._send_error(request, 400, str(error))
        except SpecError as error:
            status = self._send_error(request, 400, str(error))
        except (SessionNotFoundError, QueryNotFoundError) as error:
            status = self._send_error(request, 404, str(error))
        except ServiceOverloadedError as error:
            status = self._send_error(request, 429, str(error))
        except SOLAPError as error:
            status = self._send_error(request, 400, str(error))
        except Exception as error:  # noqa: BLE001 - keep the server alive
            status = self._send_error(
                request, 500, f"{type(error).__name__}: {error}"
            )
        finally:
            elapsed = time.perf_counter() - started
            self._requests.labels(route, method, str(status)).inc()
            self._latency.labels(route).observe(elapsed)
            self.service.log.event(
                "http_request",
                method=method,
                route=route,
                path=path,
                status=status,
                duration_ms=round(elapsed * 1000.0, 3),
            )

    def _route(
        self,
        request: BaseHTTPRequestHandler,
        method: str,
        path: str,
        params: dict,
    ) -> int:
        """Returns the response status (raises for mapped error classes)."""
        if path in _METRICS_PATHS or path.startswith("/debug/traces/"):
            if method != "GET":
                return self._send_error(
                    request, 405, f"{method} not allowed on {path}"
                )
            # MetricsServer._handle answers on the request directly; the
            # status code it chose is not observable from here, so the
            # label records the route as answered.
            self._telemetry._handle(request)
            return 200
        if path == "/v1/stats":
            if method != "GET":
                return self._send_error(request, 405, "use GET /v1/stats")
            return self._send_json(request, 200, self.service.snapshot())
        if path == "/v1/sessions" and method == "POST":
            return self._open_session(request)
        if path.startswith("/v1/sessions/"):
            session_id = path[len("/v1/sessions/"):]
            if method == "DELETE":
                return self._close_session(request, session_id)
            if method == "GET":
                return self._describe_session(request, session_id)
            return self._send_error(
                request, 405, "use GET or DELETE on /v1/sessions/<id>"
            )
        if path == "/v1/queries" and method == "POST":
            return self._submit_query(request)
        if path.startswith("/v1/queries/"):
            rest = path[len("/v1/queries/"):]
            if rest.endswith("/cancel") and method == "POST":
                return self._cancel_query(request, rest[: -len("/cancel")])
            if method == "GET" and "/" not in rest:
                return self._poll_query(request, rest, params)
            return self._send_error(
                request,
                405,
                "use GET /v1/queries/<id> or POST /v1/queries/<id>/cancel",
            )
        if path == "/v1/stream" and method == "POST":
            return self._stream_query(request)
        return self._send_error(
            request,
            404,
            f"unknown path {path!r}",
            paths=[
                "/v1/sessions",
                "/v1/sessions/<id>",
                "/v1/queries",
                "/v1/queries/<id>",
                "/v1/queries/<id>/cancel",
                "/v1/stream",
                "/v1/stats",
                "/metrics",
                "/healthz",
                "/varz",
                "/debug/traces",
            ],
        )

    # ------------------------------------------------------------------
    # Session routes
    # ------------------------------------------------------------------
    def _open_session(self, request: BaseHTTPRequestHandler) -> int:
        doc = self._read_json(request)
        ql = doc.get("ql")
        if not isinstance(ql, str) or not ql.strip():
            raise ValueError("body must carry a non-empty 'ql' query string")
        strategy = doc.get("strategy", "auto")
        if strategy not in ("auto", "cb", "ii", "CB", "II"):
            raise ValueError(
                f"bad strategy {strategy!r}: expected auto, cb or ii"
            )
        spec = parse_query(ql, self.service.engine.db.schema)
        session_id = self.service.open_session(spec, strategy.lower())
        return self._send_json(
            request,
            201,
            {"session_id": session_id, "ql": format_spec(spec)},
        )

    def _describe_session(
        self, request: BaseHTTPRequestHandler, session_id: str
    ) -> int:
        entry = self.service.sessions.get(session_id)
        return self._send_json(
            request,
            200,
            {
                "session_id": session_id,
                "ql": format_spec(entry.spec),
                "strategy": entry.strategy,
                "steps_executed": entry.steps_executed,
                "has_result": entry.cuboid is not None,
                "result_cells": (
                    len(entry.cuboid) if entry.cuboid is not None else 0
                ),
            },
        )

    def _close_session(
        self, request: BaseHTTPRequestHandler, session_id: str
    ) -> int:
        closed = self.service.close_session(session_id)
        if not closed:
            raise SessionNotFoundError(f"no session {session_id!r}")
        return self._send_json(
            request, 200, {"session_id": session_id, "closed": True}
        )

    # ------------------------------------------------------------------
    # Asynchronous query routes
    # ------------------------------------------------------------------
    def _resolve_spec(self, doc: dict) -> Tuple[object, Optional[str], str]:
        """(spec, session_id, strategy) from a submit/stream body."""
        ql = doc.get("ql")
        session_id = doc.get("session_id")
        if (ql is None) == (session_id is None):
            raise ValueError(
                "body must carry exactly one of 'ql' or 'session_id'"
            )
        if session_id is not None:
            entry = self.service.sessions.get(session_id)
            return entry.spec, session_id, entry.strategy
        if not isinstance(ql, str) or not ql.strip():
            raise ValueError("'ql' must be a non-empty query string")
        strategy = doc.get("strategy", "auto")
        if strategy not in ("auto", "cb", "ii", "CB", "II"):
            raise ValueError(
                f"bad strategy {strategy!r}: expected auto, cb or ii"
            )
        spec = parse_query(ql, self.service.engine.db.schema)
        return spec, None, strategy.lower()

    def _submit_query(self, request: BaseHTTPRequestHandler) -> int:
        doc = self._read_json(request)
        spec, session_id, strategy = self._resolve_spec(doc)
        timeout = codecs.parse_timeout(doc)
        job = self.jobs.submit(
            spec,
            strategy,
            timeout=_UNSET if timeout == "absent" else timeout,
            session_id=session_id,
        )
        return self._send_json(request, 202, job.describe())

    def _poll_query(
        self, request: BaseHTTPRequestHandler, job_id: str, params: dict
    ) -> int:
        job = self.jobs.get(job_id)
        doc = job.describe()
        if job.status == "done" and job.result is not None:
            offset, limit = codecs.parse_page_params(params)
            doc.update(codecs.page_cells(job.result, offset, limit))
            doc["stats"] = codecs.encode_stats(job.stats)
        return self._send_json(request, 200, doc)

    def _cancel_query(
        self, request: BaseHTTPRequestHandler, job_id: str
    ) -> int:
        job = self.jobs.cancel(job_id)
        return self._send_json(request, 200, job.describe())

    # ------------------------------------------------------------------
    # Streaming route
    # ------------------------------------------------------------------
    def _stream_query(self, request: BaseHTTPRequestHandler) -> int:
        doc = self._read_json(request)
        spec, session_id, __ = self._resolve_spec(doc)
        chunk_size = codecs.parse_positive_int(doc, "chunk_size", 256)
        seed = doc.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ValueError(f"bad seed {seed!r}: must be an integer")
        timeout = codecs.parse_timeout(doc)
        token = CancelToken()
        kwargs = {"chunk_size": chunk_size, "seed": seed, "cancel": token}
        if timeout != "absent":
            kwargs["timeout"] = timeout
        if session_id is not None:
            stream = self.service.session_stream(session_id, **kwargs)
        else:
            stream = self.service.stream_query(spec, **kwargs)
        # Fetch the first frame *before* committing to a 200: admission
        # rejection, QL/spec errors and overload still map to clean JSON
        # error responses as long as nothing has been written.
        try:
            first = next(stream)
        except StopIteration:
            first = None
        try:
            request.send_response(200)
            request.send_header("Content-Type", NDJSON_CONTENT_TYPE)
            request.send_header("Transfer-Encoding", "chunked")
            request.send_header("Cache-Control", "no-cache")
            request.end_headers()
            if first is not None:
                self._write_chunk(request, codecs.encode_estimate(first))
                for estimate in stream:
                    self._write_chunk(request, codecs.encode_estimate(estimate))
            request.wfile.write(b"0\r\n\r\n")
            request.wfile.flush()
        except CLIENT_DISCONNECT_ERRORS:
            # Client hung up mid-stream: trip the token and close the
            # generator so the service stops the scan and releases its
            # execution slot within one chunk of work.
            token.cancel()
            return 0
        finally:
            stream.close()
        return 200

    def _write_chunk(self, request: BaseHTTPRequestHandler, doc: dict) -> None:
        """One chunked-encoding frame: a single JSON line."""
        line = codecs.dumps(doc) + b"\n"
        request.wfile.write(f"{len(line):x}\r\n".encode("ascii"))
        request.wfile.write(line)
        request.wfile.write(b"\r\n")
        request.wfile.flush()
        self._frames.inc()

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _read_json(self, request: BaseHTTPRequestHandler) -> dict:
        """The request body as a JSON object (ValueError → HTTP 400)."""
        raw_length = request.headers.get("Content-Length", "0")
        try:
            length = int(raw_length)
        except ValueError:
            raise ValueError(f"bad Content-Length {raw_length!r}")
        if length < 0:
            raise ValueError(f"bad Content-Length {length!r}")
        if length > MAX_BODY_BYTES:
            # The body is rejected unread: close the connection after
            # the 400, or keep-alive would parse the unsent body bytes
            # as the next request line.
            request.close_connection = True
            raise ValueError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        body = request.rfile.read(length) if length else b""
        if not body:
            raise ValueError("request body must be a JSON object")
        try:
            doc = json.loads(body)
        except json.JSONDecodeError as error:
            raise ValueError(f"bad JSON body: {error}")
        if not isinstance(doc, dict):
            raise ValueError("request body must be a JSON object")
        return doc

    def _send_json(
        self, request: BaseHTTPRequestHandler, status: int, doc: object
    ) -> int:
        body = codecs.dumps(doc)
        try:
            request.send_response(status)
            request.send_header("Content-Type", "application/json")
            request.send_header("Content-Length", str(len(body)))
            request.end_headers()
            request.wfile.write(body)
        except CLIENT_DISCONNECT_ERRORS:
            # Same contract as MetricsServer._respond: nothing left to
            # answer on, so the response is dropped, not retried.
            return 0
        return status

    def _send_error(
        self,
        request: BaseHTTPRequestHandler,
        status: int,
        message: str,
        **fields,
    ) -> int:
        return self._send_json(
            request, status, codecs.error_doc(message, **fields)
        )
