"""Asynchronous query jobs for the HTTP serving layer.

HTTP is request/response; S-OLAP queries can run for seconds.  The
:class:`JobRegistry` bridges the two: ``POST /v1/queries`` submits a job
and returns immediately with a job id, the client polls
``GET /v1/queries/<id>`` until it flips to a terminal state, and
``POST /v1/queries/<id>/cancel`` trips the job's
:class:`~repro.service.deadline.CancelToken` — the running query unwinds
cooperatively at its next checkpoint, exactly like a deadline.

One daemon thread per job is deliberate: the service's own admission
control (``max_concurrent`` slots + bounded queue + immediate overload
rejection) is the concurrency limiter, so the registry never builds a
second queueing layer that could disagree with it.  An overloaded
service rejects the job synchronously at submit time (HTTP 429), before
a thread is ever spawned.

Finished jobs are kept in a bounded FIFO history so clients can fetch
results after completion; once pruned, polls raise
:class:`~repro.errors.QueryNotFoundError` (HTTP 404).
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, Optional, Tuple

from repro.core.cuboid import SCuboid
from repro.core.spec import CuboidSpec
from repro.core.stats import QueryStats
from repro.errors import (
    QueryCancelledError,
    QueryNotFoundError,
    QueryTimeoutError,
    ServiceOverloadedError,
    SOLAPError,
)
from repro.service.deadline import CancelToken

#: job states; ``done``/``error``/``cancelled``/``timeout`` are terminal
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
ERROR = "error"
CANCELLED = "cancelled"
TIMEOUT = "timeout"

TERMINAL_STATES = frozenset({DONE, ERROR, CANCELLED, TIMEOUT})

#: sentinel mirroring the service's "no timeout argument given"
_UNSET = object()


class QueryJob:
    """One asynchronous query: spec, cancel token, state, result."""

    __slots__ = (
        "job_id",
        "spec",
        "strategy",
        "session_id",
        "token",
        "status",
        "error",
        "error_type",
        "result",
        "stats",
        "submitted_at",
        "wall_seconds",
        "_done",
    )

    def __init__(
        self,
        job_id: str,
        spec: CuboidSpec,
        strategy: str,
        session_id: Optional[str],
    ):
        self.job_id = job_id
        self.spec = spec
        self.strategy = strategy
        self.session_id = session_id
        self.token = CancelToken()
        self.status = QUEUED
        self.error: Optional[str] = None
        self.error_type: Optional[str] = None
        self.result: Optional[SCuboid] = None
        self.stats: Optional[QueryStats] = None
        self.submitted_at = time.monotonic()
        self.wall_seconds: Optional[float] = None
        self._done = threading.Event()

    @property
    def finished(self) -> bool:
        return self.status in TERMINAL_STATES

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state (test helper)."""
        return self._done.wait(timeout)

    def describe(self) -> dict:
        """The poll document (result cells are paginated separately)."""
        doc = {
            "query_id": self.job_id,
            "status": self.status,
            "session_id": self.session_id,
            "strategy": self.strategy,
            "cancelled": self.token.cancelled,
        }
        if self.wall_seconds is not None:
            doc["wall_ms"] = round(self.wall_seconds * 1000.0, 3)
        if self.error is not None:
            doc["error"] = self.error
            doc["error_type"] = self.error_type
        if self.result is not None:
            doc["cell_count"] = len(self.result)
        return doc


class JobRegistry:
    """Submit/poll/cancel bookkeeping over one :class:`QueryService`."""

    def __init__(self, service, history_limit: int = 256):
        if history_limit < 1:
            raise ValueError("history_limit must be >= 1")
        self.service = service
        self.history_limit = history_limit
        self._lock = threading.Lock()
        self._jobs: Dict[str, QueryJob] = {}
        self._finished_order: list = []
        self._ids = itertools.count(1)

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    # ------------------------------------------------------------------
    def submit(
        self,
        spec: CuboidSpec,
        strategy: str = "auto",
        timeout: object = _UNSET,
        session_id: Optional[str] = None,
    ) -> QueryJob:
        """Register a job and start its worker thread.

        Overload sheds at the door: when the service's admission window
        is already full this raises
        :class:`~repro.errors.ServiceOverloadedError` synchronously (the
        app maps it to HTTP 429) instead of parking a job that the
        service would reject anyway.  The check is best-effort — a race
        that slips past it is still caught by the service inside the
        worker and recorded as the job's error.  Submit never blocks on
        an execution slot.
        """
        if self.service.inflight >= self.service.config.admission_limit:
            raise ServiceOverloadedError(
                inflight=self.service.inflight,
                limit=self.service.config.admission_limit,
            )
        with self._lock:
            # "job" prefix keeps HTTP job ids distinct from the service's
            # internal per-request "q..." ids in shared log streams.
            job_id = f"job{next(self._ids):06d}"
            job = QueryJob(job_id, spec, strategy, session_id)
            self._jobs[job_id] = job
        thread = threading.Thread(
            target=self._run,
            args=(job, timeout),
            name=f"solap-job-{job_id}",
            daemon=True,
        )
        thread.start()
        return job

    def _run(self, job: QueryJob, timeout: object) -> None:
        started = time.monotonic()
        job.status = RUNNING
        try:
            kwargs = {} if timeout is _UNSET else {"timeout": timeout}
            cuboid, stats = self.service.execute(
                job.spec,
                job.strategy,
                session_id=job.session_id,
                cancel=job.token,
                **kwargs,
            )
            if job.session_id is not None:
                # Mirror session_run: later session operations continue
                # from this result.
                self.service.sessions.record(
                    job.session_id, job.spec, cuboid, stats
                )
            job.result = cuboid
            job.stats = stats
            job.status = DONE
        except QueryCancelledError as error:
            job.status = CANCELLED
            job.error = str(error)
            job.error_type = type(error).__name__
        except QueryTimeoutError as error:
            job.status = TIMEOUT
            job.error = str(error)
            job.error_type = type(error).__name__
        except SOLAPError as error:
            job.status = ERROR
            job.error = str(error)
            job.error_type = type(error).__name__
        except Exception as error:  # noqa: BLE001 - job threads must not die
            job.status = ERROR
            job.error = f"{type(error).__name__}: {error}"
            job.error_type = type(error).__name__
        finally:
            job.wall_seconds = time.monotonic() - started
            self._finish(job)
            job._done.set()

    def _finish(self, job: QueryJob) -> None:
        """Record completion and prune history beyond the limit."""
        with self._lock:
            self._finished_order.append(job.job_id)
            while len(self._finished_order) > self.history_limit:
                stale = self._finished_order.pop(0)
                self._jobs.pop(stale, None)

    # ------------------------------------------------------------------
    def get(self, job_id: str) -> QueryJob:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise QueryNotFoundError(
                f"no query {job_id!r} (unknown id, or pruned from the "
                f"finished-job history of {self.history_limit})"
            )
        return job

    def result(self, job_id: str) -> Tuple[SCuboid, QueryStats]:
        """The finished job's cuboid and stats (raises if not done)."""
        job = self.get(job_id)
        if job.status != DONE or job.result is None:
            raise QueryNotFoundError(
                f"query {job_id!r} has no result (status {job.status!r})"
            )
        return job.result, job.stats

    def cancel(self, job_id: str) -> QueryJob:
        """Trip the job's cancel token (idempotent); returns the job."""
        job = self.get(job_id)
        job.token.cancel()
        return job
