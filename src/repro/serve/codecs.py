"""JSON wire encodings for the HTTP serving layer.

The serving layer speaks the textual query language on the way in
(:func:`repro.ql.parse_query`) and JSON on the way out.  This module owns
every document shape crossing the wire so the handlers in
:mod:`repro.serve.app` stay route logic only:

* **cells** — one S-cuboid cell becomes
  ``{"group": [...], "cell": [...], "values": {agg: value}}``; cells are
  emitted in the cuboid's canonical iteration order (sorted by ``repr``),
  which is what makes offset-based pagination cursors stable;
* **pages** — an offset/limit window over the canonical cell order, with
  a ``next_offset`` cursor (``null`` on the last page);
* **estimates** — one :class:`~repro.extensions.online_agg.OnlineEstimate`
  per streamed frame: processed fraction, the exact partial cells, and a
  linear scale-up ``estimated`` map for COUNT-family aggregates on
  non-final frames (the paper's "approximate numbers like 200,000 ...
  informative enough" use case);
* **stats** — the subset of :class:`~repro.core.stats.QueryStats` a
  remote client can act on.

Values that are not JSON-native (dates, tuples in dimension keys) are
serialised through ``repr`` — consistent everywhere, so equality of two
encoded documents implies equality of the underlying cells.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.core.cuboid import SCuboid
from repro.extensions.online_agg import OnlineEstimate

#: pagination guardrail: one page can never exceed this many cells
MAX_PAGE_LIMIT = 10_000

#: default page size when the client sends no ``limit``
DEFAULT_PAGE_LIMIT = 100


def dumps(doc: object) -> bytes:
    """Canonical JSON bytes for any wire document (repr fallback)."""
    return json.dumps(doc, default=repr).encode("utf-8")


def _json_value(value: object) -> object:
    """A JSON-native rendering of one cell/key value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def encode_cell(
    group_key: Tuple[object, ...],
    cell_key: Tuple[object, ...],
    values: Dict[str, object],
) -> dict:
    """One cuboid cell as a wire document."""
    return {
        "group": [_json_value(v) for v in group_key],
        "cell": [_json_value(v) for v in cell_key],
        "values": {name: _json_value(v) for name, v in values.items()},
    }


def encode_cells(cuboid: SCuboid) -> List[dict]:
    """Every cell, in the cuboid's canonical (repr-sorted) order."""
    return [
        encode_cell(group_key, cell_key, values)
        for group_key, cell_key, values in cuboid
    ]


def encode_header(cuboid: SCuboid) -> List[str]:
    """Column names aligned with each cell's group + cell + values."""
    return list(cuboid.header())


def page_cells(
    cuboid: SCuboid, offset: int = 0, limit: int = DEFAULT_PAGE_LIMIT
) -> dict:
    """One pagination window over the cuboid's canonical cell order.

    *offset* must be ``>= 0`` and *limit* in ``[1, MAX_PAGE_LIMIT]``;
    anything else raises :class:`ValueError` (the app maps it to a 400,
    matching the ``/debug/traces`` limit contract).  The returned
    ``page.next_offset`` is the cursor for the following page, or
    ``None`` when this page exhausts the cuboid.
    """
    if offset < 0:
        raise ValueError(f"bad offset {offset!r}: must be >= 0")
    if limit < 1 or limit > MAX_PAGE_LIMIT:
        raise ValueError(
            f"bad limit {limit!r}: must be in [1, {MAX_PAGE_LIMIT}]"
        )
    cells = encode_cells(cuboid)
    window = cells[offset : offset + limit]
    next_offset = offset + limit if offset + limit < len(cells) else None
    return {
        "header": encode_header(cuboid),
        "cells": window,
        "page": {
            "offset": offset,
            "limit": limit,
            "total_cells": len(cells),
            "next_offset": next_offset,
        },
    }


def encode_stats(stats) -> dict:
    """The client-actionable slice of one query's stats."""
    return {
        "strategy": getattr(stats, "strategy", ""),
        "sequences_scanned": getattr(stats, "sequences_scanned", 0),
        "engine_ms": round(
            getattr(stats, "runtime_seconds", 0.0) * 1000.0, 3
        ),
        "cuboid_cache_hit": getattr(stats, "cuboid_cache_hit", False),
        "sequence_cache_hit": getattr(stats, "sequence_cache_hit", False),
        "indices_built": getattr(stats, "indices_built", 0),
    }


def encode_estimate(estimate: OnlineEstimate) -> dict:
    """One streamed frame: the exact partial cuboid plus extrapolations.

    Non-final frames carry an ``estimated`` map per cell, scaling every
    COUNT-family aggregate linearly by the processed fraction.  The final
    frame omits it (the values *are* the answer) and is the exact cuboid,
    bit-identical to the blocking execution path.
    """
    cells = []
    fraction = estimate.fraction
    for group_key, cell_key, values in estimate.partial:
        cell = encode_cell(group_key, cell_key, values)
        if not estimate.is_final and fraction > 0:
            scaled = {
                name: round(float(value) / fraction, 3)
                for name, value in values.items()
                if name.startswith("COUNT") and value is not None
            }
            if scaled:
                cell["estimated"] = scaled
        cells.append(cell)
    return {
        "processed": estimate.processed,
        "total": estimate.total,
        "fraction": round(fraction, 6),
        "is_final": estimate.is_final,
        "cell_count": len(estimate.partial),
        "cells": cells,
    }


def error_doc(message: str, **fields) -> dict:
    """The uniform error payload (``{"error": ...}``)."""
    doc = {"error": message}
    doc.update(fields)
    return doc


def parse_page_params(params: Dict[str, str]) -> Tuple[int, int]:
    """``offset``/``limit`` query parameters → validated ints.

    Raises :class:`ValueError` with a client-displayable message for
    non-numeric, negative-offset or out-of-range-limit values.
    """
    raw_offset = params.get("offset", "0")
    raw_limit = params.get("limit", str(DEFAULT_PAGE_LIMIT))
    try:
        offset = int(raw_offset)
    except ValueError:
        raise ValueError(f"bad offset {raw_offset!r}: not an integer")
    try:
        limit = int(raw_limit)
    except ValueError:
        raise ValueError(f"bad limit {raw_limit!r}: not an integer")
    if offset < 0:
        raise ValueError(f"bad offset {offset!r}: must be >= 0")
    if limit < 1 or limit > MAX_PAGE_LIMIT:
        raise ValueError(
            f"bad limit {limit!r}: must be in [1, {MAX_PAGE_LIMIT}]"
        )
    return offset, limit


def parse_positive_int(
    doc: dict, key: str, default: int, minimum: int = 1
) -> int:
    """A bounded integer field from a request body (ValueError on abuse)."""
    value = doc.get(key, default)
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(f"bad {key} {value!r}: must be an integer")
    if value < minimum:
        raise ValueError(f"bad {key} {value!r}: must be >= {minimum}")
    return value


def parse_timeout(doc: dict) -> Optional[object]:
    """The ``timeout`` body field: absent → sentinel, null → unbounded.

    Returns the parsed value or raises ValueError; callers translate the
    ``"absent"`` marker into the service's own unset sentinel.
    """
    if "timeout" not in doc:
        return "absent"
    value = doc["timeout"]
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"bad timeout {value!r}: must be a number or null")
    if value <= 0:
        raise ValueError(f"bad timeout {value!r}: must be > 0 seconds")
    return float(value)
