"""HTTP+JSON query serving layer (``solap serve``).

Public surface:

* :class:`~repro.serve.app.SolapServer` — the stdlib HTTP front-end
  over one :class:`~repro.service.service.QueryService`;
* :class:`~repro.serve.jobs.JobRegistry` /
  :class:`~repro.serve.jobs.QueryJob` — asynchronous submit/poll/cancel
  bookkeeping;
* :mod:`~repro.serve.codecs` — the JSON wire document shapes.
"""

from repro.serve.app import SolapServer
from repro.serve.jobs import JobRegistry, QueryJob

__all__ = ["SolapServer", "JobRegistry", "QueryJob"]
