"""A columnar in-memory event database.

Events are stored column-wise (one Python list per attribute), which keeps
per-event overhead low and makes level-mapped column extraction — the hot
path of sequence formation and pattern matching — a tight loop over a single
list.  Rows are exposed through :class:`EventView`, a lightweight mapping
over one row index, so predicate evaluation does not materialise dicts.

This plays the role of the paper's *event database* (Figure 1 / Figure 6):
the substrate the sequence query engine reads from.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.events.expression import EventContext, Expr
from repro.events.schema import Schema


class EventView(Mapping[str, object]):
    """A read-only mapping view of one row of an :class:`EventDatabase`."""

    __slots__ = ("_db", "_row")

    def __init__(self, db: "EventDatabase", row: int):
        self._db = db
        self._row = row

    @property
    def row(self) -> int:
        """The row index of this event within its database."""
        return self._row

    def __getitem__(self, attribute: str) -> object:
        return self._db.column(attribute)[self._row]

    def __iter__(self) -> Iterator[str]:
        return iter(self._db.schema.attributes)

    def __len__(self) -> int:
        return len(self._db.schema.attributes)

    def to_dict(self) -> Dict[str, object]:
        """Materialise the row as a plain dict (for display / debugging)."""
        return {attr: self[attr] for attr in self._db.schema.attributes}

    def __repr__(self) -> str:
        return f"EventView({self.to_dict()!r})"


class EventDatabase:
    """Column-oriented store of events conforming to a :class:`Schema`."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self._columns: Dict[str, List[object]] = {
            attr: [] for attr in schema.attributes
        }
        self._length = 0

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def append(self, event: Mapping[str, object]) -> int:
        """Append one event; returns its row index.

        Missing measure attributes default to ``None``; missing dimension
        attributes are an error, because every downstream stage assumes
        dimensions are present.
        """
        for attr in self.schema.dimensions:
            if attr not in event:
                raise SchemaError(f"event missing dimension {attr!r}: {event!r}")
        for attr in self.schema.attributes:
            self._columns[attr].append(event.get(attr))
        self._length += 1
        return self._length - 1

    def extend(self, events: Iterable[Mapping[str, object]]) -> None:
        """Append many events."""
        for event in events:
            self.append(event)

    @classmethod
    def from_records(
        cls, schema: Schema, records: Iterable[Mapping[str, object]]
    ) -> "EventDatabase":
        """Build a database from an iterable of event mappings."""
        db = cls(schema)
        db.extend(records)
        return db

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def column(self, attribute: str) -> List[object]:
        """The raw base-level column for *attribute*."""
        try:
            return self._columns[attribute]
        except KeyError:
            raise SchemaError(f"unknown attribute {attribute!r}") from None

    def event(self, row: int) -> EventView:
        """A mapping view of row *row*."""
        if not 0 <= row < self._length:
            raise IndexError(f"row {row} out of range (len={self._length})")
        return EventView(self, row)

    def events(self, rows: Sequence[int]) -> List[EventView]:
        """Mapping views for many rows."""
        return [self.event(row) for row in rows]

    def __iter__(self) -> Iterator[EventView]:
        for row in range(self._length):
            yield EventView(self, row)

    def mapped_column(self, attribute: str, level: str) -> List[object]:
        """The column of *attribute* mapped up to hierarchy *level*.

        Base-level requests return the stored column itself (no copy);
        callers must not mutate it.
        """
        hierarchy = self.schema.hierarchy(attribute)
        column = self.column(attribute)
        if level == hierarchy.base_level:
            return column
        return [hierarchy.map_value(value, level) for value in column]

    def mapped_value(self, row: int, attribute: str, level: str) -> object:
        """One value of *attribute* at *row*, mapped up to *level*."""
        return self.schema.map_value(attribute, self.column(attribute)[row], level)

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def scan(self, predicate: Optional[Expr] = None) -> Iterator[int]:
        """Yield row indices whose events satisfy *predicate* (all if None)."""
        if predicate is None:
            yield from range(self._length)
            return
        for row in range(self._length):
            if predicate.evaluate(EventContext(EventView(self, row))):
                yield row

    def select(self, predicate: Optional[Expr] = None) -> List[int]:
        """Row indices whose events satisfy *predicate* (all if None)."""
        return list(self.scan(predicate))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def distinct(self, attribute: str, level: Optional[str] = None) -> Tuple[object, ...]:
        """Sorted distinct values of *attribute*, optionally at *level*."""
        if level is None or not self.schema.is_dimension(attribute):
            values = set(self.column(attribute))
        else:
            values = set(self.mapped_column(attribute, level))
        return tuple(sorted(values, key=repr))

    def size_bytes(self) -> int:
        """Rough in-memory footprint: 8 bytes per cell plus list overhead."""
        n_cells = self._length * len(self.schema.attributes)
        return 56 * len(self.schema.attributes) + 8 * n_cells

    def encoding_store(self):
        """The lazily-created dictionary-encoding store for this database.

        One store per database keeps codes consistent across every pipeline
        and matcher built over it.  Created on first use so databases that
        never touch the encoded path pay nothing; stored as a plain
        attribute so it pickles with the database to process-backend
        workers (its locks are dropped and rebuilt on load).
        """
        store = getattr(self, "_encoding", None)
        if store is None:
            from repro.events.encoding import EncodedSequenceStore

            store = EncodedSequenceStore()
            self._encoding = store
        return store

    def __repr__(self) -> str:
        return (
            f"EventDatabase({self._length} events, "
            f"attributes={list(self.schema.attributes)})"
        )
