"""Event schema: dimensions, measures, and concept hierarchies.

An event in an S-OLAP system is a flat record with *dimension* attributes
(used for selection, clustering, grouping and pattern matching) and *measure*
attributes (aggregated inside cuboid cells).  Each dimension may carry a
:class:`Hierarchy` — an ordered chain of abstraction levels from the base
(finest) level up to coarser ones, e.g. ``station -> district`` for the
``location`` dimension of the paper's transit example (Section 3.1).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.errors import SchemaError

#: A hierarchy level mapping: either an explicit ``{base_value: level_value}``
#: dictionary or a callable computing the level value from the base value.
LevelMapping = Union[Mapping[object, object], Callable[[object], object]]


class ComputedMapping:
    """A *named* callable level mapping that can be persisted.

    Plain lambdas cannot be serialised with a dataset; a computed mapping
    carries a registry name so :mod:`repro.io` can store the name and
    resolve the function again at load time.  Register with
    :func:`register_computed_mapping` (idempotent for identical bindings).
    """

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[[object], object]):
        self.name = name
        self.fn = fn

    def __call__(self, value: object) -> object:
        return self.fn(value)

    def __reduce__(self):
        # Pickle by registry name so spawned scan workers (which re-import
        # the defining module) resolve the same function instead of trying
        # to pickle an arbitrary callable such as a lambda.
        return (resolve_computed_mapping, (self.name,))

    def __repr__(self) -> str:
        return f"ComputedMapping({self.name!r})"


_COMPUTED_MAPPINGS: Dict[str, ComputedMapping] = {}


def register_computed_mapping(
    name: str, fn: Callable[[object], object]
) -> ComputedMapping:
    """Register (or fetch) a named computed mapping.

    Re-registering the same name with a different function raises: silent
    replacement would change the meaning of persisted datasets.
    """
    existing = _COMPUTED_MAPPINGS.get(name)
    if existing is not None:
        if existing.fn is not fn:
            raise SchemaError(
                f"computed mapping {name!r} already registered with a "
                "different function"
            )
        return existing
    mapping = ComputedMapping(name, fn)
    _COMPUTED_MAPPINGS[name] = mapping
    return mapping


def resolve_computed_mapping(name: str) -> ComputedMapping:
    """Look up a registered computed mapping by name."""
    try:
        return _COMPUTED_MAPPINGS[name]
    except KeyError:
        raise SchemaError(
            f"computed mapping {name!r} is not registered; import the "
            "module that defines it before loading this schema"
        ) from None


class Hierarchy:
    """An ordered chain of abstraction levels for one dimension attribute.

    ``levels[0]`` is the *base* level: values stored in the event database are
    at this level and map to themselves.  Every subsequent level is coarser
    and is defined by a mapping from base values to level values.

    Example::

        Hierarchy("location", levels=("station", "district"),
                  mappings={"district": {"Pentagon": "D10", "Wheaton": "D20"}})
    """

    def __init__(
        self,
        attribute: str,
        levels: Iterable[str],
        mappings: Optional[Mapping[str, LevelMapping]] = None,
    ):
        self.attribute = attribute
        self.levels: Tuple[str, ...] = tuple(levels)
        if not self.levels:
            raise SchemaError(f"hierarchy for {attribute!r} must have >= 1 level")
        if len(set(self.levels)) != len(self.levels):
            raise SchemaError(f"hierarchy for {attribute!r} has duplicate levels")
        self._mappings: Dict[str, LevelMapping] = dict(mappings or {})
        for level in self.levels[1:]:
            if level not in self._mappings:
                raise SchemaError(
                    f"hierarchy for {attribute!r}: level {level!r} lacks a mapping"
                )
        unknown = set(self._mappings) - set(self.levels[1:])
        if unknown:
            raise SchemaError(
                f"hierarchy for {attribute!r}: mappings for unknown levels {sorted(unknown)}"
            )

    @property
    def base_level(self) -> str:
        """Name of the finest level (the level values are stored at)."""
        return self.levels[0]

    @property
    def top_level(self) -> str:
        """Name of the coarsest level."""
        return self.levels[-1]

    def __contains__(self, level: str) -> bool:
        return level in self.levels

    def level_index(self, level: str) -> int:
        """Position of *level* in the chain (0 = base).  Raises on unknown."""
        try:
            return self.levels.index(level)
        except ValueError:
            raise SchemaError(
                f"unknown level {level!r} for attribute {self.attribute!r}; "
                f"known levels: {list(self.levels)}"
            ) from None

    def is_coarser(self, level_a: str, level_b: str) -> bool:
        """True if *level_a* is strictly coarser than *level_b*."""
        return self.level_index(level_a) > self.level_index(level_b)

    def coarser_level(self, level: str) -> Optional[str]:
        """The level one step up from *level*, or None at the top."""
        idx = self.level_index(level)
        if idx + 1 >= len(self.levels):
            return None
        return self.levels[idx + 1]

    def finer_level(self, level: str) -> Optional[str]:
        """The level one step down from *level*, or None at the base."""
        idx = self.level_index(level)
        if idx == 0:
            return None
        return self.levels[idx - 1]

    def map_value(self, base_value: object, level: str) -> object:
        """Map a *base-level* value up to *level*.

        Base-level requests return the value unchanged.  Unmapped values
        raise :class:`SchemaError` — silent misclassification would corrupt
        cuboid cells.
        """
        if level == self.base_level:
            return base_value
        mapping = self._mappings[self.levels[self.level_index(level)]]
        if callable(mapping):
            return mapping(base_value)
        try:
            return mapping[base_value]
        except KeyError:
            raise SchemaError(
                f"value {base_value!r} of {self.attribute!r} has no mapping "
                f"to level {level!r}"
            ) from None

    def translate(self, value: object, from_level: str, to_level: str) -> object:
        """Translate a value between levels (*to_level* must be coarser).

        Base-level sources use the direct mapping; non-base sources go via a
        representative base child, which requires a dict mapping at
        *from_level*.
        """
        if from_level == to_level:
            return value
        if not self.is_coarser(to_level, from_level):
            raise SchemaError(
                f"cannot translate {self.attribute!r} from {from_level!r} "
                f"to non-coarser level {to_level!r}"
            )
        if from_level == self.base_level:
            return self.map_value(value, to_level)
        children = self.children(from_level, value)
        if not children:
            raise SchemaError(
                f"value {value!r} has no members at level {from_level!r}"
            )
        return self.map_value(children[0], to_level)

    def members(self, level: str) -> Optional[Tuple[object, ...]]:
        """Known member values of *level*, when the mapping is a dict.

        Returns ``None`` for callable mappings and for the base level, where
        the member set is only known from the data.
        """
        if level == self.base_level:
            return None
        mapping = self._mappings[level]
        if callable(mapping):
            return None
        return tuple(sorted(set(mapping.values()), key=repr))

    def children(self, level: str, value: object) -> Tuple[object, ...]:
        """Base-level values mapping to *value* at *level* (dict mappings only)."""
        if level == self.base_level:
            return (value,)
        mapping = self._mappings[level]
        if callable(mapping):
            raise SchemaError(
                f"hierarchy level {level!r} of {self.attribute!r} uses a callable "
                "mapping; children cannot be enumerated"
            )
        return tuple(sorted((k for k, v in mapping.items() if v == value), key=repr))

    def __repr__(self) -> str:
        return f"Hierarchy({self.attribute!r}, levels={self.levels!r})"


class Dimension:
    """A dimension attribute, optionally carrying a concept hierarchy.

    A dimension without an explicit hierarchy gets a trivial single-level
    hierarchy whose base level is named after the dimension itself.
    """

    def __init__(self, name: str, hierarchy: Optional[Hierarchy] = None):
        self.name = name
        self.hierarchy = hierarchy or Hierarchy(name, levels=(name,))
        if self.hierarchy.attribute != name:
            raise SchemaError(
                f"dimension {name!r} given a hierarchy for "
                f"{self.hierarchy.attribute!r}"
            )

    @property
    def base_level(self) -> str:
        return self.hierarchy.base_level

    def __repr__(self) -> str:
        return f"Dimension({self.name!r}, levels={self.hierarchy.levels!r})"


class Measure:
    """A numeric measure attribute (the target of SUM/AVG/... aggregates)."""

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"Measure({self.name!r})"


class Schema:
    """The attribute catalogue of an event database.

    Knows which attributes are dimensions (and their hierarchies) and which
    are measures, and offers the level-mapping entry point used throughout
    the engine.
    """

    def __init__(self, dimensions: Iterable[Dimension], measures: Iterable[Measure] = ()):
        self.dimensions: Dict[str, Dimension] = {}
        for dim in dimensions:
            if dim.name in self.dimensions:
                raise SchemaError(f"duplicate dimension {dim.name!r}")
            self.dimensions[dim.name] = dim
        self.measures: Dict[str, Measure] = {}
        for measure in measures:
            if measure.name in self.measures or measure.name in self.dimensions:
                raise SchemaError(f"duplicate attribute {measure.name!r}")
            self.measures[measure.name] = measure

    @property
    def attributes(self) -> Tuple[str, ...]:
        """All attribute names, dimensions first."""
        return tuple(self.dimensions) + tuple(self.measures)

    def is_dimension(self, name: str) -> bool:
        return name in self.dimensions

    def is_measure(self, name: str) -> bool:
        return name in self.measures

    def dimension(self, name: str) -> Dimension:
        try:
            return self.dimensions[name]
        except KeyError:
            raise SchemaError(f"unknown dimension {name!r}") from None

    def hierarchy(self, name: str) -> Hierarchy:
        return self.dimension(name).hierarchy

    def check_level(self, attribute: str, level: str) -> None:
        """Validate that *level* exists for dimension *attribute*."""
        hierarchy = self.hierarchy(attribute)
        hierarchy.level_index(level)

    def map_value(self, attribute: str, base_value: object, level: str) -> object:
        """Map a stored (base-level) value of *attribute* up to *level*."""
        return self.hierarchy(attribute).map_value(base_value, level)

    def validate_attribute(self, name: str) -> None:
        if name not in self.dimensions and name not in self.measures:
            raise SchemaError(f"unknown attribute {name!r}")

    def __repr__(self) -> str:
        return (
            f"Schema(dimensions={list(self.dimensions)}, "
            f"measures={list(self.measures)})"
        )
