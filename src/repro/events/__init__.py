"""Event substrate: schema, columnar storage, predicates, sequence pipeline."""

from repro.events.cache import SequenceCache
from repro.events.database import EventDatabase, EventView
from repro.events.expression import (
    And,
    Between,
    Comparison,
    EventField,
    Expr,
    InSet,
    Literal,
    Not,
    Or,
    PlaceholderField,
    TRUE,
    conjoin,
)
from repro.events.schema import (
    ComputedMapping,
    Dimension,
    Hierarchy,
    Measure,
    Schema,
    register_computed_mapping,
    resolve_computed_mapping,
)
from repro.events.sequence import (
    Sequence,
    SequenceGroup,
    SequenceGroupSet,
    build_sequence_groups,
)

__all__ = [
    "And",
    "Between",
    "Comparison",
    "ComputedMapping",
    "Dimension",
    "EventDatabase",
    "EventField",
    "EventView",
    "Expr",
    "Hierarchy",
    "InSet",
    "Literal",
    "Measure",
    "Not",
    "Or",
    "PlaceholderField",
    "Schema",
    "Sequence",
    "SequenceCache",
    "SequenceGroup",
    "SequenceGroupSet",
    "TRUE",
    "build_sequence_groups",
    "conjoin",
    "register_computed_mapping",
    "resolve_computed_mapping",
]
