"""Predicate expressions for event selection and pattern matching.

Two kinds of predicates appear in an S-cuboid specification (Section 3.2):

* the ``WHERE`` clause selects events of interest — its terms reference event
  attributes directly (:class:`EventField`);
* the *matching predicate* constrains matched occurrences — its terms
  reference *event placeholders* such as ``x1.action`` (:class:`PlaceholderField`).

Both are represented by the same small immutable AST so that specifications
remain hashable (specs key the cuboid repository and the sequence cache).
Expressions are evaluated against an :class:`EvalContext` that knows how to
resolve each field kind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Tuple

from repro.errors import ExpressionError

# --------------------------------------------------------------------------
# Fields
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class EventField:
    """A reference to an attribute of the event under test (WHERE clause)."""

    attribute: str

    def __str__(self) -> str:
        return self.attribute


@dataclass(frozen=True)
class PlaceholderField:
    """A reference to ``placeholder.attribute`` in a matching predicate."""

    placeholder: str
    attribute: str

    def __str__(self) -> str:
        return f"{self.placeholder}.{self.attribute}"


@dataclass(frozen=True)
class Literal:
    """A constant value."""

    value: object

    def __str__(self) -> str:
        return repr(self.value)


Operand = object  # EventField | PlaceholderField | Literal


# --------------------------------------------------------------------------
# Evaluation contexts
# --------------------------------------------------------------------------


class EvalContext:
    """Resolves field references to concrete values during evaluation."""

    def resolve(self, field: Operand) -> object:
        raise NotImplementedError


class EventContext(EvalContext):
    """Context for WHERE predicates: one event record (a mapping)."""

    __slots__ = ("event",)

    def __init__(self, event: Mapping[str, object]):
        self.event = event

    def resolve(self, field: Operand) -> object:
        if isinstance(field, Literal):
            return field.value
        if isinstance(field, EventField):
            try:
                return self.event[field.attribute]
            except KeyError:
                raise ExpressionError(
                    f"event has no attribute {field.attribute!r}"
                ) from None
        raise ExpressionError(
            f"{field!r} cannot be resolved in a WHERE clause (placeholders "
            "are only valid in matching predicates)"
        )


class BindingContext(EvalContext):
    """Context for matching predicates: placeholder name -> matched event."""

    __slots__ = ("bindings",)

    def __init__(self, bindings: Mapping[str, Mapping[str, object]]):
        self.bindings = bindings

    def resolve(self, field: Operand) -> object:
        if isinstance(field, Literal):
            return field.value
        if isinstance(field, PlaceholderField):
            try:
                event = self.bindings[field.placeholder]
            except KeyError:
                raise ExpressionError(
                    f"unknown placeholder {field.placeholder!r}"
                ) from None
            try:
                return event[field.attribute]
            except KeyError:
                raise ExpressionError(
                    f"event bound to {field.placeholder!r} has no attribute "
                    f"{field.attribute!r}"
                ) from None
        raise ExpressionError(
            f"{field!r} cannot be resolved in a matching predicate"
        )


# --------------------------------------------------------------------------
# Expression nodes
# --------------------------------------------------------------------------


class Expr:
    """Base class for boolean predicate expressions."""

    def evaluate(self, context: EvalContext) -> bool:
        raise NotImplementedError

    def placeholders(self) -> Tuple[str, ...]:
        """All placeholder names referenced anywhere in the expression."""
        return ()

    def attributes(self) -> Tuple[str, ...]:
        """All attribute names referenced anywhere in the expression."""
        return ()

    # Convenience combinators ------------------------------------------------
    def __and__(self, other: "Expr") -> "Expr":
        return And((self, other))

    def __or__(self, other: "Expr") -> "Expr":
        return Or((self, other))

    def __invert__(self) -> "Expr":
        return Not(self)


_COMPARATORS: Dict[str, Callable[[object, object], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Expr):
    """A binary comparison between two operands, e.g. ``x1.action = "in"``."""

    left: Operand
    op: str
    right: Operand

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, context: EvalContext) -> bool:
        left = context.resolve(self.left)
        right = context.resolve(self.right)
        try:
            return _COMPARATORS[self.op](left, right)
        except TypeError:
            raise ExpressionError(
                f"cannot compare {left!r} {self.op} {right!r}"
            ) from None

    def placeholders(self) -> Tuple[str, ...]:
        names = []
        for operand in (self.left, self.right):
            if isinstance(operand, PlaceholderField):
                names.append(operand.placeholder)
        return tuple(names)

    def attributes(self) -> Tuple[str, ...]:
        names = []
        for operand in (self.left, self.right):
            if isinstance(operand, (PlaceholderField, EventField)):
                names.append(operand.attribute)
        return tuple(names)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class InSet(Expr):
    """Membership test: ``field IN (v1, v2, ...)``."""

    operand: Operand
    values: Tuple[object, ...]

    def evaluate(self, context: EvalContext) -> bool:
        return context.resolve(self.operand) in self.values

    def placeholders(self) -> Tuple[str, ...]:
        if isinstance(self.operand, PlaceholderField):
            return (self.operand.placeholder,)
        return ()

    def attributes(self) -> Tuple[str, ...]:
        if isinstance(self.operand, (PlaceholderField, EventField)):
            return (self.operand.attribute,)
        return ()

    def __str__(self) -> str:
        inner = ", ".join(repr(v) for v in self.values)
        return f"{self.operand} IN ({inner})"


@dataclass(frozen=True)
class Between(Expr):
    """Range test: ``low <= field <= high`` (inclusive both ends)."""

    operand: Operand
    low: object
    high: object

    def evaluate(self, context: EvalContext) -> bool:
        value = context.resolve(self.operand)
        return self.low <= value <= self.high  # type: ignore[operator]

    def placeholders(self) -> Tuple[str, ...]:
        if isinstance(self.operand, PlaceholderField):
            return (self.operand.placeholder,)
        return ()

    def attributes(self) -> Tuple[str, ...]:
        if isinstance(self.operand, (PlaceholderField, EventField)):
            return (self.operand.attribute,)
        return ()

    def __str__(self) -> str:
        return f"{self.operand} BETWEEN {self.low!r} AND {self.high!r}"


@dataclass(frozen=True)
class And(Expr):
    """Logical conjunction over two or more terms."""

    terms: Tuple[Expr, ...]

    def evaluate(self, context: EvalContext) -> bool:
        return all(term.evaluate(context) for term in self.terms)

    def placeholders(self) -> Tuple[str, ...]:
        return tuple(p for term in self.terms for p in term.placeholders())

    def attributes(self) -> Tuple[str, ...]:
        return tuple(a for term in self.terms for a in term.attributes())

    def __str__(self) -> str:
        return " AND ".join(f"({term})" for term in self.terms)


@dataclass(frozen=True)
class Or(Expr):
    """Logical disjunction over two or more terms."""

    terms: Tuple[Expr, ...]

    def evaluate(self, context: EvalContext) -> bool:
        return any(term.evaluate(context) for term in self.terms)

    def placeholders(self) -> Tuple[str, ...]:
        return tuple(p for term in self.terms for p in term.placeholders())

    def attributes(self) -> Tuple[str, ...]:
        return tuple(a for term in self.terms for a in term.attributes())

    def __str__(self) -> str:
        return " OR ".join(f"({term})" for term in self.terms)


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation."""

    term: Expr

    def evaluate(self, context: EvalContext) -> bool:
        return not self.term.evaluate(context)

    def placeholders(self) -> Tuple[str, ...]:
        return self.term.placeholders()

    def attributes(self) -> Tuple[str, ...]:
        return self.term.attributes()

    def __str__(self) -> str:
        return f"NOT ({self.term})"


@dataclass(frozen=True)
class TruePredicate(Expr):
    """Always-true predicate; the identity element for AND."""

    def evaluate(self, context: EvalContext) -> bool:
        return True

    def __str__(self) -> str:
        return "TRUE"


TRUE = TruePredicate()


def conjoin(*terms: Expr) -> Expr:
    """AND together terms, dropping TRUEs; returns TRUE for no terms."""
    real = tuple(t for t in terms if not isinstance(t, TruePredicate))
    if not real:
        return TRUE
    if len(real) == 1:
        return real[0]
    return And(real)
