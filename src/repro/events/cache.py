"""Sequence cache (Figure 6): memoises the output of pipeline steps 1-4.

Iterative S-OLAP sessions repeatedly re-execute specifications that differ
only in their CUBOID BY clause (pattern template, restriction, predicate).
The expensive selection / clustering / ordering / grouping work depends only
on (WHERE, CLUSTER BY, SEQUENCE BY, SEQUENCE GROUP BY), so the engine keys
this cache on exactly that prefix of the specification.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional

from repro.events.sequence import SequenceGroupSet


class SequenceCache:
    """A bounded LRU cache from pipeline keys to :class:`SequenceGroupSet`."""

    def __init__(self, capacity: int = 16):
        if capacity < 1:
            raise ValueError("sequence cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, SequenceGroupSet]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable) -> Optional[SequenceGroupSet]:
        """Look up *key*, refreshing its LRU position on a hit."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, groups: SequenceGroupSet) -> None:
        """Insert (or refresh) *key*, evicting the least recently used."""
        self._entries[key] = groups
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns True if it was present."""
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        self._entries.clear()

    def hit_ratio(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counters for observability surfaces (CLI, service metrics)."""
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_ratio": self.hit_ratio(),
        }

    def keys(self):
        """Cached pipeline keys, least recently used first."""
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __repr__(self) -> str:
        return (
            f"SequenceCache({len(self._entries)}/{self.capacity} entries, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )
