"""Sequence cache (Figure 6): memoises the output of pipeline steps 1-4.

Iterative S-OLAP sessions repeatedly re-execute specifications that differ
only in their CUBOID BY clause (pattern template, restriction, predicate).
The expensive selection / clustering / ordering / grouping work depends only
on (WHERE, CLUSTER BY, SEQUENCE BY, SEQUENCE GROUP BY), so the engine keys
this cache on exactly that prefix of the specification.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Optional

from repro.events.sequence import SequenceGroupSet


class SequenceCache:
    """A bounded LRU cache from pipeline keys to :class:`SequenceGroupSet`.

    Thread-safe: concurrent sessions hit this cache from the service
    layer, and the hit/miss/eviction counters must stay exact (they feed
    the metrics endpoint and the cache hammer test asserts
    ``hits + misses == lookups``), so one short-lived lock guards both
    the LRU order and the counters.
    """

    def __init__(self, capacity: int = 16):
        if capacity < 1:
            raise ValueError("sequence cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, SequenceGroupSet]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable) -> Optional[SequenceGroupSet]:
        """Look up *key*, refreshing its LRU position on a hit."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Hashable, groups: SequenceGroupSet) -> None:
        """Insert (or refresh) *key*, evicting the least recently used."""
        with self._lock:
            self._entries[key] = groups
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns True if it was present."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def hit_ratio(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        with self._lock:
            hits, misses = self.hits, self.misses
        total = hits + misses
        return hits / total if total else 0.0

    def stats(self) -> dict:
        """Counters for observability surfaces (CLI, service metrics)."""
        with self._lock:
            entries = len(self._entries)
            hits, misses = self.hits, self.misses
            evictions = self.evictions
        total = hits + misses
        return {
            "entries": entries,
            "capacity": self.capacity,
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "hit_ratio": hits / total if total else 0.0,
        }

    def keys(self):
        """Cached pipeline keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __repr__(self) -> str:
        return (
            f"SequenceCache({len(self._entries)}/{self.capacity} entries, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )
