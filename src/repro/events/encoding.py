"""Dictionary encoding of pattern-dimension values (Section 6, Performance).

Classic OLAP engines make their inner loops cheap by *dictionary encoding*:
each (attribute, level) domain's values are interned to dense integer codes
once, and everything downstream — pattern matching, equality tests, list
keys — operates on machine integers instead of arbitrary Python objects.
This module provides that layer for the sequence engine:

* :class:`DimensionDictionary` interns the (level-mapped) values of each
  pattern-dimension domain to dense ``uint32`` codes, append-only, so a
  code assigned once never changes meaning;
* :class:`EncodedSequenceStore` materialises each sequence as flat
  ``array('I')`` *code rows* — one row per (attribute, level) domain the
  matcher needs — built once per sequence and cached on the sequence
  object itself, so rows live exactly as long as the sequence-cache entry
  that owns the sequence.

Codes are **process-local**: the compiled matcher decodes cell keys back
to values before results leave the kernel, so worker processes only need
internally-consistent dictionaries, never a shared global one.  The store
travels with the :class:`~repro.events.database.EventDatabase` through the
process-backend pool initializer; its lock is dropped on pickling and
recreated on load.
"""

from __future__ import annotations

import threading
from array import array
from typing import Dict, List, Optional, Tuple

#: an (attribute, level) pair naming one encodable domain
Domain = Tuple[str, str]

#: a sequence's per-event codes for one domain
CodeRow = array


class DimensionDictionary:
    """Append-only interning of domain values to dense ``uint32`` codes.

    Reads are lock-free (a dict lookup under the GIL); interning a *new*
    value takes a short lock so racing threads can never assign two codes
    to one value.  Decoding is indexing into the per-domain value list,
    which only ever grows — a reference to it stays valid forever.
    """

    def __init__(self) -> None:
        self._codes: Dict[Domain, Dict[object, int]] = {}
        self._values: Dict[Domain, List[object]] = {}
        self._lock = threading.Lock()

    # -- pickling: locks cannot cross process boundaries -----------------
    def __getstate__(self) -> dict:
        return {"codes": self._codes, "values": self._values}

    def __setstate__(self, state: dict) -> None:
        self._codes = state["codes"]
        self._values = state["values"]
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _domain_codes(self, domain: Domain) -> Dict[object, int]:
        codes = self._codes.get(domain)
        if codes is None:
            with self._lock:
                codes = self._codes.get(domain)
                if codes is None:
                    codes = {}
                    self._values[domain] = []
                    self._codes[domain] = codes
        return codes

    def _intern(self, domain: Domain, value: object) -> int:
        with self._lock:
            codes = self._codes[domain]
            code = codes.get(value)
            if code is None:
                values = self._values[domain]
                code = len(values)
                values.append(value)
                # Publish the code last: a lock-free reader either misses
                # (and falls into this locked path) or sees a fully
                # decodable code.
                codes[value] = code
            return code

    def seed(self, domain: Domain, values: List[object]) -> None:
        """Adopt an existing code → value table for *domain*.

        The segment store persists its dictionary tables on disk; on
        attach they become the starting state of the process-local
        dictionary so stored code columns decode without re-interning.
        Only valid before the domain has interned anything — seeded
        tables must own the low codes.
        """
        with self._lock:
            if self._values.get(domain):
                raise ValueError(f"domain {domain!r} already holds codes")
            self._values[domain] = list(values)
            self._codes[domain] = {
                value: code for code, value in enumerate(values)
            }

    def encode_row(self, domain: Domain, values) -> CodeRow:
        """Codes for a run of values of one domain, interning new ones."""
        codes = self._domain_codes(domain)
        out = array("I")
        append = out.append
        get = codes.get
        for value in values:
            code = get(value)
            if code is None:
                code = self._intern(domain, value)
            append(code)
        return out

    def encode_value(self, domain: Domain, value: object) -> int:
        """The code of one value, interning it if new."""
        codes = self._domain_codes(domain)
        code = codes.get(value)
        if code is None:
            code = self._intern(domain, value)
        return code

    def lookup(self, domain: Domain, value: object) -> Optional[int]:
        """The code of *value* if already interned, else None."""
        codes = self._codes.get(domain)
        if codes is None:
            return None
        return codes.get(value)

    def items(self, domain: Domain):
        """Snapshot of (value, code) pairs interned for *domain*."""
        with self._lock:
            codes = self._codes.get(domain)
            return list(codes.items()) if codes else []

    def decoder(self, domain: Domain) -> List[object]:
        """The live code → value list for *domain* (index by code).

        The list is append-only; holding a reference is always safe.
        """
        self._domain_codes(domain)
        return self._values[domain]

    def domain_size(self, domain: Domain) -> int:
        values = self._values.get(domain)
        return len(values) if values else 0

    def __repr__(self) -> str:
        return (
            f"DimensionDictionary({len(self._codes)} domains, "
            f"{sum(len(v) for v in self._values.values())} values)"
        )


class EncodedSequenceStore:
    """Per-database home of the dictionary and the sequence code rows.

    One store hangs off each :class:`~repro.events.database.EventDatabase`
    (see ``EventDatabase.encoding_store``), so every pipeline built over
    that database shares one dictionary.  The rows themselves are cached
    in each sequence's ``_code_cache`` slot — alongside the object-level
    ``_symbol_cache`` — which keys them to the sequence *object*, not the
    sid: sids are reused across pipelines, sequence objects are not.
    """

    def __init__(self) -> None:
        self.dictionary = DimensionDictionary()
        #: domains whose full base-data value set has been interned —
        #: required before accept-sets can be precomputed for restricted
        #: symbols (a lazily-interned value must never bypass a check)
        self._complete_domains: set = set()
        #: per non-base domain: base code → level code translation list,
        #: extended as new base values are interned
        self._level_maps: Dict[Domain, List[int]] = {}
        #: accept-sets memoised per (attribute, level, fixed, within):
        #: sound because the domain is closed before the set is built and
        #: event data is immutable, so a restriction always accepts the
        #: same codes no matter which query compiles it
        self._accept_sets: Dict[Tuple, frozenset] = {}
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        return {
            "dictionary": self.dictionary,
            "complete": self._complete_domains,
            "level_maps": self._level_maps,
            "accept_sets": self._accept_sets,
        }

    def __setstate__(self, state: dict) -> None:
        self.dictionary = state["dictionary"]
        self._complete_domains = state["complete"]
        self._level_maps = state.get("level_maps", {})
        self._accept_sets = state.get("accept_sets", {})
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def row(self, sequence, attribute: str, level: str) -> CodeRow:
        """The code row of *sequence* for one domain (built once, cached).

        Base-level rows encode the stored column values directly; coarser
        levels translate the base row through a code → code level map, so
        hierarchy mapping runs once per distinct *value*, not once per
        event."""
        domain = (attribute, level)
        cache = sequence._code_cache
        row = cache.get(domain)
        if row is None:
            db = sequence.db
            base_level = db.schema.hierarchy(attribute).base_level
            if level == base_level:
                row = self.dictionary.encode_row(
                    domain, sequence.symbols(attribute, level)
                )
            else:
                base_row = self.row(sequence, attribute, base_level)
                level_map = self._level_map(db, attribute, base_level, level)
                row = array("I", map(level_map.__getitem__, base_row))
            cache[domain] = row
        return row

    def _level_map(
        self, db, attribute: str, base_level: str, level: str
    ) -> List[int]:
        """The base-code → level-code list for one non-base domain.

        Extended (append-only, under the store lock) to cover every base
        code currently interned; callers translate base rows whose codes
        were interned before this call, so the returned list always covers
        them even if another thread keeps extending it."""
        domain = (attribute, level)
        base_domain = (attribute, base_level)
        dictionary = self.dictionary
        level_map = self._level_maps.get(domain)
        base_decoder = dictionary.decoder(base_domain)
        if level_map is not None and len(level_map) >= len(base_decoder):
            return level_map
        hierarchy = db.schema.hierarchy(attribute)
        with self._lock:
            level_map = self._level_maps.setdefault(domain, [])
            while len(level_map) < len(base_decoder):
                value = hierarchy.map_value(base_decoder[len(level_map)], level)
                level_map.append(dictionary.encode_value(domain, value))
        return level_map

    def accept_codes(self, db, symbol) -> frozenset:
        """Codes of *symbol*'s domain passing its fixed / within restriction.

        Requires :meth:`ensure_domain_complete` to have closed the domain
        first.  The set is cached per restriction: index-heavy workloads
        compile the same sliced symbols query after query, and rescanning
        the domain each time dominates compile cost.  A benign double-build
        under races stores the same value twice.
        """
        key = (symbol.attribute, symbol.level, symbol.fixed, symbol.within)
        found = self._accept_sets.get(key)
        if found is None:
            from repro.core.matcher import _symbol_value_ok

            schema = db.schema
            domain = (symbol.attribute, symbol.level)
            found = frozenset(
                code
                for value, code in self.dictionary.items(domain)
                if _symbol_value_ok(symbol, value, schema)
            )
            self._accept_sets[key] = found
        return found

    def ensure_domain_complete(self, db, attribute: str, level: str) -> None:
        """Intern every value the base data can produce for one domain.

        Restricted template symbols precompute *accept-sets* of codes; the
        set is only sound if no new value of the domain can appear after it
        is built.  Event data is immutable during query execution, so one
        pass over the (level-mapped) column closes the domain.  Raises
        :class:`~repro.errors.SchemaError` when a stored value has no
        mapping at *level* — the caller treats that as "uncompilable" and
        falls back to the object matcher.
        """
        domain = (attribute, level)
        if domain in self._complete_domains:
            return
        for value in db.distinct(attribute, level):
            self.dictionary.encode_value(domain, value)
        with self._lock:
            self._complete_domains.add(domain)

    def __repr__(self) -> str:
        return f"EncodedSequenceStore({self.dictionary!r})"
