"""Sequence formation: steps 1-4 of S-cuboid construction (Section 3.2).

The pipeline turns the flat event database into *sequence groups*:

1. **Selection** — keep only rows satisfying the WHERE predicate.
2. **Clustering** — partition selected rows by the CLUSTER BY attributes,
   each evaluated at a chosen hierarchy level (e.g. ``card-id AT individual,
   time AT day``).
3. **Sequence formation** — order each cluster by the SEQUENCE BY attribute
   to obtain one :class:`Sequence` per cluster.
4. **Sequence grouping** — group sequences by the SEQUENCE GROUP BY
   attributes (the *global dimensions*); the result is a
   :class:`SequenceGroupSet`, the paper's q-dimensional array of groups.

These four steps are shared verbatim by both cuboid-construction strategies
(counter-based and inverted-index), so they live here, below both.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence as Seq, Tuple

from repro.errors import SpecError
from repro.events.database import EventDatabase, EventView
from repro.events.expression import Expr
from repro.obs.spans import span

#: An (attribute, level) pair, as used by CLUSTER BY / SEQUENCE GROUP BY.
AttrLevel = Tuple[str, str]

#: An (attribute, ascending) ordering key, as used by SEQUENCE BY.
OrderKey = Tuple[str, bool]


class Sequence:
    """One data sequence: an ordered run of events from the database.

    Sequences hold row indices rather than materialised events, and cache
    the *symbol tuple* — the per-event values of an attribute mapped to a
    hierarchy level — because pattern matching reads those tuples many times.
    """

    __slots__ = ("sid", "db", "rows", "cluster_key", "_symbol_cache", "_code_cache")

    def __init__(
        self,
        sid: int,
        db: EventDatabase,
        rows: Tuple[int, ...],
        cluster_key: Tuple[object, ...] = (),
    ):
        self.sid = sid
        self.db = db
        self.rows = rows
        self.cluster_key = cluster_key
        self._symbol_cache: Dict[AttrLevel, Tuple[object, ...]] = {}
        # Dictionary-encoded symbol rows, filled on demand by the
        # EncodedSequenceStore of self.db (see repro.events.encoding).
        self._code_cache: Dict[AttrLevel, object] = {}

    def __len__(self) -> int:
        return len(self.rows)

    def event(self, position: int) -> EventView:
        """The event at 0-based *position* within the sequence."""
        return self.db.event(self.rows[position])

    def events(self) -> List[EventView]:
        """All events of the sequence, in order."""
        return self.db.events(self.rows)

    def symbols(self, attribute: str, level: str) -> Tuple[object, ...]:
        """Per-event values of *attribute* mapped to *level* (cached)."""
        key = (attribute, level)
        cached = self._symbol_cache.get(key)
        if cached is None:
            hierarchy = self.db.schema.hierarchy(attribute)
            column = self.db.column(attribute)
            if level == hierarchy.base_level:
                cached = tuple(column[row] for row in self.rows)
            else:
                cached = tuple(
                    hierarchy.map_value(column[row], level) for row in self.rows
                )
            self._symbol_cache[key] = cached
        return cached

    def measure_values(self, attribute: str) -> Tuple[object, ...]:
        """Per-event values of a measure attribute (no level mapping)."""
        column = self.db.column(attribute)
        return tuple(column[row] for row in self.rows)

    def __repr__(self) -> str:
        return f"Sequence(sid={self.sid}, len={len(self.rows)})"


class SequenceGroup:
    """All sequences sharing one global-dimension key."""

    __slots__ = ("key", "sequences", "_by_sid")

    def __init__(self, key: Tuple[object, ...], sequences: List[Sequence]):
        self.key = key
        self.sequences = sequences
        self._by_sid: Optional[Dict[int, Sequence]] = None

    def __len__(self) -> int:
        return len(self.sequences)

    def __iter__(self) -> Iterator[Sequence]:
        return iter(self.sequences)

    def by_sid(self, sid: int) -> Sequence:
        """Look up a member sequence by sid (index built lazily)."""
        if self._by_sid is None:
            self._by_sid = {seq.sid: seq for seq in self.sequences}
        return self._by_sid[sid]

    def sids(self) -> Tuple[int, ...]:
        return tuple(seq.sid for seq in self.sequences)

    def __repr__(self) -> str:
        return f"SequenceGroup(key={self.key!r}, {len(self.sequences)} sequences)"


class SequenceGroupSet:
    """The q-dimensional array of sequence groups (q = #global dimensions).

    Implemented sparsely as a dict from group key to :class:`SequenceGroup`.
    When no SEQUENCE GROUP BY clause is given, all sequences form the single
    group with the empty key ``()``.
    """

    def __init__(
        self,
        global_dims: Tuple[AttrLevel, ...],
        groups: Dict[Tuple[object, ...], SequenceGroup],
    ):
        self.global_dims = global_dims
        self.groups = groups

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self) -> Iterator[SequenceGroup]:
        for key in sorted(self.groups, key=repr):
            yield self.groups[key]

    def group(self, key: Tuple[object, ...]) -> SequenceGroup:
        return self.groups[key]

    def single_group(self) -> SequenceGroup:
        """The lone group of an ungrouped pipeline (raises if >1 group)."""
        if len(self.groups) != 1:
            raise SpecError(
                f"expected a single sequence group, found {len(self.groups)}"
            )
        return next(iter(self.groups.values()))

    def total_sequences(self) -> int:
        return sum(len(group) for group in self.groups.values())

    def all_sequences(self) -> Iterator[Sequence]:
        for group in self:
            yield from group

    def __repr__(self) -> str:
        return (
            f"SequenceGroupSet({len(self.groups)} groups, "
            f"{self.total_sequences()} sequences, dims={self.global_dims})"
        )


# --------------------------------------------------------------------------
# Pipeline steps
# --------------------------------------------------------------------------


def select_events(db: EventDatabase, where: Optional[Expr]) -> List[int]:
    """Step 1 — row indices of events satisfying the WHERE predicate."""
    return db.select(where)


def cluster_events(
    db: EventDatabase,
    rows: Iterable[int],
    cluster_by: Seq[AttrLevel],
) -> Dict[Tuple[object, ...], List[int]]:
    """Step 2 — partition rows by the CLUSTER BY attributes at their levels."""
    if not cluster_by:
        raise SpecError("CLUSTER BY requires at least one attribute")
    mapped_columns = [db.mapped_column(attr, level) for attr, level in cluster_by]
    clusters: Dict[Tuple[object, ...], List[int]] = {}
    if len(mapped_columns) == 1:
        # Dominant case (one CLUSTER BY attribute): index the column
        # directly instead of building each key through a generator.
        column = mapped_columns[0]
        for row in rows:
            key = (column[row],)
            bucket = clusters.get(key)
            if bucket is None:
                bucket = clusters[key] = []
            bucket.append(row)
        return clusters
    for row in rows:
        key = tuple(column[row] for column in mapped_columns)
        clusters.setdefault(key, []).append(row)
    return clusters


def form_sequences(
    db: EventDatabase,
    clusters: Dict[Tuple[object, ...], List[int]],
    sequence_by: Seq[OrderKey],
    sid_start: int = 0,
) -> List[Sequence]:
    """Step 3 — order each cluster into one :class:`Sequence`.

    Sids are assigned densely from *sid_start* in deterministic (sorted
    cluster key) order, so repeated runs over the same data produce
    identical sids — which the tests and the inverted indices rely on.
    """
    if not sequence_by:
        raise SpecError("SEQUENCE BY requires at least one ordering attribute")
    order_columns = [(db.column(attr), ascending) for attr, ascending in sequence_by]

    if len(order_columns) == 1:
        # One ascending key orders identically by the raw value and by the
        # 1-tuple, so skip the per-row tuple construction.
        order_key = order_columns[0][0].__getitem__
    else:

        def order_key(row: int) -> Tuple[object, ...]:
            return tuple(column[row] for column, __ in order_columns)

    descending = [not ascending for __, ascending in order_columns]
    sequences: List[Sequence] = []
    for key in sorted(clusters, key=repr):
        rows = clusters[key]
        if any(descending):
            # Mixed-direction ordering: stable-sort from the least
            # significant key to the most significant one.
            ordered = list(rows)
            for (column, ascending) in reversed(order_columns):
                ordered.sort(key=lambda r: column[r], reverse=not ascending)
        else:
            ordered = sorted(rows, key=order_key)
        sequences.append(
            Sequence(sid_start + len(sequences), db, tuple(ordered), cluster_key=key)
        )
    return sequences


def group_sequences(
    db: EventDatabase,
    sequences: Iterable[Sequence],
    group_by: Seq[AttrLevel],
) -> SequenceGroupSet:
    """Step 4 — group sequences by the SEQUENCE GROUP BY attributes.

    The group key of a sequence is computed from its **first event**, mapped
    to the requested levels.  This matches the paper's usage, where every
    SEQUENCE GROUP BY attribute is a coarser view of a CLUSTER BY attribute
    (e.g. cluster on ``card-id AT individual`` and group on ``card-id AT
    fare-group``), so the value is constant across the sequence.
    """
    group_by = tuple(group_by)
    groups: Dict[Tuple[object, ...], List[Sequence]] = {}
    for sequence in sequences:
        if group_by:
            first = sequence.rows[0]
            key = tuple(
                db.mapped_value(first, attr, level) for attr, level in group_by
            )
        else:
            key = ()
        groups.setdefault(key, []).append(sequence)
    return SequenceGroupSet(
        global_dims=group_by,
        groups={key: SequenceGroup(key, seqs) for key, seqs in groups.items()},
    )


def build_sequence_groups(
    db: EventDatabase,
    where: Optional[Expr],
    cluster_by: Seq[AttrLevel],
    sequence_by: Seq[OrderKey],
    group_by: Seq[AttrLevel] = (),
) -> SequenceGroupSet:
    """Run pipeline steps 1-4 and return the sequence groups.

    Each step runs under a tracing span (see :mod:`repro.obs.spans`) so
    EXPLAIN ANALYZE can attribute wall time and row flow per stage; the
    spans are no-ops unless a tracer is active.

    Segment-backed databases may carry a *stored layout* — the frozen
    result of this very pipeline (see ``repro.storage``).  When the
    stored spec matches the requested one, the groups are rebuilt from
    the per-sequence offset arrays and steps 1-4 are skipped entirely;
    any mismatch (including a WHERE predicate) falls through to the live
    pipeline.
    """
    stored = getattr(db, "stored_groups", None)
    if stored is not None:
        with span("stored_layout") as sp:
            groups = stored(where, cluster_by, sequence_by, group_by)
            sp.set("hit", 1 if groups is not None else 0)
            if groups is not None:
                sp.set("sequences_out", groups.total_sequences())
                sp.set("groups_out", len(groups))
        if groups is not None:
            return groups
    with span("selection") as sp:
        rows = select_events(db, where)
        sp.set("rows_in", len(db))
        sp.set("rows_out", len(rows))
    with span("clustering") as sp:
        clusters = cluster_events(db, rows, cluster_by)
        sp.set("rows_in", len(rows))
        sp.set("clusters_out", len(clusters))
    with span("sequence_formation") as sp:
        sequences = form_sequences(db, clusters, sequence_by)
        sp.set("sequences_out", len(sequences))
    with span("grouping") as sp:
        groups = group_sequences(db, sequences, group_by)
        sp.set("groups_out", len(groups))
    return groups
