"""Cuboid diffing: what changed between two S-cuboid snapshots.

Iterative exploration and incremental maintenance both produce pairs of
related cuboids an analyst wants to compare: yesterday's report vs
today's, a sliced view before and after a campaign, a drill-down against
its parent.  ``diff_cuboids`` computes the added / removed / changed cell
sets for any shared aggregate, and :class:`CuboidDiff` renders them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.cuboid import SCuboid

CellAddress = Tuple[Tuple[object, ...], Tuple[object, ...]]


@dataclass
class CuboidDiff:
    """The outcome of comparing two cuboids on one aggregate."""

    aggregate: str
    added: Dict[CellAddress, object] = field(default_factory=dict)
    removed: Dict[CellAddress, object] = field(default_factory=dict)
    changed: Dict[CellAddress, Tuple[object, object]] = field(default_factory=dict)
    unchanged: int = 0

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.changed)

    def net_change(self) -> float:
        """Total aggregate delta (new - old) across all differing cells."""
        total = 0.0
        total += sum(float(v or 0) for v in self.added.values())
        total -= sum(float(v or 0) for v in self.removed.values())
        total += sum(
            float(new or 0) - float(old or 0)
            for old, new in self.changed.values()
        )
        return total

    def top_movers(self, k: int = 10) -> List[Tuple[CellAddress, float]]:
        """Cells ranked by absolute aggregate delta, descending."""
        deltas: Dict[CellAddress, float] = {}
        for address, value in self.added.items():
            deltas[address] = float(value or 0)
        for address, value in self.removed.items():
            deltas[address] = -float(value or 0)
        for address, (old, new) in self.changed.items():
            deltas[address] = float(new or 0) - float(old or 0)
        ranked = sorted(
            deltas.items(), key=lambda item: (-abs(item[1]), repr(item[0]))
        )
        return ranked[:k]

    def render(self, limit: int = 10) -> str:
        if self.is_empty:
            return f"no differences in {self.aggregate} ({self.unchanged} cells)"
        lines = [
            f"diff on {self.aggregate}: +{len(self.added)} cells, "
            f"-{len(self.removed)} cells, ~{len(self.changed)} changed, "
            f"{self.unchanged} unchanged (net {self.net_change():+.1f})"
        ]
        for (group, cell), delta in self.top_movers(limit):
            label = f"{group} {cell}" if group else f"{cell}"
            lines.append(f"  {delta:+10.1f}  {label}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"CuboidDiff(+{len(self.added)}, -{len(self.removed)}, "
            f"~{len(self.changed)})"
        )


def diff_cuboids(
    old: SCuboid, new: SCuboid, aggregate: str = "COUNT(*)"
) -> CuboidDiff:
    """Compare two cuboids cell-by-cell on one aggregate.

    The cuboids need not share a spec (an exploration step changes it),
    only the aggregate name; cells are matched by (group key, cell key).
    """
    diff = CuboidDiff(aggregate=aggregate)
    old_cells = {
        address: values.get(aggregate) for address, values in old.cells.items()
    }
    new_cells = {
        address: values.get(aggregate) for address, values in new.cells.items()
    }
    for address, value in new_cells.items():
        if address not in old_cells:
            diff.added[address] = value
        elif old_cells[address] != value:
            diff.changed[address] = (old_cells[address], value)
        else:
            diff.unchanged += 1
    for address, value in old_cells.items():
        if address not in new_cells:
            diff.removed[address] = value
    return diff
