"""Origin-Destination matrix reports (Section 6, Discussion).

"Every day, the IT department of the company processes the RFID-logged
transactions and generates a so-called 'OD-matrix' ... a 2D-matrix which
reports the number of passengers traveled from one station to another
within the same day (i.e., representing the single-trip information)."

An OD-matrix is exactly the cross-tabulation of a two-pattern-dimension
S-cuboid, so this module derives it from a single-trip query (the paper's
Q3) rather than from a bespoke scan — demonstrating that the ad-hoc
report the company hand-codes falls out of the S-OLAP engine directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.cuboid import SCuboid
from repro.core.engine import SOLAPEngine
from repro.core.spec import CuboidSpec
from repro.errors import SpecError

GroupKey = Tuple[object, ...]


class ODMatrix:
    """A dense origin x destination count matrix with labels."""

    def __init__(
        self,
        origins: Tuple[object, ...],
        destinations: Tuple[object, ...],
        counts: Dict[Tuple[object, object], int],
    ):
        self.origins = origins
        self.destinations = destinations
        self._counts = counts

    def count(self, origin: object, destination: object) -> int:
        return self._counts.get((origin, destination), 0)

    def row(self, origin: object) -> List[int]:
        return [self.count(origin, d) for d in self.destinations]

    def total(self) -> int:
        return sum(self._counts.values())

    def outbound_totals(self) -> Dict[object, int]:
        """Total departures per origin."""
        return {o: sum(self.row(o)) for o in self.origins}

    def inbound_totals(self) -> Dict[object, int]:
        """Total arrivals per destination."""
        return {
            d: sum(self.count(o, d) for o in self.origins)
            for d in self.destinations
        }

    def busiest_pair(self) -> Optional[Tuple[object, object, int]]:
        if not self._counts:
            return None
        (origin, destination), value = max(
            self._counts.items(), key=lambda item: (item[1], repr(item[0]))
        )
        return origin, destination, value

    def render(self) -> str:
        """Fixed-width text rendering with row/column totals."""
        header = ["O\\D"] + [str(d) for d in self.destinations] + ["total"]
        rows = []
        for origin in self.origins:
            row = self.row(origin)
            rows.append([str(origin)] + [str(v) for v in row] + [str(sum(row))])
        inbound = self.inbound_totals()
        rows.append(
            ["total"]
            + [str(inbound[d]) for d in self.destinations]
            + [str(self.total())]
        )
        widths = [
            max(len(header[i]), *(len(r[i]) for r in rows))
            for i in range(len(header))
        ]
        lines = ["  ".join(h.rjust(w) for h, w in zip(header, widths))]
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ODMatrix({len(self.origins)}x{len(self.destinations)}, "
            f"total={self.total()})"
        )


def od_matrix_from_cuboid(
    cuboid: SCuboid, group_key: GroupKey = ()
) -> ODMatrix:
    """Cross-tabulate a two-pattern-dimension cuboid into an OD matrix."""
    if cuboid.spec.template.n_dims != 2:
        raise SpecError(
            "an OD matrix needs exactly two pattern dimensions, got "
            f"{cuboid.spec.template.n_dims}"
        )
    counts: Dict[Tuple[object, object], int] = {}
    origins = set()
    destinations = set()
    for g, (origin, destination), values in cuboid:
        if g != group_key:
            continue
        count = int(values.get("COUNT(*)", 0) or 0)
        if count == 0:
            continue
        counts[(origin, destination)] = count
        origins.add(origin)
        destinations.add(destination)
    return ODMatrix(
        tuple(sorted(origins, key=repr)),
        tuple(sorted(destinations, key=repr)),
        counts,
    )


def daily_od_matrices(
    engine: SOLAPEngine,
    spec: CuboidSpec,
    day_dim_index: int = 0,
    strategy: str = "auto",
) -> Dict[object, ODMatrix]:
    """One OD matrix per day — the subway company's daily report.

    *spec* must have two pattern dimensions and a global dimension whose
    position in SEQUENCE GROUP BY is *day_dim_index* (e.g. ``time AT
    day``).  Returns ``{day: ODMatrix}``.
    """
    if not spec.group_by:
        raise SpecError("daily OD matrices need a SEQUENCE GROUP BY day dim")
    cuboid, __ = engine.execute(spec, strategy)
    matrices: Dict[object, ODMatrix] = {}
    for group_key in cuboid.group_keys():
        day = group_key[day_dim_index]
        matrices[day] = od_matrix_from_cuboid(cuboid, group_key)
    return matrices
