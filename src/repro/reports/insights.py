"""Exploration insights: suggest the next S-OLAP operation.

The paper's analysts navigate by two recurring observations:

* "there is a particularly high concentration of people traveling
  round-trip from Pentagon to Wheaton" → **slice** on the dominant cell
  (and usually APPEND afterwards);
* "there are too many station pairs, which makes the distribution ...
  too fragmented" → **P-ROLL-UP** a pattern dimension.

This module turns those observations into measurements over a computed
cuboid — concentration (top-cell mass share), fragmentation (cells per
assigned sequence) and per-dimension cardinality — and ranks concrete
next operations.  It is heuristic navigation support, not statistics:
the analyst stays in charge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.cuboid import SCuboid
from repro.events.schema import Schema


@dataclass
class Insight:
    """One ranked navigation suggestion."""

    #: operation name: "slice_cell" | "p_roll_up" | "p_drill_down"
    operation: str
    #: operation argument: a cell key for slices, a symbol name for levels
    argument: object
    score: float
    reason: str

    def __repr__(self) -> str:
        return f"Insight({self.operation}({self.argument!r}) — {self.reason})"


def concentration(cuboid: SCuboid, aggregate: str = "COUNT(*)") -> float:
    """Share of the total aggregate held by the heaviest cell (0..1)."""
    total = float(cuboid.total(aggregate))
    if total <= 0:
        return 0.0
    top = cuboid.argmax(aggregate)
    return float(top[2] or 0) / total if top else 0.0


def fragmentation(cuboid: SCuboid, aggregate: str = "COUNT(*)") -> float:
    """Cells per unit of aggregate mass (1.0 = every cell holds one unit).

    High fragmentation — many cells each holding little — is the paper's
    cue to roll a pattern dimension up.
    """
    total = float(cuboid.total(aggregate))
    if total <= 0:
        return 0.0
    return len(cuboid) / total


def dimension_cardinalities(cuboid: SCuboid) -> Dict[str, int]:
    """Distinct values per pattern dimension across non-empty cells."""
    symbols = cuboid.spec.pattern_dims
    values: Dict[str, set] = {symbol.name: set() for symbol in symbols}
    for __, cell_key, __v in cuboid:
        for symbol, value in zip(symbols, cell_key):
            values[symbol.name].add(value)
    return {name: len(vals) for name, vals in values.items()}


def suggest_operations(
    cuboid: SCuboid,
    schema: Schema,
    aggregate: str = "COUNT(*)",
    concentration_threshold: float = 0.25,
    fragmentation_threshold: float = 0.5,
    max_suggestions: int = 5,
) -> List[Insight]:
    """Ranked next-step suggestions for an exploration session.

    * a cell holding more than *concentration_threshold* of the mass
      suggests slicing onto it (score: its mass share);
    * fragmentation above *fragmentation_threshold* suggests P-ROLL-UP of
      the highest-cardinality dimension with a coarser level available
      (score: the fragmentation);
    * a dimension stuck at a single value at a coarse level suggests
      drilling it down (score: fixed 0.3 — mild curiosity).
    """
    insights: List[Insight] = []
    top = cuboid.argmax(aggregate)
    share = concentration(cuboid, aggregate)
    if top is not None and share >= concentration_threshold and len(cuboid) > 1:
        __, cell_key, value = top
        insights.append(
            Insight(
                operation="slice_cell",
                argument=cell_key,
                score=share,
                reason=(
                    f"cell {cell_key} holds {share:.0%} of {aggregate} "
                    f"({value}); slice and APPEND to follow the cohort"
                ),
            )
        )

    frag = fragmentation(cuboid, aggregate)
    if frag >= fragmentation_threshold and len(cuboid) > 4:
        cardinalities = dimension_cardinalities(cuboid)
        rollable = []
        for symbol in cuboid.spec.pattern_dims:
            if symbol.is_restricted:
                continue
            hierarchy = schema.hierarchy(symbol.attribute)
            if hierarchy.coarser_level(symbol.level) is not None:
                rollable.append((cardinalities.get(symbol.name, 0), symbol.name))
        if rollable:
            cardinality, name = max(rollable)
            insights.append(
                Insight(
                    operation="p_roll_up",
                    argument=name,
                    score=min(1.0, frag),
                    reason=(
                        f"{len(cuboid)} cells over {cuboid.total(aggregate):.0f} "
                        f"units is fragmented; roll up {name} "
                        f"(cardinality {cardinality})"
                    ),
                )
            )

    cardinalities = dimension_cardinalities(cuboid)
    for symbol in cuboid.spec.pattern_dims:
        hierarchy = schema.hierarchy(symbol.attribute)
        if (
            cardinalities.get(symbol.name, 0) <= 1
            and hierarchy.finer_level(symbol.level) is not None
            and len(cuboid) > 0
        ):
            insights.append(
                Insight(
                    operation="p_drill_down",
                    argument=symbol.name,
                    score=0.3,
                    reason=(
                        f"dimension {symbol.name} is constant at level "
                        f"{symbol.level!r}; drill down for detail"
                    ),
                )
            )

    insights.sort(key=lambda i: (-i.score, i.operation, repr(i.argument)))
    return insights[:max_suggestions]
