"""Reporting: derived views over computed S-cuboids (OD matrices, diffs)."""

from repro.reports.diff import CuboidDiff, diff_cuboids
from repro.reports.insights import (
    Insight,
    concentration,
    dimension_cardinalities,
    fragmentation,
    suggest_operations,
)
from repro.reports.od_matrix import (
    ODMatrix,
    daily_od_matrices,
    od_matrix_from_cuboid,
)

__all__ = [
    "CuboidDiff",
    "Insight",
    "ODMatrix",
    "concentration",
    "daily_od_matrices",
    "diff_cuboids",
    "dimension_cardinalities",
    "fragmentation",
    "od_matrix_from_cuboid",
    "suggest_operations",
]
