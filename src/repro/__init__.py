"""repro — S-OLAP: pattern-based OLAP on sequence data.

A from-scratch Python reproduction of *OLAP on Sequence Data*
(Lo, Kao, Ho, Lee, Chui, Cheung — SIGMOD 2008): sequence cuboids over
event databases, pattern-based grouping and aggregation, the six S-OLAP
operations, and both the counter-based and inverted-index construction
strategies of the paper's prototype.

Quickstart::

    from repro import (
        Dimension, EventDatabase, Measure, Schema,
        CuboidSpec, PatternTemplate, SOLAPEngine,
    )

    schema = Schema([Dimension("time"), Dimension("card"),
                     Dimension("location")], [Measure("amount")])
    db = EventDatabase.from_records(schema, events)
    spec = CuboidSpec(
        template=PatternTemplate.substring(
            ("X", "Y", "Y", "X"),
            {"X": ("location", "location"), "Y": ("location", "location")},
        ),
        cluster_by=(("card", "card"),),
        sequence_by=(("time", True),),
    )
    cuboid, stats = SOLAPEngine(db).execute(spec)
    print(cuboid.tabulate())
"""

from repro.core import (
    AggregateScope,
    AggregateSpec,
    COUNT_ALL,
    CellRestriction,
    CuboidRepository,
    CuboidSpec,
    MatchingPredicate,
    PatternKind,
    PatternSymbol,
    PatternTemplate,
    QueryStats,
    SCube,
    SCuboid,
    SOLAPEngine,
    Session,
    TemplateMatcher,
    counter_based_cuboid,
    detail_summarization_counterexample,
    inverted_index_cuboid,
    precompute_indices,
    rollup_by_merge_is_valid,
    spec_coarser_or_equal,
)
from repro.errors import (
    EngineError,
    ExpressionError,
    OperationError,
    QueryLanguageError,
    QueryTimeoutError,
    SOLAPError,
    SchemaError,
    ServiceError,
    ServiceOverloadedError,
    SessionNotFoundError,
    SpecError,
)
from repro.events import (
    And,
    Between,
    Comparison,
    Dimension,
    EventDatabase,
    EventField,
    EventView,
    Expr,
    Hierarchy,
    InSet,
    Literal,
    Measure,
    Not,
    Or,
    PlaceholderField,
    Schema,
    Sequence,
    SequenceCache,
    SequenceGroup,
    SequenceGroupSet,
    TRUE,
    build_sequence_groups,
    conjoin,
)
from repro.index import IndexRegistry, InvertedIndex, build_index
from repro.service import Deadline, QueryService, ServiceConfig, ServiceMetrics

__version__ = "0.1.0"

__all__ = [
    "AggregateScope",
    "AggregateSpec",
    "And",
    "Between",
    "COUNT_ALL",
    "CellRestriction",
    "Comparison",
    "CuboidRepository",
    "CuboidSpec",
    "Deadline",
    "Dimension",
    "EngineError",
    "EventDatabase",
    "EventField",
    "EventView",
    "Expr",
    "ExpressionError",
    "Hierarchy",
    "IndexRegistry",
    "InSet",
    "InvertedIndex",
    "Literal",
    "MatchingPredicate",
    "Measure",
    "Not",
    "OperationError",
    "Or",
    "PatternKind",
    "PatternSymbol",
    "PatternTemplate",
    "PlaceholderField",
    "QueryLanguageError",
    "QueryService",
    "QueryStats",
    "QueryTimeoutError",
    "SCube",
    "SCuboid",
    "SOLAPEngine",
    "SOLAPError",
    "Schema",
    "SchemaError",
    "Sequence",
    "SequenceCache",
    "SequenceGroup",
    "SequenceGroupSet",
    "ServiceConfig",
    "ServiceError",
    "ServiceMetrics",
    "ServiceOverloadedError",
    "Session",
    "SessionNotFoundError",
    "SpecError",
    "TRUE",
    "TemplateMatcher",
    "build_index",
    "build_sequence_groups",
    "conjoin",
    "counter_based_cuboid",
    "detail_summarization_counterexample",
    "inverted_index_cuboid",
    "precompute_indices",
    "rollup_by_merge_is_valid",
    "spec_coarser_or_equal",
]
