"""Exception hierarchy for the S-OLAP library.

Every error raised by the library derives from :class:`SOLAPError` so that
callers can catch library failures with a single ``except`` clause while still
being able to discriminate the failure class when they need to.
"""

from __future__ import annotations


class SOLAPError(Exception):
    """Base class for all errors raised by the S-OLAP library."""


class SchemaError(SOLAPError):
    """A schema definition or a reference into a schema is invalid.

    Raised for unknown attributes, unknown hierarchy levels, duplicate
    dimension names, and values that cannot be mapped up a hierarchy.
    """


class SpecError(SOLAPError):
    """An S-cuboid specification is malformed or internally inconsistent.

    Examples: a pattern symbol bound twice with different domains, a matching
    predicate whose placeholder count disagrees with the template length, or
    an aggregate over an attribute that is not a measure.
    """


class ExpressionError(SOLAPError):
    """A predicate expression references an unknown field or placeholder."""


class QueryLanguageError(SOLAPError):
    """The textual S-OLAP query could not be lexed or parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class OperationError(SOLAPError):
    """An S-OLAP operation cannot be applied to the current specification.

    Examples: DE-TAIL on a length-1 template, P-ROLL-UP past the top of a
    concept hierarchy, or rolling up a symbol that has been sliced away.
    """


class IndexError_(SOLAPError):
    """An inverted-index operation was invoked on incompatible indices.

    The trailing underscore avoids shadowing the built-in ``IndexError``
    while keeping the name recognisable in tracebacks.
    """


class MatchLimitExceeded(SOLAPError):
    """A sequence produced more pattern occurrences than the configured cap.

    Subsequence enumeration is combinatorial; the limit turns a silent
    multi-minute hang on pathological data into an immediate, explainable
    failure.  Raise the cap (or use SUBSTRING templates) to proceed.
    """


class EngineError(SOLAPError):
    """The engine was asked to do something it cannot satisfy.

    Examples: executing a spec against a database whose schema does not
    declare the referenced attributes, or requesting an unknown strategy.
    """


class NotMergeableError(EngineError):
    """An aggregate's partial results cannot be merged across data shards.

    SUM/COUNT/MIN/MAX fold directly across data partitions and AVG ships
    (sum, count) pairs, but holistic aggregates (MEDIAN, percentiles,
    DISTINCT counts) have no bounded-size partial state (Gray et al.'s
    Data Cube classification).  The scatter-gather coordinator raises this
    from its mergeability check and falls back to single-shard execution.
    """

    def __init__(self, aggregate: str, message: "str | None" = None):
        self.aggregate = aggregate
        super().__init__(
            message
            or f"aggregate {aggregate} is holistic: partial results "
            "cannot be merged across shards"
        )


class StorageError(SOLAPError):
    """A segment store operation failed or a segment file is invalid.

    Raised for bad magic/version fields, checksum mismatches, truncated
    files, malformed section directories, and writes against read-only
    segment-backed databases.  Attach-time validation is O(1) (magic and
    length checks only); ``verify()`` performs the full CRC pass.
    """


class ServiceError(SOLAPError):
    """Base class for failures of the concurrent query service layer."""


class QueryTimeoutError(ServiceError):
    """A query exceeded its deadline and was cooperatively cancelled.

    Raised from the strategies' hot loops via
    :meth:`repro.core.stats.QueryStats.checkpoint`, or while the request
    was still waiting for an execution slot.
    """

    def __init__(
        self,
        message: str = "query deadline exceeded",
        budget_seconds: "float | None" = None,
        elapsed_seconds: "float | None" = None,
    ):
        self.budget_seconds = budget_seconds
        self.elapsed_seconds = elapsed_seconds
        if budget_seconds is not None and elapsed_seconds is not None:
            message = (
                f"{message} (budget {budget_seconds:.3f}s, "
                f"elapsed {elapsed_seconds:.3f}s)"
            )
        super().__init__(message)


class QueryCancelledError(ServiceError):
    """A query was cancelled by its client and cooperatively stopped.

    Raised from the same hot-loop checkpoints that enforce deadlines (see
    :class:`repro.service.deadline.CancelToken`): nothing is interrupted
    pre-emptively, the running strategy observes the token at its next
    cancellation point and unwinds.
    """

    def __init__(self, message: str = "query cancelled by client"):
        super().__init__(message)


class ServiceOverloadedError(ServiceError):
    """The service's bounded admission queue is full; the request was
    rejected immediately instead of piling up behind the executor."""

    def __init__(
        self,
        message: str = "service overloaded",
        inflight: "int | None" = None,
        limit: "int | None" = None,
    ):
        self.inflight = inflight
        self.limit = limit
        if inflight is not None and limit is not None:
            message = f"{message} ({inflight} requests in flight, limit {limit})"
        super().__init__(message)


class SessionNotFoundError(ServiceError):
    """The referenced service session does not exist (or was evicted)."""


class QueryNotFoundError(ServiceError):
    """The referenced asynchronous query job does not exist.

    Raised by the HTTP serving layer's job registry for unknown query ids
    and for jobs already pruned from the bounded finished-job history.
    """
