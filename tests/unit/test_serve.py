"""Unit tests for the HTTP serving layer's codecs, job registry and the
service-side cancellation plumbing it leans on."""

import threading

import pytest

from repro.core.stats import QueryStats
from repro.errors import (
    QueryCancelledError,
    QueryNotFoundError,
    QueryTimeoutError,
    ServiceOverloadedError,
)
from repro.serve import JobRegistry, codecs
from repro.service import QueryService
from repro.service.deadline import CancelScope, CancelToken, Deadline
from tests.conftest import figure8_spec, make_figure8_db


@pytest.fixture()
def service():
    svc = QueryService(make_figure8_db())
    yield svc
    svc.shutdown()


@pytest.fixture()
def spec():
    return figure8_spec(("A", "B"))


# ----------------------------------------------------------------------
# CancelToken / CancelScope
# ----------------------------------------------------------------------
class TestCancelPrimitives:
    def test_token_check_is_noop_until_cancelled(self):
        token = CancelToken()
        token.check()
        assert not token.cancelled
        token.cancel()
        token.cancel()  # idempotent
        assert token.cancelled
        with pytest.raises(QueryCancelledError):
            token.check()

    def test_scope_without_token_is_the_plain_deadline(self):
        deadline = Deadline(5.0)
        assert CancelScope.wrap(deadline, None) is deadline
        assert CancelScope.wrap(None, None) is None

    def test_scope_fuses_token_and_deadline(self):
        token = CancelToken()
        scope = CancelScope.wrap(Deadline(30.0), token)
        scope.check()
        assert scope.budget_seconds == 30.0
        assert scope.remaining() > 0
        assert not scope.expired()
        token.cancel()
        with pytest.raises(QueryCancelledError):
            scope.check()

    def test_scope_cancel_beats_expired_deadline(self):
        token = CancelToken()
        token.cancel()
        scope = CancelScope.wrap(Deadline(1e-9), token)
        # Both tripped: the explicit cancel wins the race deliberately.
        with pytest.raises(QueryCancelledError):
            scope.check()

    def test_unbounded_scope_reports_no_deadline(self):
        scope = CancelScope.wrap(None, CancelToken())
        assert scope.budget_seconds is None
        assert scope.remaining() is None
        assert scope.elapsed() == 0.0
        assert not scope.expired()
        scope.check()

    def test_expired_deadline_still_raises_through_scope(self):
        scope = CancelScope.wrap(Deadline(1e-9), CancelToken())
        with pytest.raises(QueryTimeoutError):
            scope.check()


# ----------------------------------------------------------------------
# Service-side cancellation
# ----------------------------------------------------------------------
class TestServiceCancel:
    def test_cancel_while_waiting_for_engine_lock(self, service, spec):
        """A cancel that lands while the query is queued is observed."""
        token = CancelToken()
        errors = []
        started = threading.Event()

        def run():
            started.set()
            try:
                service.execute(spec, cancel=token)
            except Exception as error:  # noqa: BLE001 - collected for assert
                errors.append(error)

        with service._engine_lock:
            thread = threading.Thread(target=run)
            thread.start()
            started.wait(5.0)
            token.cancel()
        thread.join(10.0)
        assert not thread.is_alive()
        assert len(errors) == 1
        assert isinstance(errors[0], QueryCancelledError)
        assert service.metrics["cancelled_total"] == 1

    def test_uncancelled_token_does_not_disturb_query(self, service, spec):
        cuboid, stats = service.execute(spec, cancel=CancelToken())
        plain, __ = service.engine.execute(spec)
        assert cuboid.to_dict() == plain.to_dict()
        assert service.metrics["cancelled_total"] == 0

    def test_stream_query_final_matches_blocking_path(self, service, spec):
        estimates = list(service.stream_query(spec, chunk_size=1))
        assert len(estimates) >= 2
        assert estimates[-1].is_final
        cuboid, __ = service.execute(spec)
        assert estimates[-1].partial.to_dict() == cuboid.to_dict()
        assert service.metrics["streams_total"] == 1
        assert service.metrics["stream_chunks_total"] == len(estimates)

    def test_stream_cancel_mid_flight(self, service, spec):
        token = CancelToken()
        stream = service.stream_query(spec, chunk_size=1, cancel=token)
        first = next(stream)
        assert not first.is_final
        token.cancel()
        with pytest.raises(QueryCancelledError):
            next(stream)
        assert service.metrics["cancelled_total"] == 1
        # The execution slot must have been released.
        assert service.inflight == 0

    def test_abandoned_stream_releases_slot_and_counts_cancel(
        self, service, spec
    ):
        stream = service.stream_query(spec, chunk_size=1)
        next(stream)
        stream.close()  # what the HTTP layer does on client disconnect
        assert service.metrics["cancelled_total"] == 1
        assert service.inflight == 0

    def test_session_stream_records_final_cuboid(self, service, spec):
        session_id = service.open_session(spec)
        estimates = list(service.session_stream(session_id, chunk_size=2))
        assert estimates[-1].is_final
        cached = service.session_result(session_id)
        assert cached is not None
        assert cached.to_dict() == estimates[-1].partial.to_dict()


# ----------------------------------------------------------------------
# Codecs
# ----------------------------------------------------------------------
class TestCodecs:
    @pytest.fixture()
    def cuboid(self, service, spec):
        cuboid, __ = service.execute(spec)
        return cuboid

    def test_encode_cells_matches_canonical_order(self, cuboid):
        encoded = codecs.encode_cells(cuboid)
        assert len(encoded) == len(cuboid)
        flattened = [
            (cell["group"], cell["cell"]) for cell in encoded
        ]
        expected = [
            (
                [codecs._json_value(v) for v in g],
                [codecs._json_value(v) for v in c],
            )
            for g, c, __ in cuboid
        ]
        assert flattened == expected

    def test_page_cells_cursor_walk_covers_everything(self, cuboid):
        seen = []
        offset = 0
        while offset is not None:
            page = codecs.page_cells(cuboid, offset=offset, limit=2)
            assert len(page["cells"]) <= 2
            seen.extend(page["cells"])
            offset = page["page"]["next_offset"]
        assert seen == codecs.encode_cells(cuboid)

    def test_page_cells_rejects_bad_windows(self, cuboid):
        with pytest.raises(ValueError):
            codecs.page_cells(cuboid, offset=-1)
        with pytest.raises(ValueError):
            codecs.page_cells(cuboid, limit=0)
        with pytest.raises(ValueError):
            codecs.page_cells(cuboid, limit=codecs.MAX_PAGE_LIMIT + 1)

    def test_page_beyond_end_is_empty_with_no_cursor(self, cuboid):
        page = codecs.page_cells(cuboid, offset=10_000, limit=5)
        assert page["cells"] == []
        assert page["page"]["next_offset"] is None

    def test_parse_page_params(self):
        assert codecs.parse_page_params({}) == (0, codecs.DEFAULT_PAGE_LIMIT)
        assert codecs.parse_page_params(
            {"offset": "4", "limit": "9"}
        ) == (4, 9)
        for bad in (
            {"offset": "x"},
            {"limit": "x"},
            {"offset": "-1"},
            {"limit": "0"},
            {"limit": str(codecs.MAX_PAGE_LIMIT + 1)},
        ):
            with pytest.raises(ValueError):
                codecs.parse_page_params(bad)

    def test_parse_timeout(self):
        assert codecs.parse_timeout({}) == "absent"
        assert codecs.parse_timeout({"timeout": None}) is None
        assert codecs.parse_timeout({"timeout": 2}) == 2.0
        for bad in ({"timeout": 0}, {"timeout": -1}, {"timeout": "2"},
                    {"timeout": True}):
            with pytest.raises(ValueError):
                codecs.parse_timeout(bad)

    def test_estimate_frames_scale_counts(self, service, spec):
        frames = [
            codecs.encode_estimate(e)
            for e in service.stream_query(spec, chunk_size=1)
        ]
        assert len(frames) >= 2
        partial = frames[0]
        assert not partial["is_final"]
        for cell in partial["cells"]:
            expected = round(
                cell["values"]["COUNT(*)"] / partial["fraction"], 3
            )
            assert cell["estimated"]["COUNT(*)"] == expected
        final = frames[-1]
        assert final["is_final"]
        assert all("estimated" not in cell for cell in final["cells"])

    def test_dumps_round_trips(self, cuboid):
        import json

        doc = codecs.page_cells(cuboid, 0, 3)
        assert json.loads(codecs.dumps(doc)) == doc


# ----------------------------------------------------------------------
# Job registry
# ----------------------------------------------------------------------
class TestJobRegistry:
    def test_submit_poll_result(self, service, spec):
        jobs = JobRegistry(service)
        job = jobs.submit(spec)
        assert job.wait(10.0)
        assert job.status == "done"
        cuboid, stats = jobs.result(job.job_id)
        plain, __ = service.engine.execute(spec)
        assert cuboid.to_dict() == plain.to_dict()
        assert isinstance(stats, QueryStats)
        doc = job.describe()
        assert doc["status"] == "done"
        assert doc["cell_count"] == len(cuboid)

    def test_unknown_job_raises_not_found(self, service):
        jobs = JobRegistry(service)
        with pytest.raises(QueryNotFoundError):
            jobs.get("nope")
        with pytest.raises(QueryNotFoundError):
            jobs.cancel("nope")

    def test_result_of_unfinished_job_raises(self, service, spec):
        jobs = JobRegistry(service)
        with service._engine_lock:
            job = jobs.submit(spec)
            with pytest.raises(QueryNotFoundError):
                jobs.result(job.job_id)
            job.token.cancel()
        assert job.wait(10.0)

    def test_cancel_inflight_job(self, service, spec):
        jobs = JobRegistry(service)
        with service._engine_lock:
            job = jobs.submit(spec)
            jobs.cancel(job.job_id)
        assert job.wait(10.0)
        assert job.status == "cancelled"
        assert job.error_type == "QueryCancelledError"
        with pytest.raises(QueryNotFoundError):
            jobs.result(job.job_id)

    def test_bad_query_becomes_job_error(self, service):
        bad = figure8_spec(("A", "B"), group_by=(("no-such-attr", "x"),))
        jobs = JobRegistry(service)
        job = jobs.submit(bad)
        assert job.wait(10.0)
        assert job.status == "error"
        assert job.error

    def test_history_pruning_drops_oldest_finished(self, service, spec):
        jobs = JobRegistry(service, history_limit=2)
        finished = [jobs.submit(spec) for __ in range(3)]
        for job in finished:
            assert job.wait(10.0)
        # Exactly history_limit jobs remain pollable.
        assert len(jobs) == 2
        remaining = {job.job_id for job in finished if job.job_id in
                     jobs._jobs}
        assert len(remaining) == 2

    def test_submit_sheds_when_service_overloaded(self, service, spec):
        import time

        jobs = JobRegistry(service)
        limit = service.config.admission_limit
        blocked = []
        with service._engine_lock:
            try:
                for __ in range(limit):
                    blocked.append(jobs.submit(spec))
                # The workers bump the service's inflight count from
                # their own threads; wait for the window to fill before
                # asserting the over-limit submit is shed at the door.
                deadline = time.monotonic() + 10.0
                while (
                    service.inflight < limit
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
                assert service.inflight >= limit
                with pytest.raises(ServiceOverloadedError):
                    jobs.submit(spec)
            finally:
                for job in blocked:
                    job.token.cancel()
        for job in blocked:
            assert job.wait(10.0)

    def test_history_limit_validation(self, service):
        with pytest.raises(ValueError):
            JobRegistry(service, history_limit=0)
