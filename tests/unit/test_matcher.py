"""Unit tests for the pattern matcher (occurrences, restrictions, predicates)."""


from repro import (
    CellRestriction,
    Comparison,
    Literal,
    MatchingPredicate,
    PatternSymbol,
    PlaceholderField,
    TemplateMatcher,
    build_sequence_groups,
)
from tests.conftest import (
    location_template,
    make_figure8_db,
)


def get_sequences(db=None):
    db = db or make_figure8_db()
    groups = build_sequence_groups(db, None, [("card", "card")], [("time", True)])
    by_card = {seq.cluster_key[0]: seq for seq in groups.single_group()}
    return db, by_card


def matcher_for(positions, db, kind="substring", restriction=None, predicate=None):
    template = location_template(positions, kind)
    return TemplateMatcher(
        template,
        db.schema,
        restriction or CellRestriction.LEFT_MAXIMALITY,
        predicate,
    )


class TestSubstringOccurrences:
    def test_simple_windows(self):
        db, seqs = get_sequences()
        matcher = matcher_for(("X", "Y"), db)
        occurrences = list(matcher.iter_occurrences(seqs[1012]))
        assert occurrences == [(("Clarendon", "Pentagon"), (0, 1))]

    def test_left_to_right_order(self):
        db, seqs = get_sequences()
        matcher = matcher_for(("X", "Y"), db)
        starts = [indices[0] for __, indices in matcher.iter_occurrences(seqs[688])]
        assert starts == sorted(starts)

    def test_repeated_symbol_equality(self):
        db, seqs = get_sequences()
        matcher = matcher_for(("X", "X"), db)
        # s1 contains (Pentagon, Pentagon) and (Wheaton, Wheaton)
        values = [v for v, __ in matcher.iter_occurrences(seqs[688])]
        assert values == [
            ("Pentagon", "Pentagon"),
            ("Wheaton", "Wheaton"),
        ]

    def test_too_short_sequence(self):
        db, seqs = get_sequences()
        matcher = matcher_for(("X", "Y", "Y", "X"), db)
        assert list(matcher.iter_occurrences(seqs[1012])) == []

    def test_xyyx_occurrence(self):
        db, seqs = get_sequences()
        matcher = matcher_for(("X", "Y", "Y", "X"), db)
        values = [v for v, __ in matcher.iter_occurrences(seqs[23456])]
        assert values == [("Pentagon", "Wheaton", "Wheaton", "Pentagon")]

    def test_fixed_symbol_restriction(self):
        db, seqs = get_sequences()
        template = location_template(("X", "Y")).replace_symbol(
            "X", PatternSymbol("X", "location", "station", fixed="Wheaton")
        )
        matcher = TemplateMatcher(template, db.schema)
        values = [v for v, __ in matcher.iter_occurrences(seqs[688])]
        assert values == [("Wheaton", "Wheaton"), ("Wheaton", "Pentagon")]

    def test_within_constraint(self):
        db, seqs = get_sequences()
        template = location_template(("X", "Y")).replace_symbol(
            "X",
            PatternSymbol("X", "location", "station", within=("district", "D10")),
        )
        matcher = TemplateMatcher(template, db.schema)
        values = [v[0] for v, __ in matcher.iter_occurrences(seqs[688])]
        assert values == ["Pentagon", "Pentagon"]  # both Pentagon starts

    def test_district_level_matching(self):
        db, seqs = get_sequences()
        template = location_template(("X", "X")).replace_symbol(
            "X", PatternSymbol("X", "location", "district")
        )
        matcher = TemplateMatcher(template, db.schema)
        values = [v for v, __ in matcher.iter_occurrences(seqs[23456])]
        # Pentagon(D10),Wheaton(D20),Wheaton(D20),Pentagon(D10)
        assert values == [("D20", "D20")]


class TestSubsequenceOccurrences:
    def test_gapped_match(self):
        db, seqs = get_sequences()
        matcher = matcher_for(("X", "Y"), db, kind="subsequence")
        values = {v for v, __ in matcher.iter_occurrences(seqs[77])}
        # <Wheaton, Clarendon, Deanwood, Wheaton> subsequences include the
        # gapped (Wheaton, Deanwood) and (Clarendon, Wheaton).
        assert ("Wheaton", "Deanwood") in values
        assert ("Clarendon", "Wheaton") in values

    def test_lexicographic_index_order(self):
        db, seqs = get_sequences()
        matcher = matcher_for(("X", "Y"), db, kind="subsequence")
        indices = [i for __, i in matcher.iter_occurrences(seqs[1012])]
        assert indices == [(0, 1)]
        indices4 = [i for __, i in matcher.iter_occurrences(seqs[77])]
        assert indices4 == sorted(indices4)

    def test_substring_occurrences_are_subsequence_occurrences(self):
        db, seqs = get_sequences()
        sub = matcher_for(("X", "Y", "Y"), db)
        subseq = matcher_for(("X", "Y", "Y"), db, kind="subsequence")
        for seq in seqs.values():
            substring_values = {v for v, __ in sub.iter_occurrences(seq)}
            subsequence_values = {v for v, __ in subseq.iter_occurrences(seq)}
            assert substring_values <= subsequence_values

    def test_repeated_symbol_subsequence(self):
        db, seqs = get_sequences()
        matcher = matcher_for(("X", "X"), db, kind="subsequence")
        values = {v for v, __ in matcher.iter_occurrences(seqs[77])}
        assert values == {("Wheaton", "Wheaton")}


class TestCellRestrictions:
    def test_left_maximality_one_assignment_per_cell(self):
        db, seqs = get_sequences()
        matcher = matcher_for(("X", "Y"), db)
        assignments = matcher.assignments(seqs[688])
        assert all(len(contents) == 1 for contents in assignments.values())
        # (Pentagon, Wheaton) occurs once at window 2-3 within s1's rows.
        content = assignments[("Pentagon", "Wheaton")][0]
        assert len(content) == 2

    def test_all_matched_counts_every_occurrence(self):
        db, seqs = get_sequences()
        # aabaa-style: (X, X) on <...Pentagon,Pentagon...Wheaton,Wheaton...>
        matcher = matcher_for(
            ("X", "Y"), db, restriction=CellRestriction.ALL_MATCHED
        )
        assignments = matcher.assignments(seqs[688])
        total = sum(len(c) for c in assignments.values())
        assert total == 5  # five windows in a 6-event sequence

    def test_data_go_assigns_whole_sequence(self):
        db, seqs = get_sequences()
        matcher = matcher_for(
            ("X", "Y"), db, restriction=CellRestriction.LEFT_MAXIMALITY_DATA
        )
        assignments = matcher.assignments(seqs[688])
        for contents in assignments.values():
            assert contents == [tuple(seqs[688].rows)]

    def test_left_maximality_picks_first_qualifying(self):
        db, seqs = get_sequences()
        # Predicate: first event action must be "out" — for s1 the first
        # (Pentagon, Wheaton) window starts at an "in" event (pos 2)?  Use
        # a simpler check: require x1.action = "in"; first (Pentagon,
        # Pentagon) window starts at position 1 ("out"), so it must be
        # skipped and the cell gets no assignment.
        predicate = MatchingPredicate(
            ("x1", "y1"),
            Comparison(PlaceholderField("x1", "action"), "=", Literal("in")),
        )
        matcher = matcher_for(("X", "X"), db, predicate=predicate)
        assignments = matcher.assignments(seqs[688])
        # (Pentagon, Pentagon) window is at positions (1, 2): action "out"
        # at position 1 -> disqualified.  (Wheaton, Wheaton) at (3, 4)?
        # position 3 is "out" too -> disqualified.
        assert assignments == {}


class TestPredicates:
    def test_in_out_predicate(self):
        db, seqs = get_sequences()
        predicate = MatchingPredicate(
            ("x1", "y1"),
            Comparison(PlaceholderField("x1", "action"), "=", Literal("in"))
            & Comparison(PlaceholderField("y1", "action"), "=", Literal("out")),
        )
        matcher = matcher_for(("X", "Y"), db, predicate=predicate)
        # s2 <Pentagon,Wheaton,Wheaton,Pentagon>: windows at 0 and 2 qualify.
        assignments = matcher.assignments(seqs[23456])
        assert set(assignments) == {
            ("Pentagon", "Wheaton"),
            ("Wheaton", "Pentagon"),
        }

    def test_cross_placeholder_predicate(self):
        db, seqs = get_sequences()
        predicate = MatchingPredicate(
            ("x1", "y1"),
            Comparison(
                PlaceholderField("x1", "location"),
                "!=",
                PlaceholderField("y1", "location"),
            ),
        )
        matcher = matcher_for(("X", "Y"), db, predicate=predicate)
        assignments = matcher.assignments(seqs[688])
        assert ("Pentagon", "Pentagon") not in assignments
        assert ("Glenmont", "Pentagon") in assignments


class TestPerCellQueries:
    def test_contains_instantiation(self):
        db, seqs = get_sequences()
        matcher = matcher_for(("X", "Y", "Y", "X"), db)
        assert matcher.contains_instantiation(
            seqs[23456], ("Pentagon", "Wheaton", "Wheaton", "Pentagon")
        )
        assert not matcher.contains_instantiation(
            seqs[23456], ("Wheaton", "Pentagon", "Pentagon", "Wheaton")
        )

    def test_cell_contents_respects_predicate(self):
        db, seqs = get_sequences()
        predicate = MatchingPredicate(
            ("x1", "y1"),
            Comparison(PlaceholderField("x1", "action"), "=", Literal("in")),
        )
        matcher = matcher_for(("X", "Y"), db, predicate=predicate)
        ok = matcher.cell_contents(seqs[1012], ("Clarendon", "Pentagon"))
        assert len(ok) == 1
        # (Pentagon, Pentagon) in s1 starts on an "out" event.
        none = matcher.cell_contents(seqs[688], ("Pentagon", "Pentagon"))
        assert none == []

    def test_unique_instantiations_no_duplicates(self):
        db, seqs = get_sequences()
        matcher = matcher_for(("X", "Y"), db)
        patterns = matcher.unique_instantiations(seqs[688])
        assert len(patterns) == len(set(patterns))
        assert ("Pentagon", "Pentagon") in patterns

    def test_cell_key_positions_key_roundtrip(self):
        db, __ = get_sequences()
        matcher = matcher_for(("X", "Y", "Y", "X"), db)
        cell = matcher.cell_key(("a", "b", "b", "a"))
        assert cell == ("a", "b")
        assert matcher.positions_key(cell) == ("a", "b", "b", "a")
