"""Unit tests for interactive navigation sessions."""

import pytest

from repro import OperationError, SOLAPEngine, Session
from tests.conftest import figure8_spec, make_figure8_db


def make_session(strategy="cb", **kwargs):
    engine = SOLAPEngine(make_figure8_db())
    return Session(engine, figure8_spec(("X", "Y"), **kwargs), strategy=strategy)


class TestExecution:
    def test_run_records_history(self):
        session = make_session()
        cuboid, stats = session.run()
        assert len(session.history) == 1
        assert len(cuboid) > 0

    def test_cuboid_property_runs_lazily(self):
        session = make_session()
        assert session.cuboid is not None
        assert len(session.history) == 1

    def test_cumulative_stats(self):
        session = make_session()
        session.run()
        session.append("Z", attribute="location", level="station")
        session.run()
        total = session.cumulative_stats()
        assert total.sequences_scanned == 8  # 4 + 4 with CB


class TestNavigation:
    def test_operation_chain(self):
        session = make_session()
        session.run()
        session.append("Z", attribute="location", level="station")
        assert session.spec.template.positions == ("X", "Y", "Z")
        session.de_tail()
        assert session.spec.template.positions == ("X", "Y")
        session.prepend("W", attribute="location", level="station")
        assert session.spec.template.positions == ("W", "X", "Y")
        session.de_head()
        assert session.spec.template.positions == ("X", "Y")

    def test_p_roll_up_and_drill_down(self):
        session = make_session()
        session.p_roll_up("Y")
        assert session.spec.template.symbol("Y").level == "district"
        session.p_drill_down("Y")
        assert session.spec.template.symbol("Y").level == "station"

    def test_slice_cell(self):
        session = make_session()
        session.slice_cell(("Pentagon", "Wheaton"))
        assert session.spec.template.symbol("X").fixed == "Pentagon"
        assert session.spec.template.symbol("Y").fixed == "Wheaton"
        cuboid, __ = session.run()
        assert set(cuboid.cell_keys()) <= {("Pentagon", "Wheaton")}

    def test_slice_cell_wrong_arity(self):
        session = make_session()
        with pytest.raises(OperationError):
            session.slice_cell(("Pentagon",))

    def test_global_operations(self):
        session = make_session(group_by=(("location", "district"),))
        session.slice_global("location", "D10")
        cuboid, __ = session.run()
        assert cuboid.group_keys() == (("D10",),)
        session.unslice_global("location")
        session.dice_global("location", ("D10", "D20"))
        cuboid, __ = session.run()
        assert set(cuboid.group_keys()) <= {("D10",), ("D20",)}

    def test_unslice_pattern(self):
        session = make_session()
        session.slice_pattern("X", "Pentagon")
        session.unslice_pattern("X")
        assert session.spec.template.symbol("X").fixed is None

    def test_replace_spec(self):
        session = make_session()
        other = figure8_spec(("X", "Y", "Y", "X"))
        session.replace_spec(other)
        assert session.spec == other

    def test_explain_reflects_current_spec(self):
        session = make_session(strategy="ii")
        session.run()
        session.append("Y")
        plan = session.explain()
        assert "S-OLAP query plan" in plan
        assert "m=3" in plan.render()


class TestCacheInteraction:
    def test_detail_after_append_hits_cache(self):
        session = make_session(strategy="ii")
        session.run()
        session.append("Z", attribute="location", level="station")
        session.run()
        session.de_tail()
        __, stats = session.run()
        assert stats.cuboid_cache_hit

    def test_results_consistent_between_strategies(self):
        results = {}
        for strategy in ("cb", "ii"):
            session = make_session(strategy=strategy)
            session.run()
            session.append("Y")
            cuboid, __ = session.run()
            results[strategy] = cuboid.to_dict()
        assert results["cb"] == results["ii"]
