"""Unit tests for the benchmark harness (tables, measurement, cumulation)."""

import pytest

from repro.bench import (
    StepResult,
    TextTable,
    comparison_table,
    cumulative,
    measure,
    series_table,
    shape_check,
)


def step(label, ms, scanned, bytes_=0, cells=1):
    return StepResult(
        label=label,
        strategy="CB",
        runtime_ms=ms,
        sequences_scanned=scanned,
        index_bytes_built=bytes_,
        cells=cells,
    )


class TestMeasure:
    def test_returns_result_and_elapsed(self):
        result, elapsed = measure(lambda: 41 + 1)
        assert result == 42
        assert elapsed >= 0

    def test_cumulative(self):
        assert cumulative([1, 2, 3]) == [1, 3, 6]
        assert cumulative([]) == []


class TestStepResult:
    def test_index_mb(self):
        assert step("q", 1.0, 10, bytes_=2_000_000).index_mb == 2.0


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(["a", "bb"])
        table.add("x", 1.5)
        text = table.render("Title")
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[2] and "bb" in lines[2]
        assert "1.50" in text  # float formatting

    def test_wrong_arity_raises(self):
        table = TextTable(["a"])
        with pytest.raises(ValueError):
            table.add(1, 2)

    def test_no_title(self):
        table = TextTable(["col"])
        table.add("v")
        assert not table.render().startswith("\n")


class TestComparisonTable:
    def test_layout_and_totals(self):
        cb = [step("Q1", 10.0, 100), step("Q2", 20.0, 100)]
        ii = [
            step("Q1", 5.0, 100, bytes_=1_000_000),
            step("Q2", 1.0, 10),
        ]
        text = comparison_table(["Q1", "Q2"], cb, ii, "T")
        assert "TOTAL" in text
        assert "30.00" in text  # CB ms total
        assert "200" in text  # CB scanned total
        assert "1.00" in text  # II MB total


class TestSeriesTable:
    def test_cumulative_annotations(self):
        runs = {
            "CB": [step("Q1", 10.0, 100), step("Q2", 10.0, 100)],
            "II": [step("Q1", 1.0, 0), step("Q2", 2.0, 5)],
        }
        text = series_table(runs, "Fig")
        assert "20.0ms (200)" in text
        assert "3.0ms (5)" in text

    def test_empty_runs(self):
        assert series_table({}, "Nothing") == "Nothing"


class TestShapeCheck:
    def test_pass_fail(self):
        assert shape_check("ok", True).startswith("[PASS]")
        assert shape_check("bad", False).startswith("[FAIL]")
