"""Unit tests for the data generators (zipf, markov, synthetic, transit,
clickstream)."""

import random

import pytest

from repro.datagen import (
    ClickstreamConfig,
    MarkovChain,
    SyntheticConfig,
    TransitConfig,
    ZipfDistribution,
    build_hierarchy,
    generate_clickstream,
    generate_event_database,
    generate_symbol_sequences,
    generate_transit,
    remove_crawler_sessions,
    sample_poisson,
    zipf_partition_sizes,
)
from repro.datagen.clickstream import N_CATEGORIES, N_LEGWEAR_PRODUCTS, build_schema


class TestZipf:
    def test_probabilities_sum_to_one(self):
        dist = ZipfDistribution(100, 0.9)
        assert abs(sum(dist.probabilities) - 1.0) < 1e-9

    def test_skew_orders_probabilities(self):
        dist = ZipfDistribution(10, 1.0)
        probs = dist.probabilities
        assert all(probs[i] >= probs[i + 1] for i in range(9))

    def test_theta_zero_is_uniform(self):
        dist = ZipfDistribution(4, 0.0)
        assert all(abs(p - 0.25) < 1e-9 for p in dist.probabilities)

    def test_samples_in_range_and_skewed(self):
        rng = random.Random(1)
        dist = ZipfDistribution(10, 1.2, rng)
        samples = dist.sample_many(2000)
        assert all(0 <= s < 10 for s in samples)
        assert samples.count(0) > samples.count(9)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfDistribution(0, 0.9)
        with pytest.raises(ValueError):
            ZipfDistribution(5, -1)

    def test_partition_sizes_sum_and_nonzero(self):
        sizes = zipf_partition_sizes(100, 20, 0.9)
        assert sum(sizes) == 100
        assert len(sizes) == 20
        assert all(size >= 1 for size in sizes)
        assert sizes[0] >= sizes[-1]

    def test_partition_too_many_groups(self):
        with pytest.raises(ValueError):
            zipf_partition_sizes(3, 5, 0.9)

    def test_poisson_mean_roughly_right(self):
        rng = random.Random(7)
        samples = [sample_poisson(20, rng) for __ in range(2000)]
        mean = sum(samples) / len(samples)
        assert 19 < mean < 21

    def test_poisson_large_mean_normal_path(self):
        rng = random.Random(7)
        value = sample_poisson(100, rng)
        assert value >= 0

    def test_poisson_zero(self):
        assert sample_poisson(0, random.Random(1)) == 0


class TestMarkov:
    def test_deterministic_given_seed(self):
        a = MarkovChain(20, 0.9, random.Random(3)).generate(50)
        b = MarkovChain(20, 0.9, random.Random(3)).generate(50)
        assert a == b

    def test_symbols_in_range(self):
        chain = MarkovChain(10, 0.9, random.Random(4))
        assert all(0 <= s < 10 for s in chain.generate(100))

    def test_transition_probabilities_form_distribution(self):
        chain = MarkovChain(6, 0.9, random.Random(5))
        total = sum(chain.transition_probability(0, t) for t in range(6))
        assert abs(total - 1.0) < 1e-9

    def test_empty_generation(self):
        chain = MarkovChain(5, 0.9, random.Random(6))
        assert chain.generate(0) == []


class TestSynthetic:
    def test_dataset_name(self):
        config = SyntheticConfig(I=100, L=20, theta=0.9, D=500)
        assert config.name == "I100.L20.theta0.9.D500"

    def test_sequence_count_and_lengths(self):
        config = SyntheticConfig(D=50, L=10, seed=1)
        sequences = generate_symbol_sequences(config)
        assert len(sequences) == 50
        assert all(len(s) >= config.min_length for s in sequences)
        mean = sum(len(s) for s in sequences) / 50
        assert 7 < mean < 13

    def test_determinism(self):
        config = SyntheticConfig(D=20, L=8, seed=2)
        assert generate_symbol_sequences(config) == generate_symbol_sequences(config)

    def test_hierarchy_levels_and_sizes(self):
        config = SyntheticConfig(I=100)
        hierarchy = build_hierarchy(config)
        assert hierarchy.levels == ("symbol", "group", "supergroup")
        groups = {hierarchy.map_value(f"e{i:03d}", "group") for i in range(100)}
        supers = {
            hierarchy.map_value(f"e{i:03d}", "supergroup") for i in range(100)
        }
        assert len(groups) == 20
        assert len(supers) == 5

    def test_event_database_pipeline_rebuilds_sequences(self):
        config = SyntheticConfig(D=10, L=6, seed=3)
        db = generate_event_database(config)
        from repro import build_sequence_groups

        groups = build_sequence_groups(db, None, [("seq", "seq")], [("ts", True)])
        rebuilt = {
            seq.cluster_key[0]: list(seq.symbols("symbol", "symbol"))
            for seq in groups.single_group()
        }
        original = generate_symbol_sequences(config)
        for seq_id, symbols in enumerate(original):
            assert rebuilt[seq_id] == symbols


class TestTransit:
    def test_generation_shape(self):
        db = generate_transit(TransitConfig(n_cards=20, n_days=2, seed=1))
        assert len(db) > 0
        assert set(db.distinct("action")) <= {"in", "out"}

    def test_alternating_actions_per_card_day(self):
        db = generate_transit(TransitConfig(n_cards=10, n_days=2, seed=2))
        from repro import build_sequence_groups

        groups = build_sequence_groups(
            db,
            None,
            [("card-id", "individual"), ("time", "day")],
            [("time", True)],
        )
        for sequence in groups.all_sequences():
            actions = [e["action"] for e in sequence.events()]
            assert actions[::2] == ["in"] * len(actions[::2])
            assert actions[1::2] == ["out"] * len(actions[1::2])

    def test_hierarchies_resolve(self):
        config = TransitConfig(n_cards=5, n_days=1, seed=3)
        db = generate_transit(config)
        schema = db.schema
        assert schema.hierarchy("location").levels == ("station", "district")
        assert schema.hierarchy("card-id").levels == ("individual", "fare-group")
        assert schema.hierarchy("time").levels == ("minute", "day", "week")
        fare = schema.map_value("card-id", 0, "fare-group")
        assert fare in ("student", "regular", "senior")

    def test_determinism(self):
        a = generate_transit(TransitConfig(n_cards=5, n_days=1, seed=4))
        b = generate_transit(TransitConfig(n_cards=5, n_days=1, seed=4))
        assert a.column("location") == b.column("location")


class TestClickstream:
    def test_schema_shape(self):
        schema = build_schema()
        hierarchy = schema.hierarchy("page")
        categories = {
            hierarchy.map_value(page, "page-category")
            for page in hierarchy._mappings["page-category"]
        }
        assert len(categories) == N_CATEGORIES
        legwear = hierarchy.children("page-category", "Legwear")
        assert len(legwear) == N_LEGWEAR_PRODUCTS

    def test_generation_and_crawler_removal(self):
        config = ClickstreamConfig(
            n_sessions=300, crawler_fraction=0.05, crawler_length=150, seed=1
        )
        raw = generate_clickstream(config)
        clean = remove_crawler_sessions(raw, max_clicks=100)
        assert len(clean) < len(raw)
        counts = {}
        for value in clean.column("session-id"):
            counts[value] = counts.get(value, 0) + 1
        assert max(counts.values()) <= 100

    def test_assortment_to_legwear_dominates(self):
        db = generate_clickstream(ClickstreamConfig(n_sessions=800, seed=2))
        from repro import SOLAPEngine
        from repro.datagen import two_step_spec

        cuboid, __ = SOLAPEngine(db).execute(two_step_spec(), "cb")
        top = cuboid.argmax()
        assert top is not None
        assert top[1] == ("Assortment", "Legwear")

    def test_determinism(self):
        a = generate_clickstream(ClickstreamConfig(n_sessions=50, seed=3))
        b = generate_clickstream(ClickstreamConfig(n_sessions=50, seed=3))
        assert a.column("page") == b.column("page")
