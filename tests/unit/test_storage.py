"""Unit tests for the mmap-backed columnar segment store."""

import pickle
from array import array

import pytest

from repro import Dimension, EventDatabase, Hierarchy, Measure, Schema, SOLAPEngine
from repro.cli import main
from repro.errors import StorageError
from repro.events.sequence import build_sequence_groups
from repro.obs.metrics import MetricsRegistry
from repro.service import QueryService, ServiceConfig
from repro.storage import (
    FORMAT_VERSION,
    MAGIC,
    SegmentReader,
    SegmentWriter,
    StorageManager,
    attach_store,
    is_segment_store,
    register_storage_metrics,
)
from repro.storage import format as fmt

GROUP_OF = {"a": "G1", "b": "G1", "c": "G2", "d": "G2"}

CLUSTER_BY = (("seq", "seq"),)
SEQUENCE_BY = (("ts", True),)


def make_schema(with_measure: bool = False) -> Schema:
    measures = [Measure("amount")] if with_measure else []
    return Schema(
        [
            Dimension("seq"),
            Dimension("ts"),
            Dimension(
                "symbol",
                Hierarchy("symbol", ("symbol", "group"), {"group": GROUP_OF}),
            ),
        ],
        measures,
    )


def make_db(sequences, with_measure: bool = False) -> EventDatabase:
    db = EventDatabase(make_schema(with_measure))
    for seq_id, symbols in enumerate(sequences):
        for position, symbol in enumerate(symbols):
            event = {"seq": seq_id, "ts": position, "symbol": symbol}
            if with_measure:
                event["amount"] = float(seq_id * 10 + position)
            db.append(event)
    return db


SEQUENCES = [["a", "b", "a"], ["c", "d"], ["b", "b", "c", "a"]]


@pytest.fixture
def store(tmp_path):
    db = make_db(SEQUENCES, with_measure=True)
    manager = StorageManager.write(
        db, tmp_path / "store", cluster_by=CLUSTER_BY, sequence_by=SEQUENCE_BY
    )
    yield db, manager
    manager.close()


# ---------------------------------------------------------------------------
# format layer
# ---------------------------------------------------------------------------


class TestFormat:
    def test_header_round_trip(self):
        raw = fmt.pack_header(648, 4096, 512, flags=3)
        assert raw[:8] == MAGIC
        header = fmt.unpack_header(raw)
        assert header.version == FORMAT_VERSION
        assert header.flags == 3
        assert header.n_events == 648
        assert header.directory_offset == 4096
        assert header.directory_length == 512

    def test_header_rejects_bad_magic(self):
        raw = b"NOTASEG1" + fmt.pack_header(1, 2, 3)[8:]
        with pytest.raises(StorageError, match="bad magic"):
            fmt.unpack_header(raw)

    def test_header_rejects_unknown_version(self):
        raw = fmt.pack_header(1, 2, 3, version=FORMAT_VERSION + 9)
        with pytest.raises(StorageError, match="version"):
            fmt.unpack_header(raw)

    def test_header_rejects_truncation(self):
        with pytest.raises(StorageError, match="too short"):
            fmt.unpack_header(fmt.pack_header(1, 2, 3)[:10])

    def test_footer_round_trip_and_checksum(self):
        payload = b"payload bytes"
        crc = fmt.payload_crc32(payload)
        raw = fmt.pack_footer(crc, 1234)
        read_crc, read_length = fmt.unpack_footer(raw)
        assert read_crc == crc
        assert read_length == 1234
        assert fmt.payload_crc32(payload + b"x") != crc

    def test_footer_rejects_bad_magic(self):
        raw = b"XXXXXXXX" + fmt.pack_footer(0, 0)[8:]
        with pytest.raises(StorageError, match="truncated"):
            fmt.unpack_footer(raw)

    def test_u32_round_trip_is_little_endian_on_disk(self):
        values = [0, 1, 0xDEADBEEF, 2**32 - 1]
        raw = fmt.encode_u32(values)
        assert raw[:4] == (0).to_bytes(4, "little")
        assert raw[4:8] == (1).to_bytes(4, "little")
        decoded = fmt.decode_u32(raw, little_endian_host=True)
        assert list(decoded) == values
        assert isinstance(decoded, memoryview)  # zero-copy path

    def test_u32_big_endian_host_branch(self):
        """The byteswap branch, forced on a little-endian machine: feed it
        the same little-endian disk bytes and it must still decode the
        original values (as a copied array, not a view)."""
        values = [7, 0x01020304, 42]
        swapped = array("I", values)
        swapped.byteswap()  # simulate how LE disk bytes look to a BE host
        decoded = fmt.decode_u32(swapped.tobytes(), little_endian_host=False)
        assert isinstance(decoded, array)
        assert list(decoded) == values

    def test_u32_rejects_ragged_length(self):
        with pytest.raises(StorageError, match="multiple of 4"):
            fmt.decode_u32(b"\x00" * 5)

    def test_directory_rejects_duplicates_and_unknown_kinds(self):
        entry = fmt.SectionEntry("codes:x", "u32", 40, 8, 2)
        raw = fmt.encode_directory([entry, entry])
        with pytest.raises(StorageError, match="duplicate"):
            fmt.decode_directory(raw)
        with pytest.raises(StorageError, match="unknown kind"):
            fmt.SectionEntry.from_json(
                {"name": "x", "kind": "wat", "offset": 0, "length": 0, "count": 0}
            )


# ---------------------------------------------------------------------------
# segment + store behaviour
# ---------------------------------------------------------------------------


class TestSegmentStore:
    def test_columns_and_distinct_round_trip(self, store):
        db, manager = store
        attached = manager.attach()
        assert len(attached) == len(db)
        for attr in ("seq", "ts", "symbol"):
            assert attached.column(attr) == db.column(attr)
            assert attached.distinct(attr) == db.distinct(attr)
        assert attached.distinct("symbol", "group") == db.distinct("symbol", "group")

    def test_measures_round_trip(self, store):
        db, manager = store
        attached = manager.attach()
        assert attached.column("amount") == db.column("amount")

    def test_attached_store_is_read_only(self, store):
        __, manager = store
        attached = manager.attach()
        with pytest.raises(StorageError, match="read-only"):
            attached.append({"seq": 99, "ts": 0, "symbol": "a", "amount": 0.0})
        with pytest.raises(StorageError, match="read-only"):
            attached.extend([{"seq": 99, "ts": 0, "symbol": "a", "amount": 0.0}])

    def test_verify_passes_on_clean_store(self, store):
        __, manager = store
        manager.verify()

    def test_corrupted_section_fails_verify_with_typed_error(self, store, tmp_path):
        __, manager = store
        path = tmp_path / "store" / "segment-000000.seg"
        with SegmentReader(path) as probe:
            offset = probe.sections["codes:symbol"].offset
        manager.close()
        raw = bytearray(path.read_bytes())
        raw[offset] ^= 0xFF  # flip one code-column byte
        path.write_bytes(bytes(raw))
        reopened = StorageManager.open(tmp_path / "store")
        try:
            with pytest.raises(StorageError, match="checksum mismatch"):
                reopened.verify()
        finally:
            reopened.close()

    def test_truncated_segment_fails_attach_in_o1(self, store, tmp_path):
        __, manager = store
        manager.close()
        path = tmp_path / "store" / "segment-000000.seg"
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 10])
        with pytest.raises(StorageError):
            StorageManager.open(tmp_path / "store")

    def test_append_grows_store_with_cumulative_dictionaries(self, store):
        db, manager = store
        before = manager.n_events
        manager.append_events(
            [
                {"seq": 90, "ts": 0, "symbol": "d", "amount": 1.0},
                {"seq": 90, "ts": 1, "symbol": "a", "amount": 2.0},
            ]
        )
        assert manager.segments_open == 2
        assert manager.n_events == before + 2
        manager.verify()  # includes the dictionary prefix property
        # newest segment's dictionary decodes the whole store
        old_values = set(db.distinct("symbol"))
        assert old_values <= set(manager.dictionary_values("symbol"))
        attached = manager.attach()
        assert attached.column("symbol") == db.column("symbol") + ["d", "a"]
        assert attached.column("amount") == db.column("amount") + [1.0, 2.0]

    def test_compact_folds_segments_preserving_contents(self, store, tmp_path):
        __, manager = store
        manager.append_events([{"seq": 91, "ts": 0, "symbol": "b", "amount": 3.0}])
        expected = manager.attach().column("symbol")
        folded = manager.compact()
        assert folded == 2
        assert manager.segments_open == 1
        manager.verify()
        assert manager.attach().column("symbol") == expected

    def test_stored_layout_matches_live_pipeline(self, store):
        db, manager = store
        attached = manager.attach()
        live = build_sequence_groups(db, None, CLUSTER_BY, SEQUENCE_BY)
        stored = attached.stored_groups(None, CLUSTER_BY, SEQUENCE_BY, ())
        assert stored is not None
        assert set(stored.groups) == set(live.groups)
        for key, want in live.groups.items():
            got = stored.groups[key]
            assert got.key == want.key
            assert [s.sid for s in got.sequences] == [s.sid for s in want.sequences]
            assert [tuple(s.rows) for s in got.sequences] == [
                tuple(s.rows) for s in want.sequences
            ]
        # a spec mismatch falls back to the live pipeline (returns None)
        assert attached.stored_groups(None, CLUSTER_BY, (("ts", False),), ()) is None

    def test_pickle_round_trips_by_path_and_memoises(self, store):
        __, manager = store
        attached = manager.attach()
        blob = pickle.dumps(attached)
        assert len(blob) < 500  # a path, not the columns
        first = pickle.loads(blob)
        second = pickle.loads(blob)
        assert first is second
        assert first.column("symbol") == attached.column("symbol")

    def test_attach_store_detection(self, store, tmp_path):
        assert is_segment_store(tmp_path / "store")
        assert not is_segment_store(tmp_path)
        first = attach_store(str(tmp_path / "store"))
        assert first is attach_store(str(tmp_path / "store"))

    def test_write_refuses_existing_store(self, store, tmp_path):
        db, __ = store
        with pytest.raises(StorageError, match="already holds"):
            StorageManager.write(db, tmp_path / "store")

    def test_single_segment_verify_via_reader(self, store, tmp_path):
        __, manager = store
        manager.close()
        with SegmentReader(tmp_path / "store" / "segment-000000.seg") as reader:
            reader.verify()
            assert reader.n_events == len(make_db(SEQUENCES))

    def test_writer_preserves_row_order(self, tmp_path):
        db = make_db(SEQUENCES)
        writer = SegmentWriter(db.schema)
        writer.add_database(db)
        writer.write(tmp_path / "one.seg")
        with SegmentReader(tmp_path / "one.seg") as reader:
            dictionary = reader.dictionary("symbol")
            codes = reader.codes("symbol")
            assert [dictionary[c] for c in codes] == db.column("symbol")


# ---------------------------------------------------------------------------
# engine / service integration
# ---------------------------------------------------------------------------


def _spec():
    from repro import CuboidSpec, PatternTemplate
    from repro.core.spec import PatternKind

    template = PatternTemplate.build(
        PatternKind.SUBSTRING, ("X", "Y"), {"X": ("symbol", "symbol"), "Y": ("symbol", "symbol")}
    )
    return CuboidSpec(template=template, cluster_by=CLUSTER_BY, sequence_by=SEQUENCE_BY)


class TestIntegration:
    def test_engine_runs_unchanged_over_attached_store(self, store):
        db, manager = store
        spec = _spec()
        memory, __ = SOLAPEngine(db).execute(spec, "cb")
        segment, stats = SOLAPEngine(manager.attach()).execute(spec, "cb")
        assert stats.extra.get("matcher") == "compiled"
        assert segment.to_dict() == memory.to_dict()

    def test_worker_init_histogram_populated(self, store):
        __, manager = store
        svc = QueryService(
            manager.attach(),
            ServiceConfig(max_workers=2, executor_backend="thread"),
        )
        try:
            snapshot = svc.metrics.snapshot()
        finally:
            svc.close()
        assert snapshot["worker_init"]["count"] == 2
        assert snapshot["worker_init"]["max_seconds"] >= 0.0

    def test_storage_metrics_registered(self, store):
        __, manager = store
        manager.attach()
        registry = MetricsRegistry()
        register_storage_metrics(registry, manager)
        text = registry.render_prometheus()
        assert "solap_storage_segments_open 1" in text
        assert "solap_storage_bytes_mapped" in text
        assert "solap_storage_attaches_total 1" in text
        assert "solap_storage_attach_seconds" in text

    def test_incremental_maintainer_mirrors_into_store(self, tmp_path):
        """PartitionedIndexMaintainer(storage=...) lands every ingested
        batch as one appended segment, keeping disk and memory in step."""
        from repro import PatternTemplate
        from repro.core.spec import PatternKind
        from repro.extensions.incremental import PartitionedIndexMaintainer

        schema = make_schema()
        db = EventDatabase(schema)
        manager = StorageManager.create(schema, tmp_path / "store")
        template = PatternTemplate.build(
            PatternKind.SUBSTRING,
            ("X", "Y"),
            {"X": ("symbol", "symbol"), "Y": ("symbol", "symbol")},
        )
        maintainer = PartitionedIndexMaintainer(
            db,
            template,
            cluster_by=CLUSTER_BY,
            sequence_by=SEQUENCE_BY,
            partition_of=lambda e: int(e["seq"]),
            storage=manager,
        )
        try:
            maintainer.ingest(
                [{"seq": 0, "ts": t, "symbol": s} for t, s in enumerate("aba")]
            )
            maintainer.ingest(
                [{"seq": 1, "ts": t, "symbol": s} for t, s in enumerate("cd")]
            )
            manager.verify()
            assert manager.segments_open == 3  # empty seed + two batches
            attached = manager.attach()
            assert attached.column("symbol") == db.column("symbol")
            assert attached.column("seq") == db.column("seq")
        finally:
            manager.close()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    @pytest.fixture
    def dataset(self, tmp_path):
        out = tmp_path / "ds"
        assert (
            main(
                [
                    "generate",
                    "synthetic",
                    "--out",
                    str(out),
                    "--sequences",
                    "30",
                    "--length",
                    "6",
                    "--seed",
                    "5",
                ]
            )
            == 0
        )
        return out

    def test_segment_write_info_verify(self, dataset, tmp_path, capsys):
        seg = tmp_path / "seg"
        assert (
            main(
                [
                    "segment",
                    "write",
                    str(dataset),
                    str(seg),
                    "--cluster-by",
                    "seq",
                    "--sequence-by",
                    "ts",
                ]
            )
            == 0
        )
        assert is_segment_store(seg)
        assert main(["segment", "info", str(seg)]) == 0
        out = capsys.readouterr().out
        assert "format version: 1" in out
        assert main(["segment", "verify", str(seg)]) == 0
        assert "store ok" in capsys.readouterr().out
        # the generic commands auto-detect segment stores
        assert main(["info", str(seg)]) == 0

    def test_segment_verify_corrupted_exits_2(self, dataset, tmp_path, capsys):
        seg = tmp_path / "seg"
        assert main(["segment", "write", str(dataset), str(seg)]) == 0
        victim = seg / "segment-000000.seg"
        with SegmentReader(victim) as probe:
            offset = probe.sections["codes:symbol"].offset
        raw = bytearray(victim.read_bytes())
        raw[offset] ^= 0xFF
        victim.write_bytes(bytes(raw))
        assert main(["segment", "verify", str(seg)]) == 2
        assert "checksum mismatch" in capsys.readouterr().err

    def test_segment_write_requires_full_layout_spec(self, dataset, tmp_path, capsys):
        code = main(
            [
                "segment",
                "write",
                str(dataset),
                str(tmp_path / "seg"),
                "--cluster-by",
                "seq",
            ]
        )
        assert code == 2
