"""Hammer tests: cache counters stay exact under thread contention.

``SequenceCache`` and ``CuboidRepository`` are shared by every session of
a :class:`QueryService`, so their hit/miss/eviction counters are bumped
from many threads at once.  Unsynchronised ``+=`` on instance attributes
loses increments under contention (read-modify-write races); these tests
drive both caches from a pool of threads and assert the exact accounting
invariants the lock is supposed to protect.
"""

from __future__ import annotations

import threading

from repro.core.cuboid import SCuboid
from repro.core.repository import CuboidRepository, estimate_cuboid_bytes
from repro.core.stats import QueryStats
from repro.events.cache import SequenceCache
from repro.service.sessions import SessionManager
from tests.conftest import figure8_spec

THREADS = 8
OPS_PER_THREAD = 400


def _run_threads(target):
    threads = [
        threading.Thread(target=target, args=(tid,)) for tid in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def test_sequence_cache_counters_exact_under_contention():
    cache = SequenceCache(capacity=4)
    barrier = threading.Barrier(THREADS)

    def worker(tid):
        barrier.wait()
        for i in range(OPS_PER_THREAD):
            key = ("pipeline", (tid + i) % 16)
            if cache.get(key) is None:
                cache.put(key, object())

    _run_threads(worker)

    stats = cache.stats()
    # every get() was exactly one hit or one miss; a lost increment
    # breaks this equality
    assert stats["hits"] + stats["misses"] == THREADS * OPS_PER_THREAD
    assert stats["entries"] <= cache.capacity
    assert stats["evictions"] >= 0
    assert 0.0 <= stats["hit_ratio"] <= 1.0


def test_sequence_cache_counters_monotonic_while_hammered():
    cache = SequenceCache(capacity=2)
    stop = threading.Event()
    samples = []

    def sampler():
        while not stop.is_set():
            samples.append((cache.hits, cache.misses, cache.evictions))

    def worker(tid):
        for i in range(OPS_PER_THREAD):
            key = (tid + i) % 8
            if cache.get(key) is None:
                cache.put(key, object())

    watcher = threading.Thread(target=sampler)
    watcher.start()
    _run_threads(worker)
    stop.set()
    watcher.join()

    for name, series in zip(
        ("hits", "misses", "evictions"), zip(*samples)
    ):
        assert all(
            later >= earlier for earlier, later in zip(series, series[1:])
        ), f"{name} went backwards"


def test_cuboid_repository_counters_and_bytes_exact_under_contention():
    repo = CuboidRepository(capacity=4, byte_budget=1 << 30)
    spec = figure8_spec(("X", "Y"))
    cuboid = SCuboid(spec, {})
    barrier = threading.Barrier(THREADS)

    def worker(tid):
        barrier.wait()
        for i in range(OPS_PER_THREAD):
            key = ("cuboid", (tid + i) % 12)
            if repo.get(key) is None:
                repo.put(key, cuboid)

    _run_threads(worker)

    assert repo.hits + repo.misses == THREADS * OPS_PER_THREAD
    assert len(repo) <= repo.capacity
    # byte accounting must agree with the entries actually retained
    assert repo.bytes_used == len(repo) * estimate_cuboid_bytes(cuboid)


def test_session_manager_reads_safe_under_open_close_contention():
    """Regression: ``__len__``/``__contains__``/``bytes_used`` raced
    concurrent ``open``/``close``/eviction because they read ``_entries``
    without the lock — ``bytes_used`` iterates the entry map, so a
    concurrent open/close raised "dictionary changed size during
    iteration" and readers could observe torn state."""
    manager = SessionManager(capacity=4096, byte_budget=1 << 30)
    spec = figure8_spec(("X", "Y"))
    cuboid = SCuboid(spec, {})
    stop = threading.Event()
    barrier = threading.Barrier(THREADS)
    errors = []

    def mutator(tid):
        barrier.wait()
        try:
            for i in range(OPS_PER_THREAD):
                session_id = manager.open(spec)
                manager.record(session_id, spec, cuboid, QueryStats())
                if i % 2:
                    manager.close(session_id)
        except Exception as error:  # noqa: BLE001 - reported below
            errors.append(error)

    def reader(tid):
        barrier.wait()
        probes = 0
        try:
            while not stop.is_set() or probes == 0:
                probes += 1
                assert manager.bytes_used >= 0
                assert len(manager) >= 0
                assert ("nope-%d" % tid) not in manager
        except Exception as error:  # noqa: BLE001 - reported below
            errors.append(error)

    mutators = [
        threading.Thread(target=mutator, args=(tid,))
        for tid in range(THREADS // 2)
    ]
    readers = [
        threading.Thread(target=reader, args=(tid,))
        for tid in range(THREADS // 2)
    ]
    for thread in mutators + readers:
        thread.start()
    for thread in mutators:
        thread.join()
    stop.set()
    for thread in readers:
        thread.join()

    assert not errors, errors
    # the ledger is consistent once quiescent: live entries only
    assert len(manager) <= manager.capacity
    assert manager.bytes_used >= 0


def test_cuboid_repository_eviction_accounting_under_contention():
    spec = figure8_spec(("X", "Y"))
    cuboid = SCuboid(spec, {})
    repo = CuboidRepository(capacity=2, byte_budget=1 << 30)

    def worker(tid):
        for i in range(OPS_PER_THREAD):
            repo.put((tid, i % 6), cuboid)

    _run_threads(worker)

    # inserts either displaced an existing key or evicted the LRU entry;
    # whatever happened, the retained set must respect the bounds and the
    # byte ledger must balance
    assert len(repo) <= repo.capacity
    assert repo.bytes_used == len(repo) * estimate_cuboid_bytes(cuboid)
    assert repo.evictions >= 0
