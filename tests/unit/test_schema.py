"""Unit tests for event schemas and concept hierarchies."""

import pytest

from repro import Dimension, Hierarchy, Measure, Schema, SchemaError


def make_location_hierarchy():
    return Hierarchy(
        "location",
        ("station", "district"),
        {"district": {"Pentagon": "D10", "Clarendon": "D10", "Wheaton": "D20"}},
    )


class TestHierarchy:
    def test_base_and_top_levels(self):
        hierarchy = make_location_hierarchy()
        assert hierarchy.base_level == "station"
        assert hierarchy.top_level == "district"

    def test_single_level_hierarchy(self):
        hierarchy = Hierarchy("action", ("action",))
        assert hierarchy.base_level == "action"
        assert hierarchy.map_value("in", "action") == "in"

    def test_map_value_base_is_identity(self):
        hierarchy = make_location_hierarchy()
        assert hierarchy.map_value("Pentagon", "station") == "Pentagon"

    def test_map_value_up(self):
        hierarchy = make_location_hierarchy()
        assert hierarchy.map_value("Pentagon", "district") == "D10"
        assert hierarchy.map_value("Wheaton", "district") == "D20"

    def test_map_unknown_value_raises(self):
        hierarchy = make_location_hierarchy()
        with pytest.raises(SchemaError):
            hierarchy.map_value("Atlantis", "district")

    def test_callable_mapping(self):
        hierarchy = Hierarchy(
            "time", ("minute", "day"), {"day": lambda m: m // 1440}
        )
        assert hierarchy.map_value(2881, "day") == 2

    def test_level_index_and_comparisons(self):
        hierarchy = make_location_hierarchy()
        assert hierarchy.level_index("station") == 0
        assert hierarchy.level_index("district") == 1
        assert hierarchy.is_coarser("district", "station")
        assert not hierarchy.is_coarser("station", "district")

    def test_unknown_level_raises(self):
        hierarchy = make_location_hierarchy()
        with pytest.raises(SchemaError):
            hierarchy.level_index("country")

    def test_coarser_finer_navigation(self):
        hierarchy = make_location_hierarchy()
        assert hierarchy.coarser_level("station") == "district"
        assert hierarchy.coarser_level("district") is None
        assert hierarchy.finer_level("district") == "station"
        assert hierarchy.finer_level("station") is None

    def test_members_and_children(self):
        hierarchy = make_location_hierarchy()
        assert hierarchy.members("district") == ("D10", "D20")
        assert hierarchy.children("district", "D10") == ("Clarendon", "Pentagon")
        assert hierarchy.children("station", "Pentagon") == ("Pentagon",)

    def test_translate_same_level(self):
        hierarchy = make_location_hierarchy()
        assert hierarchy.translate("Pentagon", "station", "station") == "Pentagon"

    def test_translate_base_to_coarser(self):
        hierarchy = make_location_hierarchy()
        assert hierarchy.translate("Pentagon", "station", "district") == "D10"

    def test_translate_three_levels(self):
        hierarchy = Hierarchy(
            "symbol",
            ("symbol", "group", "super"),
            {
                "group": {"a": "g1", "b": "g1", "c": "g2"},
                "super": {"a": "s1", "b": "s1", "c": "s1"},
            },
        )
        assert hierarchy.translate("g2", "group", "super") == "s1"

    def test_translate_downwards_raises(self):
        hierarchy = make_location_hierarchy()
        with pytest.raises(SchemaError):
            hierarchy.translate("D10", "district", "station")

    def test_missing_mapping_raises(self):
        with pytest.raises(SchemaError):
            Hierarchy("location", ("station", "district"))

    def test_duplicate_levels_raise(self):
        with pytest.raises(SchemaError):
            Hierarchy("location", ("station", "station"))

    def test_mapping_for_unknown_level_raises(self):
        with pytest.raises(SchemaError):
            Hierarchy("location", ("station",), {"district": {}})


class TestSchema:
    def make_schema(self):
        return Schema(
            [Dimension("location", make_location_hierarchy()), Dimension("action")],
            [Measure("amount")],
        )

    def test_attributes_order(self):
        schema = self.make_schema()
        assert schema.attributes == ("location", "action", "amount")

    def test_dimension_and_measure_predicates(self):
        schema = self.make_schema()
        assert schema.is_dimension("location")
        assert not schema.is_dimension("amount")
        assert schema.is_measure("amount")
        assert not schema.is_measure("action")

    def test_map_value(self):
        schema = self.make_schema()
        assert schema.map_value("location", "Wheaton", "district") == "D20"

    def test_trivial_dimension_hierarchy(self):
        schema = self.make_schema()
        assert schema.hierarchy("action").levels == ("action",)

    def test_unknown_dimension_raises(self):
        schema = self.make_schema()
        with pytest.raises(SchemaError):
            schema.dimension("speed")

    def test_check_level(self):
        schema = self.make_schema()
        schema.check_level("location", "district")
        with pytest.raises(SchemaError):
            schema.check_level("location", "continent")

    def test_duplicate_dimension_raises(self):
        with pytest.raises(SchemaError):
            Schema([Dimension("a"), Dimension("a")])

    def test_measure_name_collision_raises(self):
        with pytest.raises(SchemaError):
            Schema([Dimension("a")], [Measure("a")])

    def test_dimension_hierarchy_attribute_mismatch(self):
        with pytest.raises(SchemaError):
            Dimension("location", Hierarchy("place", ("p",)))

    def test_validate_attribute(self):
        schema = self.make_schema()
        schema.validate_attribute("amount")
        with pytest.raises(SchemaError):
            schema.validate_attribute("missing")
