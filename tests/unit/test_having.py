"""Unit tests for HAVING COUNT(*) >= n (iceberg queries end-to-end)."""

from dataclasses import replace

import pytest

from repro import CellRestriction, QueryLanguageError, SOLAPEngine, SpecError
from repro.datagen import SyntheticConfig, generate_event_database
from repro.datagen.synthetic import base_spec
from repro.ql import format_spec, parse_query
from tests.conftest import figure8_spec

HAVING_QUERY = """
SELECT COUNT(*) FROM Event
CLUSTER BY seq AT seq
SEQUENCE BY ts ASCENDING
CUBOID BY SUBSTRING (X, Y)
  WITH X AS symbol AT symbol, Y AS symbol AT symbol
LEFT-MAXIMALITY (p1, p2)
HAVING COUNT(*) >= 4
"""


@pytest.fixture(scope="module")
def db():
    return generate_event_database(SyntheticConfig(D=250, L=12, seed=77))


class TestSpecField:
    def test_min_support_in_cache_key(self):
        a = figure8_spec(("X", "Y"))
        b = replace(a, min_support=3)
        assert a.cache_key() != b.cache_key()
        assert a != b

    def test_min_support_validated(self):
        with pytest.raises(SpecError):
            figure8_spec(("X", "Y"), min_support=0)


class TestParsing:
    def test_parse_having(self, db):
        spec = parse_query(HAVING_QUERY, db.schema)
        assert spec.min_support == 4

    def test_roundtrip(self, db):
        spec = parse_query(HAVING_QUERY, db.schema)
        assert parse_query(format_spec(spec), db.schema) == spec

    def test_having_requires_integer(self):
        with pytest.raises(QueryLanguageError):
            parse_query(HAVING_QUERY.replace(">= 4", '>= "four"'))

    def test_having_requires_ge(self):
        with pytest.raises(QueryLanguageError):
            parse_query(HAVING_QUERY.replace(">= 4", "= 4"))


class TestExecution:
    def test_engine_filters_cells(self, db):
        spec = replace(base_spec(("X", "Y")), min_support=4)
        full, __ = SOLAPEngine(db).execute(base_spec(("X", "Y")), "cb")
        iceberg, stats = SOLAPEngine(db).execute(spec, "cb")
        assert 0 < len(iceberg) < len(full)
        for __g, __c, values in iceberg:
            assert values["COUNT(*)"] >= 4
        assert stats.strategy == "iceberg-CB"

    def test_cb_and_ii_agree(self, db):
        spec = replace(base_spec(("X", "Y", "Z")), min_support=3)
        cb, __ = SOLAPEngine(db).execute(spec, "cb")
        ii, stats = SOLAPEngine(db).execute(spec, "ii")
        assert cb.to_dict() == ii.to_dict()
        assert stats.strategy == "iceberg-II"

    def test_all_matched_routes_to_cb_filter(self, db):
        spec = replace(
            base_spec(("X", "Y")),
            min_support=3,
            restriction=CellRestriction.ALL_MATCHED,
        )
        iceberg, stats = SOLAPEngine(db).execute(spec, "ii")
        assert stats.strategy == "iceberg-CB"
        full, __ = SOLAPEngine(db).execute(
            replace(spec, min_support=None), "cb"
        )
        expected = {
            key: values
            for key, values in full.to_dict().items()
            if values["COUNT(*)"] >= 3
        }
        assert iceberg.to_dict() == expected

    def test_repository_distinguishes_thresholds(self, db):
        engine = SOLAPEngine(db)
        loose = replace(base_spec(("X", "Y")), min_support=2)
        tight = replace(base_spec(("X", "Y")), min_support=8)
        a, __ = engine.execute(loose, "cb")
        b, __ = engine.execute(tight, "cb")
        assert len(b) < len(a)
        __, stats = engine.execute(loose, "cb")
        assert stats.cuboid_cache_hit

    def test_ql_to_engine(self, db):
        spec = parse_query(HAVING_QUERY, db.schema)
        cuboid, __ = SOLAPEngine(db).execute(spec)
        assert all(v["COUNT(*)"] >= 4 for __g, __c, v in cuboid)
