"""Unit tests for iceberg cuboids, online aggregation and incremental
index maintenance."""

import pytest

from repro import CellRestriction, SOLAPEngine, SpecError
from repro.core.spec import PatternTemplate
from repro.datagen import SyntheticConfig, generate_event_database
from repro.datagen.synthetic import base_spec
from repro.datagen.transit import MINUTES_PER_DAY, TransitConfig
from repro.datagen.transit import build_schema as transit_schema
from repro.datagen.transit import generate_database as generate_transit
from repro.errors import EngineError
from repro.events.database import EventDatabase
from repro.events.sequence import SequenceGroupSet
from repro.extensions import (
    PartitionedIndexMaintainer,
    iceberg_counter_based,
    iceberg_inverted_index,
    online_cuboid,
)
from repro.index.inverted import build_index
from tests.conftest import figure8_spec, make_figure8_db


@pytest.fixture(scope="module")
def synthetic():
    db = generate_event_database(SyntheticConfig(D=150, L=10, seed=11))
    engine = SOLAPEngine(db)
    spec = base_spec(("X", "Y"))
    groups = engine.sequence_groups(spec)
    return db, groups, spec


class TestIceberg:
    def test_ii_equals_cb_filtering(self, synthetic):
        db, groups, spec = synthetic
        for min_support in (1, 2, 4):
            ii = iceberg_inverted_index(db, groups, spec, min_support)
            cb = iceberg_counter_based(db, groups, spec, min_support)
            assert ii.to_dict() == cb.to_dict(), min_support

    def test_threshold_filters_cells(self, synthetic):
        db, groups, spec = synthetic
        loose = iceberg_inverted_index(db, groups, spec, 1)
        tight = iceberg_inverted_index(db, groups, spec, 5)
        assert len(tight) <= len(loose)
        for __, __c, values in tight:
            assert values["COUNT(*)"] >= 5

    def test_longer_template_pruning(self, synthetic):
        db, groups, __ = synthetic
        spec3 = base_spec(("X", "Y", "Z"))
        ii = iceberg_inverted_index(db, groups, spec3, 2)
        cb = iceberg_counter_based(db, groups, spec3, 2)
        assert ii.to_dict() == cb.to_dict()

    def test_min_support_validation(self, synthetic):
        db, groups, spec = synthetic
        with pytest.raises(SpecError):
            iceberg_inverted_index(db, groups, spec, 0)
        with pytest.raises(SpecError):
            iceberg_counter_based(db, groups, spec, 0)

    def test_all_matched_rejected(self):
        db = make_figure8_db()
        engine = SOLAPEngine(db)
        spec = figure8_spec(("X", "Y"), restriction=CellRestriction.ALL_MATCHED)
        groups = engine.sequence_groups(spec)
        with pytest.raises(SpecError):
            iceberg_inverted_index(db, groups, spec, 2)

    def test_pruning_reported_in_stats(self, synthetic):
        db, groups, __ = synthetic
        from repro.core.stats import QueryStats

        spec3 = base_spec(("X", "Y", "Z"))
        stats = QueryStats()
        iceberg_inverted_index(db, groups, spec3, 3, stats)
        assert stats.extra.get("lists_pruned", 0) > 0


class TestOnlineAggregation:
    def test_final_estimate_matches_exact(self, synthetic):
        db, groups, spec = synthetic
        exact, __ = SOLAPEngine(db).execute(spec, "cb")
        estimates = list(online_cuboid(db, groups, spec, chunk_size=40))
        assert estimates[-1].is_final
        assert estimates[-1].partial.to_dict() == exact.to_dict()

    def test_progress_is_monotone(self, synthetic):
        db, groups, spec = synthetic
        fractions = [
            e.fraction for e in online_cuboid(db, groups, spec, chunk_size=40)
        ]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_partial_counts_never_exceed_final(self, synthetic):
        db, groups, spec = synthetic
        estimates = list(online_cuboid(db, groups, spec, chunk_size=50))
        final = estimates[-1].partial
        for estimate in estimates:
            for (g, c), values in estimate.partial.cells.items():
                assert values["COUNT(*)"] <= final.count(c, g)

    def test_estimated_count_scales(self, synthetic):
        db, groups, spec = synthetic
        first = next(iter(online_cuboid(db, groups, spec, chunk_size=30)))
        group_key, cell_key, __ = first.partial.argmax()
        observed = first.partial.count(cell_key, group_key)
        assert first.estimated_count(cell_key, group_key) == pytest.approx(
            observed / first.fraction
        )

    def test_chunk_size_validation(self, synthetic):
        db, groups, spec = synthetic
        with pytest.raises(ValueError):
            next(online_cuboid(db, groups, spec, chunk_size=0))

    def test_seed_changes_visit_order_not_result(self, synthetic):
        db, groups, spec = synthetic
        a = list(online_cuboid(db, groups, spec, chunk_size=60, seed=1))
        b = list(online_cuboid(db, groups, spec, chunk_size=60, seed=2))
        assert a[-1].partial.to_dict() == b[-1].partial.to_dict()

    def test_empty_selection_yields_one_final_estimate(self, synthetic):
        db, groups, spec = synthetic
        empty = SequenceGroupSet(groups.global_dims, {})
        estimates = list(online_cuboid(db, empty, spec, chunk_size=10))
        assert len(estimates) == 1
        only = estimates[0]
        assert only.is_final
        assert only.total == 0
        assert only.processed == 0
        assert only.fraction == 1.0
        assert len(only.partial) == 0
        # Scale-up on an empty selection must not divide by zero.
        assert only.estimated_count(("anything",)) == 0.0

    def test_chunk_larger_than_workload_is_single_final_chunk(
        self, synthetic
    ):
        db, groups, spec = synthetic
        total = groups.total_sequences()
        estimates = list(
            online_cuboid(db, groups, spec, chunk_size=total + 1000)
        )
        assert len(estimates) == 1
        assert estimates[0].is_final
        assert estimates[0].processed == total == estimates[0].total
        exact, __ = SOLAPEngine(db).execute(spec, "cb")
        assert estimates[0].partial.to_dict() == exact.to_dict()

    def test_same_seed_is_deterministic_across_runs(self, synthetic):
        db, groups, spec = synthetic
        a = list(online_cuboid(db, groups, spec, chunk_size=35, seed=7))
        b = list(online_cuboid(db, groups, spec, chunk_size=35, seed=7))
        assert len(a) == len(b)
        for left, right in zip(a, b):
            # Identical shuffle order means every intermediate estimate
            # (not just the final one) is reproduced exactly.
            assert left.processed == right.processed
            assert left.partial.to_dict() == right.partial.to_dict()

    def test_cancel_guard_checked_at_chunk_boundaries(self, synthetic):
        from repro.errors import QueryCancelledError
        from repro.service.deadline import CancelToken

        db, groups, spec = synthetic
        token = CancelToken()
        stream = online_cuboid(db, groups, spec, chunk_size=30, cancel=token)
        first = next(stream)
        assert not first.is_final
        token.cancel()
        with pytest.raises(QueryCancelledError):
            next(stream)


class TestIncremental:
    def make_maintainer(self, config):
        template = PatternTemplate.substring(
            ("X", "Y"),
            {"X": ("location", "station"), "Y": ("location", "station")},
        )
        db = EventDatabase(transit_schema(config))
        maintainer = PartitionedIndexMaintainer(
            db,
            template,
            cluster_by=(("card-id", "individual"), ("time", "day")),
            sequence_by=(("time", True),),
            partition_of=lambda e: int(e["time"]) // MINUTES_PER_DAY,
        )
        return db, maintainer, template

    def events_by_day(self, config):
        full = generate_transit(config)
        by_day = {}
        for event in full:
            by_day.setdefault(int(event["time"]) // MINUTES_PER_DAY, []).append(
                event.to_dict()
            )
        return by_day

    def test_union_equals_full_rebuild(self):
        config = TransitConfig(n_cards=40, n_days=3, seed=21)
        db, maintainer, template = self.make_maintainer(config)
        by_day = self.events_by_day(config)
        for day in sorted(by_day):
            maintainer.ingest(by_day[day])
        union = maintainer.combined_index()

        # Ground truth: one index over all sequences of the full database.
        from repro.events.sequence import cluster_events, form_sequences
        from repro.events.sequence import SequenceGroup

        # Build patterns only (sid spaces differ), so compare list *sizes*
        # per pattern and the pattern sets.
        clusters = cluster_events(
            db, range(len(db)), [("card-id", "individual"), ("time", "day")]
        )
        sequences = form_sequences(db, clusters, [("time", True)])
        whole = build_index(
            SequenceGroup((), sequences), template, db.schema
        )
        assert set(union.lists) == set(whole.lists)
        for values in whole.lists:
            assert len(union.get(values)) == len(whole.get(values))

    def test_partition_sid_spaces_disjoint(self):
        config = TransitConfig(n_cards=20, n_days=3, seed=22)
        __, maintainer, __t = self.make_maintainer(config)
        by_day = self.events_by_day(config)
        for day in sorted(by_day):
            maintainer.ingest(by_day[day])
        seen = set()
        for key in maintainer.partitions():
            sids = maintainer.partition_index(key).all_sids()
            assert not (sids & seen)
            seen |= sids

    def test_union_cache_invalidation(self):
        config = TransitConfig(n_cards=20, n_days=2, seed=23)
        __, maintainer, __t = self.make_maintainer(config)
        by_day = self.events_by_day(config)
        days = sorted(by_day)
        maintainer.ingest(by_day[days[0]])
        first_union = maintainer.combined_index()
        assert maintainer.combined_index() is first_union  # cached
        maintainer.ingest(by_day[days[1]])
        second_union = maintainer.combined_index()
        assert second_union is not first_union
        assert second_union.num_entries() > first_union.num_entries()

    def test_unknown_partition_raises(self):
        config = TransitConfig(n_cards=5, n_days=1, seed=24)
        __, maintainer, __t = self.make_maintainer(config)
        with pytest.raises(EngineError):
            maintainer.partition_index(99)
        with pytest.raises(EngineError):
            maintainer.combined_index()
