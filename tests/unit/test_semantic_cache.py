"""Semantic cuboid cache: usability, derivation soundness, engine wiring.

The non-negotiable invariant — every derived answer is bit-identical to
a cold computation — is asserted cell-for-cell (``to_dict`` equality)
against a repository-free engine for every derivable op and restriction
mode it is claimed sound for.
"""

import pytest

from repro.core import operations as ops
from repro.core.engine import SOLAPEngine
from repro.core.spec import AggregateSpec, CellRestriction
from repro.obs.metrics import MetricsRegistry, register_engine_metrics
from repro.optimizer.semantic_cache import (
    DerivationPlanner,
    find_chain,
    usability,
)
from tests.conftest import figure8_spec, make_figure8_db


@pytest.fixture(scope="module")
def db():
    return make_figure8_db()


def cold(db, spec):
    cuboid, __ = SOLAPEngine(db, use_repository=False).execute(spec)
    return cuboid


def base_spec_for(db, restriction=CellRestriction.ALL_MATCHED, **kwargs):
    kwargs.setdefault("group_by", (("location", "station"),))
    return figure8_spec(("X", "Y"), restriction=restriction, **kwargs)


class TestUsability:
    def test_exact_match_is_empty_chain(self, db):
        spec = base_spec_for(db)
        assert usability(spec, spec, db.schema) == ()

    def test_p_roll_up_one_hop(self, db):
        spec = base_spec_for(db)
        chain = usability(spec, ops.p_roll_up(spec, "X", db.schema), db.schema)
        assert [step.op for step in chain] == ["p_roll_up"]

    def test_two_hops_found_three_rejected(self, db):
        spec = base_spec_for(db)
        two = ops.p_roll_up(ops.p_roll_up(spec, "X", db.schema), "Y", db.schema)
        chain = usability(spec, two, db.schema)
        assert [step.op for step in chain] == ["p_roll_up", "p_roll_up"]
        three = ops.roll_up_global(two, "location", db.schema)
        assert usability(spec, three, db.schema) is None  # depth bound
        assert usability(spec, three, db.schema, max_depth=3) is not None

    def test_drill_down_is_not_derivable(self, db):
        spec = base_spec_for(db)
        rolled = ops.p_roll_up(spec, "X", db.schema)
        assert usability(rolled, spec, db.schema) is None

    def test_append_and_de_tail_are_not_derivable(self, db):
        spec = base_spec_for(db)
        longer = ops.append(spec, "Z", "location", "station")
        assert usability(spec, longer, db.schema) is None
        assert usability(longer, spec, db.schema) is None

    def test_repeated_symbol_blocks_p_roll_up(self, db):
        spec = figure8_spec(
            ("X", "Y", "X"),
            restriction=CellRestriction.ALL_MATCHED,
            group_by=(("location", "station"),),
        )
        rolled = ops.p_roll_up(spec, "X", db.schema)
        assert usability(spec, rolled, db.schema) is None

    def test_restricted_symbol_blocks_p_roll_up(self, db):
        spec = base_spec_for(db)
        sliced = ops.slice_pattern(spec, "X", "Pentagon")
        target = ops.p_roll_up(sliced, "X", db.schema)
        assert usability(sliced, target, db.schema) is None

    def test_slice_pattern_requires_all_matched(self, db):
        for restriction in (
            CellRestriction.LEFT_MAXIMALITY,
            CellRestriction.LEFT_MAXIMALITY_DATA,
        ):
            spec = base_spec_for(db, restriction=restriction)
            sliced = ops.slice_pattern(spec, "X", "Pentagon")
            assert usability(spec, sliced, db.schema) is None

    def test_p_roll_up_requires_all_matched(self, db):
        # Left-maximality dedups one occurrence per *cell key*; merging
        # fine cells into a coarse cell would over-count.
        for restriction in (
            CellRestriction.LEFT_MAXIMALITY,
            CellRestriction.LEFT_MAXIMALITY_DATA,
        ):
            spec = base_spec_for(db, restriction=restriction)
            rolled = ops.p_roll_up(spec, "X", db.schema)
            assert usability(spec, rolled, db.schema) is None

    def test_global_selection_sound_under_any_restriction(self, db):
        spec = base_spec_for(db, restriction=CellRestriction.LEFT_MAXIMALITY)
        sliced = ops.slice_global(spec, "location", "Pentagon")
        chain = usability(spec, sliced, db.schema)
        assert [step.op for step in chain] == ["slice_global"]

    def test_unslice_is_not_derivable(self, db):
        spec = base_spec_for(db)
        sliced = ops.slice_global(spec, "location", "Pentagon")
        assert usability(sliced, spec, db.schema) is None

    def test_avg_blocks_merging_but_not_selection(self, db):
        spec = base_spec_for(db, aggregates=(AggregateSpec("AVG", "amount"),))
        rolled = ops.roll_up_global(spec, "location", db.schema)
        assert usability(spec, rolled, db.schema) is None
        sliced = ops.slice_global(spec, "location", "Pentagon")
        assert usability(spec, sliced, db.schema) is not None

    def test_avgpair_transport_merges(self, db):
        spec = base_spec_for(db, aggregates=(AggregateSpec("AVGPAIR", "amount"),))
        rolled = ops.roll_up_global(spec, "location", db.schema)
        chain = usability(spec, rolled, db.schema)
        assert [step.op for step in chain] == ["roll_up_global"]

    def test_min_support_never_derives(self, db):
        spec = base_spec_for(db)
        iceberg = base_spec_for(db, min_support=2)
        assert usability(spec, ops.p_roll_up(iceberg, "X", db.schema), db.schema) is None
        assert usability(iceberg, ops.p_roll_up(spec, "X", db.schema), db.schema) is None

    def test_sliced_global_dim_blocks_roll_up(self, db):
        spec = base_spec_for(db)
        sliced = ops.slice_global(spec, "location", "Pentagon")
        target = ops.roll_up_global(sliced, "location", db.schema)
        assert usability(sliced, target, db.schema) is None

    def test_chain_verified_by_forward_application(self, db):
        spec = base_spec_for(db)
        target = ops.slice_global(ops.roll_up_global(spec, "location", db.schema),
                                  "location", "D10")
        chain = find_chain(spec, target, db.schema)
        verified = spec
        for step in chain:
            from repro.optimizer.semantic_cache import _apply_op

            verified = _apply_op(verified, step, db.schema)
        assert verified.cache_key() == target.cache_key()


class TestDerivedBitIdentity:
    """Engine-level: warm answers == cold answers, cell for cell."""

    def navigations(self, db, spec):
        """Derivable targets: global navigations are sound under every
        restriction; pattern roll-ups only from an ALL_MATCHED source."""
        targets = [
            ops.roll_up_global(spec, "location", db.schema),
            ops.slice_global(spec, "location", "Pentagon"),
            ops.dice_global(spec, "location", ("Pentagon", "Clarendon")),
            ops.slice_global(
                ops.roll_up_global(spec, "location", db.schema), "location", "D10"
            ),
        ]
        if spec.restriction is CellRestriction.ALL_MATCHED:
            targets += [
                ops.p_roll_up(spec, "X", db.schema),
                ops.p_roll_up(
                    ops.p_roll_up(spec, "X", db.schema), "Y", db.schema
                ),
            ]
        return targets

    @pytest.mark.parametrize(
        "restriction",
        [
            CellRestriction.ALL_MATCHED,
            CellRestriction.LEFT_MAXIMALITY,
            CellRestriction.LEFT_MAXIMALITY_DATA,
        ],
    )
    def test_derived_equals_cold(self, db, restriction):
        spec = base_spec_for(db, restriction=restriction)
        engine = SOLAPEngine(db)
        engine.execute(spec)
        for target in self.navigations(db, spec):
            warm, stats = engine.execute(target)
            assert stats.extra["cache_answer"].startswith("derived:"), target
            assert stats.strategy == "derived"
            assert stats.sequences_scanned == 0
            assert warm.to_dict() == cold(db, target).to_dict()

    def test_slice_pattern_derived_equals_cold(self, db):
        spec = base_spec_for(db)  # ALL_MATCHED
        engine = SOLAPEngine(db)
        engine.execute(spec)
        target = ops.slice_pattern(spec, "X", "Pentagon")
        warm, stats = engine.execute(target)
        assert stats.extra["cache_answer"] == "derived:slice_pattern"
        assert warm.to_dict() == cold(db, target).to_dict()

    def test_merge_aggregates_survive_roll_up(self, db):
        spec = base_spec_for(
            db,
            aggregates=(
                AggregateSpec("COUNT", None),
                AggregateSpec("SUM", "amount"),
                AggregateSpec("MIN", "amount"),
                AggregateSpec("MAX", "amount"),
            ),
        )
        engine = SOLAPEngine(db)
        engine.execute(spec)
        target = ops.roll_up_global(spec, "location", db.schema)
        warm, stats = engine.execute(target)
        assert stats.strategy == "derived"
        assert warm.to_dict() == cold(db, target).to_dict()

    def test_derived_answer_is_itself_cached(self, db):
        spec = base_spec_for(db)
        engine = SOLAPEngine(db)
        engine.execute(spec)
        target = ops.p_roll_up(spec, "X", db.schema)
        __, first = engine.execute(target)
        assert first.strategy == "derived"
        __, second = engine.execute(target)
        assert second.extra["cache_answer"] == "exact"
        assert second.cuboid_cache_hit


class TestEngineWiring:
    def test_miss_exact_derived_accounting(self, db):
        spec = base_spec_for(db)
        engine = SOLAPEngine(db)
        __, s1 = engine.execute(spec)
        assert s1.extra["cache_answer"] == "miss"
        rows_after_cold = engine.rows_aggregated_total
        __, s2 = engine.execute(spec)
        assert s2.extra["cache_answer"] == "exact"
        __, s3 = engine.execute(ops.p_roll_up(spec, "X", db.schema))
        assert s3.extra["cache_answer"] == "derived:p_roll_up"
        # zero work-counter drift: neither hit kind aggregates rows
        assert engine.rows_aggregated_total == rows_after_cold
        assert engine.strategy_counts["derived"] == 1
        assert engine.semantic_hits == {"p_roll_up": 1}
        assert engine.semantic_derivations == {"p_roll_up": 1}

    def test_rejects_classified_by_op(self, db):
        spec = base_spec_for(db)
        engine = SOLAPEngine(db)
        engine.execute(spec)
        engine.execute(ops.append(spec, "Z", "location", "station"))
        assert engine.semantic_rejects.get("append", 0) >= 1

    def test_semantic_cache_disabled(self, db):
        spec = base_spec_for(db)
        engine = SOLAPEngine(db, semantic_cache=False)
        engine.execute(spec)
        __, stats = engine.execute(ops.p_roll_up(spec, "X", db.schema))
        assert stats.extra["cache_answer"] == "miss"
        assert engine.semantic_hits == {}

    def test_cache_stats_semantic_block(self, db):
        spec = base_spec_for(db)
        engine = SOLAPEngine(db)
        engine.execute(spec)
        engine.execute(ops.p_roll_up(spec, "X", db.schema))
        block = engine.cache_stats()["semantic_cache"]
        assert block["enabled"]
        assert block["hits_total"] == 1
        assert block["derivations_total"] == 1
        assert engine.cache_stats()["repository"]["policy"] == "benefit"

    def test_explain_analyze_prints_chain(self, db):
        spec = base_spec_for(db)
        engine = SOLAPEngine(db)
        engine.execute(spec)
        target = ops.slice_global(
            ops.roll_up_global(spec, "location", db.schema), "location", "D10"
        )
        __, stats = engine.execute(target, analyze=True)
        rendered = stats.plan.render()
        assert "semantic HIT" in rendered
        assert "roll_up_global" in rendered and "slice_global" in rendered

    def test_static_explain_annotates_derivability(self, db):
        from repro.core.explain import explain

        spec = base_spec_for(db)
        engine = SOLAPEngine(db)
        engine.execute(spec)
        plan = explain(engine, ops.p_roll_up(spec, "X", db.schema))
        assert "semantically derivable" in plan.render()

    def test_metric_families_exported(self, db):
        spec = base_spec_for(db)
        engine = SOLAPEngine(db)
        registry = MetricsRegistry()
        register_engine_metrics(registry, engine)
        engine.execute(spec)
        engine.execute(ops.p_roll_up(spec, "X", db.schema))
        engine.execute(ops.append(spec, "Z", "location", "station"))
        text = registry.render_prometheus()
        assert (
            'solap_cuboid_semantic_hits_total{op="p_roll_up"} 1' in text
        )
        assert (
            'solap_cuboid_semantic_derivations_total{op="p_roll_up"} 1' in text
        )
        assert 'solap_cuboid_semantic_rejects_total{op="append"}' in text
        assert 'solap_engine_queries_total{strategy="derived"} 1' in text

    def test_planner_handles_empty_repository(self, db):
        engine = SOLAPEngine(db)
        planner = DerivationPlanner(db.schema)
        result = planner.plan(base_spec_for(db), engine.repository)
        assert result.plan is None and result.rejects == {}
