"""Unit tests for aggregate accumulation."""

import pytest

from repro import AggregateScope, AggregateSpec, build_sequence_groups
from repro.core.aggregates import CellAccumulator, merge_results, needs_contents
from tests.conftest import make_figure8_db


def setup_sequence():
    db = make_figure8_db()
    groups = build_sequence_groups(db, None, [("card", "card")], [("time", True)])
    by_card = {s.cluster_key[0]: s for s in groups.single_group()}
    return db, by_card[688]  # 6 events, amounts alternating 0.0 / -2.0


class TestCellAccumulator:
    def test_count(self):
        db, sequence = setup_sequence()
        acc = CellAccumulator((AggregateSpec("COUNT"),))
        acc.add_assignment(db, sequence, sequence.rows[:2])
        acc.add_assignment(db, sequence, sequence.rows[2:4])
        assert acc.results() == {"COUNT(*)": 2}

    def test_sum_matched_scope(self):
        db, sequence = setup_sequence()
        acc = CellAccumulator((AggregateSpec("SUM", "amount"),))
        acc.add_assignment(db, sequence, sequence.rows[:2])
        # amounts alternate 0.0 / -2.0 starting at "in"
        assert acc.results()["SUM(amount)"] == -2.0

    def test_sum_sequence_scope(self):
        db, sequence = setup_sequence()
        acc = CellAccumulator(
            (AggregateSpec("SUM", "amount", AggregateScope.SEQUENCE),)
        )
        acc.add_assignment(db, sequence, sequence.rows[:2])
        assert acc.results()["SUM(amount)"] == -6.0  # three "out" events

    def test_first_event_scope(self):
        db, sequence = setup_sequence()
        acc = CellAccumulator(
            (AggregateSpec("SUM", "amount", AggregateScope.FIRST_EVENT),)
        )
        acc.add_assignment(db, sequence, sequence.rows[1:3])
        assert acc.results()["SUM(amount)"] == -2.0  # first content event only

    def test_avg_min_max(self):
        db, sequence = setup_sequence()
        acc = CellAccumulator(
            (
                AggregateSpec("AVG", "amount"),
                AggregateSpec("MIN", "amount"),
                AggregateSpec("MAX", "amount"),
            )
        )
        acc.add_assignment(db, sequence, sequence.rows[:2])  # 0.0, -2.0
        results = acc.results()
        assert results["AVG(amount)"] == -1.0
        assert results["MIN(amount)"] == -2.0
        assert results["MAX(amount)"] == 0.0

    def test_avg_of_nothing_is_none(self):
        acc = CellAccumulator((AggregateSpec("AVG", "amount"),))
        assert acc.results()["AVG(amount)"] is None

    def test_none_measures_skipped(self):
        db, sequence = setup_sequence()
        db.column("amount")[sequence.rows[0]] = None
        acc = CellAccumulator((AggregateSpec("SUM", "amount"),))
        acc.add_assignment(db, sequence, sequence.rows[:1])
        assert acc.results()["SUM(amount)"] == 0.0

    def test_multiple_aggregates_together(self):
        db, sequence = setup_sequence()
        acc = CellAccumulator(
            (AggregateSpec("COUNT"), AggregateSpec("SUM", "amount"))
        )
        acc.add_assignment(db, sequence, sequence.rows[:2])
        results = acc.results()
        assert results["COUNT(*)"] == 1
        assert results["SUM(amount)"] == -2.0


class TestHelpers:
    def test_needs_contents(self):
        assert not needs_contents((AggregateSpec("COUNT"),))
        assert needs_contents((AggregateSpec("COUNT"), AggregateSpec("SUM", "amount")))

    def test_merge_results_additive(self):
        specs = (AggregateSpec("COUNT"), AggregateSpec("SUM", "amount"))
        merged = merge_results(
            specs,
            [
                {"COUNT(*)": 2, "SUM(amount)": -4.0},
                {"COUNT(*)": 3, "SUM(amount)": -1.0},
            ],
        )
        assert merged == {"COUNT(*)": 5, "SUM(amount)": -5.0}

    def test_merge_results_min_max(self):
        specs = (AggregateSpec("MIN", "amount"), AggregateSpec("MAX", "amount"))
        merged = merge_results(
            specs,
            [
                {"MIN(amount)": -4.0, "MAX(amount)": 0.0},
                {"MIN(amount)": -1.0, "MAX(amount)": 3.0},
            ],
        )
        assert merged == {"MIN(amount)": -4.0, "MAX(amount)": 3.0}

    def test_merge_avg_rejected(self):
        with pytest.raises(ValueError):
            merge_results((AggregateSpec("AVG", "amount"),), [{"AVG(amount)": 1.0}])

    def test_merge_empty_partials(self):
        specs = (AggregateSpec("COUNT"), AggregateSpec("MIN", "amount"))
        merged = merge_results(specs, [])
        assert merged["COUNT(*)"] == 0
        assert merged["MIN(amount)"] is None
