"""Unit tests for the observability layer (repro.obs)."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro import SOLAPEngine
from repro.obs import (
    NULL_SPAN,
    RemoteSpanCollector,
    SpanContext,
    Tracer,
    current_context,
    graft_payload,
    span,
    stage_timings,
    trace_from_dict,
    trace_to_dict,
    trace_to_json,
    tracing_active,
)
from repro.obs.analyze import STAGE_NAMES
from tests.conftest import figure8_spec, make_figure8_db


class TestSpanPrimitives:
    def test_disabled_span_is_the_shared_null_singleton(self):
        assert not tracing_active()
        sp = span("anything", rows=3)
        assert sp is NULL_SPAN
        # every operation is a silent no-op
        sp.set("key", 1)
        sp.update(other=2)
        with sp as inner:
            assert inner is NULL_SPAN

    def test_tracer_builds_a_tree(self):
        with Tracer("root") as tracer:
            assert tracing_active()
            with span("outer", label="a"):
                with span("inner"):
                    pass
            with span("sibling"):
                pass
        assert not tracing_active()
        root = tracer.root
        assert [child.name for child in root.children] == ["outer", "sibling"]
        assert root.children[0].children[0].name == "inner"
        assert root.children[0].attrs == {"label": "a"}

    def test_span_durations_are_monotone(self):
        with Tracer() as tracer:
            with span("work"):
                time.sleep(0.002)
        work = tracer.root.find("work")
        assert work is not None
        assert work.duration_seconds >= 0.002
        assert tracer.root.duration_seconds >= work.duration_seconds

    def test_walk_find_find_all(self):
        with Tracer() as tracer:
            with span("a"):
                with span("b"):
                    pass
            with span("b"):
                pass
        root = tracer.root
        assert [node.name for node in root.walk()] == ["trace", "a", "b", "b"]
        assert root.find("b") is root.children[0].children[0]
        assert len(root.find_all("b")) == 2
        assert root.find("missing") is None

    def test_exception_unwinds_spans_cleanly(self):
        with Tracer() as tracer:
            with pytest.raises(RuntimeError):
                with span("outer"):
                    with span("inner"):
                        raise RuntimeError("boom")
            # the stack recovered: new spans attach at the root again
            with span("after"):
                pass
        names = [child.name for child in tracer.root.children]
        assert names == ["outer", "after"]
        inner = tracer.root.find("inner")
        assert inner.end >= inner.start

    def test_nested_tracers_innermost_wins(self):
        with Tracer("outer") as outer:
            with Tracer("inner") as inner:
                with span("work"):
                    pass
            with span("outer_work"):
                pass
        assert inner.root.find("work") is not None
        assert outer.root.find("work") is None
        assert outer.root.find("outer_work") is not None

    def test_worker_threads_do_not_inherit_tracer(self):
        seen = {}

        def worker():
            seen["active"] = tracing_active()
            seen["span"] = span("thread_work")

        with Tracer():
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["active"] is False
        assert seen["span"] is NULL_SPAN

    def test_trace_to_json_round_trips(self):
        with Tracer("query") as tracer:
            with span("stage", rows_out=7):
                pass
        doc = json.loads(trace_to_json(tracer.root))
        assert doc["trace_schema"] == 2
        assert doc["root"]["name"] == "query"
        child = doc["root"]["children"][0]
        assert child["name"] == "stage"
        assert child["attrs"]["rows_out"] == 7
        assert child["duration_ms"] >= 0

    def test_trace_to_dict_includes_stats(self):
        engine = SOLAPEngine(make_figure8_db())
        with Tracer("query") as tracer:
            pass
        __, stats = engine.execute(figure8_spec(("X", "Y")), "cb")
        doc = trace_to_dict(tracer.root, stats)
        assert doc["stats"]["strategy"] == stats.strategy
        assert doc["stats"]["sequences_scanned"] == stats.sequences_scanned

    def test_non_jsonable_attrs_fall_back_to_repr(self):
        with Tracer() as tracer:
            with span("s") as sp:
                sp.set("obj", object())
                sp.set("tup", (1, "two"))
        node = tracer.root.find("s").to_dict()
        assert isinstance(node["attrs"]["obj"], str)
        assert node["attrs"]["tup"] == [1, "two"]


class TestAnalyzePath:
    @pytest.fixture
    def engine(self):
        return SOLAPEngine(make_figure8_db())

    def test_analyze_attaches_trace_and_plan(self, engine):
        spec = figure8_spec(("X", "Y"))
        cuboid, stats = engine.execute(spec, "cb", analyze=True)
        assert stats.trace is not None
        assert stats.plan is not None
        assert len(cuboid) > 0
        # a plain run attaches neither
        __, plain = engine.execute(figure8_spec(("X", "Y", "Z")), "cb")
        assert plain.trace is None and plain.plan is None

    def test_all_five_stages_appear_in_order(self, engine):
        __, stats = engine.execute(figure8_spec(("X", "Y")), "cb", analyze=True)
        timings = stage_timings(stats.trace)
        assert [name for name, __s, __d in timings] == list(STAGE_NAMES)
        starts = [start for __n, start, __d in timings]
        assert starts == sorted(starts)
        assert all(duration >= 0 for __n, __s, duration in timings)

    def test_stage_sum_approximates_total(self, engine):
        __, stats = engine.execute(figure8_spec(("X", "Y")), "cb", analyze=True)
        total = stats.trace.duration_seconds
        accounted = sum(d for __n, __s, d in stage_timings(stats.trace))
        assert accounted <= total * 1.01
        assert accounted >= total * 0.5

    def test_analyze_result_matches_plain_result(self, engine):
        spec = figure8_spec(("X", "Y"))
        traced, __ = engine.execute(spec, "ii", analyze=True)
        plain, __ = SOLAPEngine(make_figure8_db()).execute(spec, "ii")
        assert traced.cells == plain.cells

    def test_ii_chain_spans_recorded(self, engine):
        spec = figure8_spec(("X", "Y", "Y", "X"))
        __, stats = engine.execute(spec, "ii", analyze=True)
        assert stats.trace.find("ii.build_index") is not None
        assert stats.trace.find("ii.join") is not None
        assert "inverted-index chain:" in stats.plan
        assert "BuildIndex" in stats.plan

    def test_cb_scan_span_counts_sequences(self, engine):
        __, stats = engine.execute(figure8_spec(("X", "Y")), "cb", analyze=True)
        scan = stats.trace.find("cb.scan")
        assert scan is not None
        assert scan.attrs["sequences_scanned"] == stats.sequences_scanned

    def test_repository_hit_plan_short_circuits(self, engine):
        spec = figure8_spec(("X", "Y"))
        engine.execute(spec, "cb")
        __, stats = engine.execute(spec, "cb", analyze=True)
        assert "cuboid repository: HIT" in stats.plan
        assert "stages:" not in stats.plan

    def test_plan_reports_strategy_vs_prediction(self, engine):
        __, stats = engine.execute(figure8_spec(("X", "Y")), "cb", analyze=True)
        assert "strategy: CB" in stats.plan
        assert "cost model predicts" in stats.plan

    def test_analyze_joins_an_outer_tracer(self, engine):
        with Tracer("request") as tracer:
            __, stats = engine.execute(
                figure8_spec(("X", "Y")), "cb", analyze=True
            )
        query = tracer.root.find("query")
        assert query is not None
        assert query is stats.trace
        assert query.find("selection") is not None

    def test_tracing_disabled_after_analyze(self, engine):
        engine.execute(figure8_spec(("X", "Y")), "cb", analyze=True)
        assert not tracing_active()
        assert span("later") is NULL_SPAN


class TestOwnerTracerExit:
    def test_span_finishes_against_owner_when_nested_tracer_active(self):
        # A span started under the outer tracer must close against the
        # outer tracer even if an inner tracer is active at exit time.
        with Tracer("outer") as outer:
            sp = span("outer_stage")
            with Tracer("inner"):
                sp.__exit__(None, None, None)
        stage = outer.root.find("outer_stage")
        assert stage is not None
        assert stage.end >= stage.start
        # the outer tracer's stack recovered to the root
        assert len(outer._stack) == 1

    def test_nested_tracer_reset_when_span_body_raises(self):
        with Tracer("outer"):
            with pytest.raises(RuntimeError):
                with Tracer("inner"):
                    raise RuntimeError("boom")
            # the outer tracer is active again after the inner unwound
            assert tracing_active()
            with span("after_inner") as sp:
                assert sp is not NULL_SPAN
        assert not tracing_active()

    def test_reentrant_tracer_restores_contextvar_each_level(self):
        tracer = Tracer("re")
        with tracer:
            with tracer:
                assert tracing_active()
            assert tracing_active()
        assert not tracing_active()


class TestTraceSchemaCompat:
    def test_v2_documents_carry_trace_and_span_ids(self):
        with Tracer("query") as tracer:
            with span("stage"):
                pass
        doc = trace_to_dict(tracer.root)
        assert doc["trace_schema"] == 2
        assert doc["trace_id"] == tracer.trace_id
        assert doc["root"]["span_id"] == "s001"
        assert doc["root"]["children"][0]["span_id"]

    def test_v1_documents_still_parse(self):
        v1 = {
            "trace_schema": 1,
            "root": {
                "name": "query",
                "duration_ms": 5.0,
                "attrs": {"rows": 3},
                "children": [{"name": "stage", "duration_ms": 2.5}],
            },
        }
        root = trace_from_dict(v1)
        assert root.name == "query"
        assert root.duration_seconds == pytest.approx(0.005)
        assert root.attrs == {"rows": 3}
        assert root.children[0].name == "stage"
        assert root.span_id == "" and root.origin is None

    def test_v2_round_trips_origin_and_span_ids(self):
        with Tracer("query") as tracer:
            with span("shard.scan") as scan:
                payload = {
                    "ctx": [tracer.trace_id, "s002"],
                    "origin": {"pid": 42, "shard": 1, "backend": "thread"},
                    "spans": {
                        "name": "worker",
                        "span_id": "s001",
                        "offset_s": 0.0,
                        "duration_s": 0.001,
                        "children": [
                            {
                                "name": "worker.match",
                                "span_id": "s002",
                                "offset_s": 0.0,
                                "duration_s": 0.001,
                            }
                        ],
                    },
                }
                graft_payload(scan, payload)
        rebuilt = trace_from_dict(json.loads(trace_to_json(tracer.root)))
        worker = rebuilt.find("worker")
        assert worker is not None
        assert worker.origin == {"pid": 42, "shard": 1, "backend": "thread"}
        assert worker.find("worker.match") is not None

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="unsupported trace_schema"):
            trace_from_dict({"trace_schema": 99, "root": {"name": "x"}})
        with pytest.raises(ValueError, match="no 'root'"):
            trace_from_dict({"trace_schema": 2})


class TestSpanContextPropagation:
    def test_current_context_none_when_untraced(self):
        assert current_context() is None

    def test_current_context_names_innermost_span(self):
        with Tracer("query") as tracer:
            with span("shard.scan"):
                ctx = current_context()
        assert ctx.trace_id == tracer.trace_id
        assert ctx.span_id == tracer.root.children[0].span_id

    def test_span_context_pickles(self):
        import pickle

        ctx = SpanContext("abc-1", "s002")
        assert pickle.loads(pickle.dumps(ctx)) == ctx

    def test_collector_without_context_is_noop(self):
        collector = RemoteSpanCollector(None, shard=0)
        with collector:
            assert span("worker.match") is NULL_SPAN
        assert collector.payload() is None
        assert collector.root is None

    def test_collector_records_and_serialises(self):
        ctx = SpanContext("trace-x", "s003")
        collector = RemoteSpanCollector(ctx, shard=2, backend="thread")
        with collector:
            with span("worker.match") as sp:
                sp.set("sequences_scanned", 7)
        payload = collector.payload()
        assert payload["ctx"] == ["trace-x", "s003"]
        assert payload["origin"]["shard"] == 2
        assert payload["origin"]["backend"] == "thread"
        assert payload["origin"]["pid"]
        assert payload["spans"]["name"] == "worker"
        child = payload["spans"]["children"][0]
        assert child["name"] == "worker.match"
        assert child["attrs"]["sequences_scanned"] == 7
        # the payload is picklable and JSON-serialisable as-is
        json.dumps(payload)

    def test_graft_anchors_at_parent_start_and_marks_origin(self):
        ctx = SpanContext("trace-y", "s002")
        collector = RemoteSpanCollector(ctx, shard=1)
        with collector:
            with span("worker.match"):
                time.sleep(0.001)
        with Tracer("query") as tracer:
            with span("shard.scan") as scan:
                node = graft_payload(scan, collector.payload())
        assert node.origin["shard"] == 1
        assert node in tracer.root.children[0].children
        # relative timing preserved, anchored at the parent's start
        assert node.start == pytest.approx(tracer.root.children[0].start)
        match = node.find("worker.match")
        assert match.duration_seconds >= 0.001

    def test_graft_of_none_payload_is_noop(self):
        with Tracer() as tracer:
            with span("shard.scan") as scan:
                assert graft_payload(scan, None) is None
        assert tracer.root.children[0].children == []

    def test_stage_timings_exclude_grafted_subtrees(self):
        ctx = SpanContext("trace-z", "s002")
        collector = RemoteSpanCollector(ctx, shard=0)
        with collector:
            with span("aggregation"):  # a stage name, recorded remotely
                time.sleep(0.001)
        with Tracer("query") as tracer:
            with span("aggregation"):
                pass
            with span("shard.scan") as scan:
                graft_payload(scan, collector.payload())
        local = stage_timings(tracer.root)
        assert len([n for n, __s, __d in local if n == "aggregation"]) == 1
        both = stage_timings(tracer.root, include_remote=True)
        assert len([n for n, __s, __d in both if n == "aggregation"]) == 2
