"""Unit tests for the observability layer (repro.obs)."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro import SOLAPEngine
from repro.obs import (
    NULL_SPAN,
    Tracer,
    span,
    stage_timings,
    trace_to_dict,
    trace_to_json,
    tracing_active,
)
from repro.obs.analyze import STAGE_NAMES
from tests.conftest import figure8_spec, make_figure8_db


class TestSpanPrimitives:
    def test_disabled_span_is_the_shared_null_singleton(self):
        assert not tracing_active()
        sp = span("anything", rows=3)
        assert sp is NULL_SPAN
        # every operation is a silent no-op
        sp.set("key", 1)
        sp.update(other=2)
        with sp as inner:
            assert inner is NULL_SPAN

    def test_tracer_builds_a_tree(self):
        with Tracer("root") as tracer:
            assert tracing_active()
            with span("outer", label="a"):
                with span("inner"):
                    pass
            with span("sibling"):
                pass
        assert not tracing_active()
        root = tracer.root
        assert [child.name for child in root.children] == ["outer", "sibling"]
        assert root.children[0].children[0].name == "inner"
        assert root.children[0].attrs == {"label": "a"}

    def test_span_durations_are_monotone(self):
        with Tracer() as tracer:
            with span("work"):
                time.sleep(0.002)
        work = tracer.root.find("work")
        assert work is not None
        assert work.duration_seconds >= 0.002
        assert tracer.root.duration_seconds >= work.duration_seconds

    def test_walk_find_find_all(self):
        with Tracer() as tracer:
            with span("a"):
                with span("b"):
                    pass
            with span("b"):
                pass
        root = tracer.root
        assert [node.name for node in root.walk()] == ["trace", "a", "b", "b"]
        assert root.find("b") is root.children[0].children[0]
        assert len(root.find_all("b")) == 2
        assert root.find("missing") is None

    def test_exception_unwinds_spans_cleanly(self):
        with Tracer() as tracer:
            with pytest.raises(RuntimeError):
                with span("outer"):
                    with span("inner"):
                        raise RuntimeError("boom")
            # the stack recovered: new spans attach at the root again
            with span("after"):
                pass
        names = [child.name for child in tracer.root.children]
        assert names == ["outer", "after"]
        inner = tracer.root.find("inner")
        assert inner.end >= inner.start

    def test_nested_tracers_innermost_wins(self):
        with Tracer("outer") as outer:
            with Tracer("inner") as inner:
                with span("work"):
                    pass
            with span("outer_work"):
                pass
        assert inner.root.find("work") is not None
        assert outer.root.find("work") is None
        assert outer.root.find("outer_work") is not None

    def test_worker_threads_do_not_inherit_tracer(self):
        seen = {}

        def worker():
            seen["active"] = tracing_active()
            seen["span"] = span("thread_work")

        with Tracer():
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["active"] is False
        assert seen["span"] is NULL_SPAN

    def test_trace_to_json_round_trips(self):
        with Tracer("query") as tracer:
            with span("stage", rows_out=7):
                pass
        doc = json.loads(trace_to_json(tracer.root))
        assert doc["trace_schema"] == 1
        assert doc["root"]["name"] == "query"
        child = doc["root"]["children"][0]
        assert child["name"] == "stage"
        assert child["attrs"]["rows_out"] == 7
        assert child["duration_ms"] >= 0

    def test_trace_to_dict_includes_stats(self):
        engine = SOLAPEngine(make_figure8_db())
        with Tracer("query") as tracer:
            pass
        __, stats = engine.execute(figure8_spec(("X", "Y")), "cb")
        doc = trace_to_dict(tracer.root, stats)
        assert doc["stats"]["strategy"] == stats.strategy
        assert doc["stats"]["sequences_scanned"] == stats.sequences_scanned

    def test_non_jsonable_attrs_fall_back_to_repr(self):
        with Tracer() as tracer:
            with span("s") as sp:
                sp.set("obj", object())
                sp.set("tup", (1, "two"))
        node = tracer.root.find("s").to_dict()
        assert isinstance(node["attrs"]["obj"], str)
        assert node["attrs"]["tup"] == [1, "two"]


class TestAnalyzePath:
    @pytest.fixture
    def engine(self):
        return SOLAPEngine(make_figure8_db())

    def test_analyze_attaches_trace_and_plan(self, engine):
        spec = figure8_spec(("X", "Y"))
        cuboid, stats = engine.execute(spec, "cb", analyze=True)
        assert stats.trace is not None
        assert stats.plan is not None
        assert len(cuboid) > 0
        # a plain run attaches neither
        __, plain = engine.execute(figure8_spec(("X", "Y", "Z")), "cb")
        assert plain.trace is None and plain.plan is None

    def test_all_five_stages_appear_in_order(self, engine):
        __, stats = engine.execute(figure8_spec(("X", "Y")), "cb", analyze=True)
        timings = stage_timings(stats.trace)
        assert [name for name, __s, __d in timings] == list(STAGE_NAMES)
        starts = [start for __n, start, __d in timings]
        assert starts == sorted(starts)
        assert all(duration >= 0 for __n, __s, duration in timings)

    def test_stage_sum_approximates_total(self, engine):
        __, stats = engine.execute(figure8_spec(("X", "Y")), "cb", analyze=True)
        total = stats.trace.duration_seconds
        accounted = sum(d for __n, __s, d in stage_timings(stats.trace))
        assert accounted <= total * 1.01
        assert accounted >= total * 0.5

    def test_analyze_result_matches_plain_result(self, engine):
        spec = figure8_spec(("X", "Y"))
        traced, __ = engine.execute(spec, "ii", analyze=True)
        plain, __ = SOLAPEngine(make_figure8_db()).execute(spec, "ii")
        assert traced.cells == plain.cells

    def test_ii_chain_spans_recorded(self, engine):
        spec = figure8_spec(("X", "Y", "Y", "X"))
        __, stats = engine.execute(spec, "ii", analyze=True)
        assert stats.trace.find("ii.build_index") is not None
        assert stats.trace.find("ii.join") is not None
        assert "inverted-index chain:" in stats.plan
        assert "BuildIndex" in stats.plan

    def test_cb_scan_span_counts_sequences(self, engine):
        __, stats = engine.execute(figure8_spec(("X", "Y")), "cb", analyze=True)
        scan = stats.trace.find("cb.scan")
        assert scan is not None
        assert scan.attrs["sequences_scanned"] == stats.sequences_scanned

    def test_repository_hit_plan_short_circuits(self, engine):
        spec = figure8_spec(("X", "Y"))
        engine.execute(spec, "cb")
        __, stats = engine.execute(spec, "cb", analyze=True)
        assert "cuboid repository: HIT" in stats.plan
        assert "stages:" not in stats.plan

    def test_plan_reports_strategy_vs_prediction(self, engine):
        __, stats = engine.execute(figure8_spec(("X", "Y")), "cb", analyze=True)
        assert "strategy: CB" in stats.plan
        assert "cost model predicts" in stats.plan

    def test_analyze_joins_an_outer_tracer(self, engine):
        with Tracer("request") as tracer:
            __, stats = engine.execute(
                figure8_spec(("X", "Y")), "cb", analyze=True
            )
        query = tracer.root.find("query")
        assert query is not None
        assert query is stats.trace
        assert query.find("selection") is not None

    def test_tracing_disabled_after_analyze(self, engine):
        engine.execute(figure8_spec(("X", "Y")), "cb", analyze=True)
        assert not tracing_active()
        assert span("later") is NULL_SPAN
