"""Unit tests for bitmap-encoded inverted indices."""

import pytest

from repro import build_sequence_groups
from repro.errors import IndexError_
from repro.index.bitmap import (
    BitmapIndex,
    bitmap_join,
    bitmap_to_sids,
    sids_to_bitmap,
)
from repro.index.inverted import build_index, join_indices, verify_index
from tests.conftest import location_template, make_figure8_db


@pytest.fixture
def setup():
    db = make_figure8_db()
    groups = build_sequence_groups(db, None, [("card", "card")], [("time", True)])
    group = groups.single_group()
    base = build_index(group, location_template(("X", "Y")), db.schema)
    return db, group, base


class TestEncoding:
    def test_roundtrip_sids(self):
        sids = frozenset({3, 5, 9})
        assert bitmap_to_sids(sids_to_bitmap(sids, 3), 3) == sids

    def test_negative_offset_raises(self):
        with pytest.raises(IndexError_):
            sids_to_bitmap([1], 5)

    def test_sparse_high_bits(self):
        """A 100k-bit bitmap with a handful of set bits decodes in O(set
        bits): only the listed sids come back, in spite of the ~100k zero
        positions below the highest one."""
        sids = frozenset({0, 1, 63, 64, 99_999})
        bitmap = sids_to_bitmap(sids, 0)
        assert bitmap.bit_length() == 100_000
        assert bitmap_to_sids(bitmap, 0) == sids
        # and with a non-zero base
        shifted = {sid + 7 for sid in sids}
        assert bitmap_to_sids(sids_to_bitmap(shifted, 7), 7) == frozenset(shifted)

    def test_empty_bitmap(self):
        assert bitmap_to_sids(0, 5) == frozenset()

    def test_index_roundtrip(self, setup):
        __, __group, base = setup
        bitmap = BitmapIndex.from_inverted(base)
        back = bitmap.to_inverted()
        assert {k: set(v) for k, v in back.lists.items()} == {
            k: set(v) for k, v in base.lists.items()
        }

    def test_counts_match(self, setup):
        __, __group, base = setup
        bitmap = BitmapIndex.from_inverted(base)
        for values, sids in base.lists.items():
            assert bitmap.count(values) == len(sids)
        assert bitmap.num_entries() == base.num_entries()
        assert bitmap.get(("No", "Where")) == 0

    def test_size_is_smaller_for_dense_lists(self, setup):
        __, __group, base = setup
        bitmap = BitmapIndex.from_inverted(base)
        assert bitmap.size_bytes() < base.size_bytes()


class TestBitmapJoin:
    def test_join_matches_list_join(self, setup):
        db, group, base = setup
        target = location_template(("X", "Y", "Z"))
        list_candidate = join_indices(base, base, target, db.schema)
        bitmap = BitmapIndex.from_inverted(base)
        bitmap_candidate = bitmap_join(bitmap, bitmap, target, db.schema)
        assert not bitmap_candidate.verified
        converted = bitmap_candidate.to_inverted()
        assert {k: set(v) for k, v in converted.lists.items()} == {
            k: set(v) for k, v in list_candidate.lists.items()
        }

    def test_join_then_verify_pipeline(self, setup):
        db, group, base = setup
        target = location_template(("X", "Y", "Z"))
        bitmap = BitmapIndex.from_inverted(base)
        candidate = bitmap_join(bitmap, bitmap, target, db.schema).to_inverted()
        verified = verify_index(candidate, group, db.schema)
        truth = build_index(group, target, db.schema)
        assert {k: set(v) for k, v in verified.lists.items()} == {
            k: set(v) for k, v in truth.lists.items()
        }

    def test_join_shape_checks(self, setup):
        db, __group, base = setup
        bitmap = BitmapIndex.from_inverted(base)
        with pytest.raises(IndexError_):
            bitmap_join(bitmap, bitmap, location_template(("X", "Y")), db.schema)

    def test_sid_base_mismatch_raises(self, setup):
        db, __group, base = setup
        a = BitmapIndex.from_inverted(base)
        b = BitmapIndex(a.template, a.group_key, dict(a.lists), a.sid_base + 1)
        with pytest.raises(IndexError_):
            bitmap_join(a, b, location_template(("X", "Y", "Z")), db.schema)
